//! # safe — Scalable Automatic Feature Engineering (ICDE 2020), in Rust
//!
//! Facade crate re-exporting the full SAFE workspace:
//!
//! - [`data`] — columnar datasets, CSV I/O, splits, binning
//! - [`stats`] — IV, Pearson, gain ratio, AUC, JSD, parallel helpers
//! - [`gbm`] — XGBoost-style gradient boosting with path extraction
//! - [`models`] — the nine downstream classifiers from the paper's evaluation
//! - [`ops`] — extensible unary/binary/ternary operator registry
//! - [`core`] — the SAFE pipeline (generation + selection + iteration)
//! - [`serve`] — versioned artifacts + deterministic batch scorer
//! - [`obs`] — telemetry: tracing spans, per-stage metrics, run reports
//! - [`baselines`] — TFC and FCTree comparison methods
//! - [`datagen`] — synthetic benchmark and business dataset generators
//!
//! ## Quickstart
//!
//! ```no_run
//! use safe::core::{Safe, SafeConfig};
//! use safe::datagen::benchmarks::{generate_benchmark, BenchmarkId};
//!
//! let split = generate_benchmark(BenchmarkId::Magic, 42);
//! let safe = Safe::new(SafeConfig::default());
//! let outcome = safe.fit(&split.train, split.valid.as_ref()).unwrap();
//! let train_new = outcome.plan.apply(&split.train).unwrap();
//! println!("engineered {} features", train_new.n_cols());
//! ```

pub use safe_baselines as baselines;
pub use safe_core as core;
pub use safe_data as data;
pub use safe_datagen as datagen;
pub use safe_gbm as gbm;
pub use safe_models as models;
pub use safe_obs as obs;
pub use safe_ops as ops;
pub use safe_serve as serve;
pub use safe_stats as stats;
