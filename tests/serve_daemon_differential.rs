//! Daemon differential suite: the long-lived `ScoreService` must reproduce
//! the offline `ScorerHandle` bit-for-bit under every execution shape the
//! ISSUE's gate names — worker counts {1,2,4}, ragged submission patterns,
//! coalescing caps from 1 to effectively-unbounded, and requests that
//! straddle a mid-stream artifact hot-swap. The swap contract is the sharp
//! edge: every response's `(version, score_bits)` pair must match a
//! single-artifact offline replay under the artifact of that version —
//! never a hybrid.
//!
//! Like `serving_differential.rs`, the fixtures are *real* SAFE fits over
//! synthetic interaction data, not hand-built toy plans.

use std::sync::OnceLock;

use safe::core::{Safe, SafeConfig};
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::gbm::GbmConfig;
use safe::ops::registry::OperatorRegistry;
use safe::serve::{SafeArtifact, ScoreService, ScorerHandle, ServiceConfig};

const WORKERS: [usize; 3] = [1, 2, 4];

struct Fixture {
    /// Same schema, independently-seeded boosters: swap targets. Index i
    /// is installed as artifact version i+1.
    artifacts: Vec<SafeArtifact>,
    /// Request stream, row-major.
    rows: Vec<f64>,
    n_inputs: usize,
    /// `bits[i][r]` = offline score bits of request row r under
    /// `artifacts[i]`.
    bits: Vec<Vec<u64>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = generate(&SyntheticConfig {
            n_rows: 600,
            dim: 5,
            n_signal: 3,
            n_interactions: 2,
            noise: 0.2,
            seed: 41,
            ..Default::default()
        });
        let (train, valid) = train_test_split(&ds, 0.3, 41).expect("split");
        let config = SafeConfig::builder()
            .seed(41)
            .operators(OperatorRegistry::standard())
            .build()
            .expect("valid config");
        let outcome = Safe::new(config).fit(&train, Some(&valid)).expect("SAFE fit");
        let registry = OperatorRegistry::standard();
        // Four swap targets: one plan, different boosting budgets, so the
        // schemas agree but the score bits differ artifact to artifact.
        let artifacts: Vec<SafeArtifact> = [60usize, 25, 40, 10]
            .iter()
            .map(|&n_rounds| {
                SafeArtifact::train(
                    &outcome.plan,
                    &registry,
                    &train,
                    Some(&valid),
                    &GbmConfig { n_rounds, ..GbmConfig::classifier() },
                )
                .expect("artifact training")
            })
            .collect();

        let n_inputs = artifacts[0].input_schema.len();
        let rows = request_rows(&valid, n_inputs, 251);
        let bits = artifacts
            .iter()
            .map(|artifact| {
                let scorer = ScorerHandle::new(artifact, &registry).expect("scorer");
                let (scores, _) = scorer.score_rows(&rows, n_inputs).expect("offline replay");
                scores.iter().map(|s| s.to_bits()).collect()
            })
            .collect();
        Fixture { artifacts, rows, n_inputs, bits }
    })
}

/// Row-major request stream drawn from the validation split (cycled to
/// `n` rows — a prime, so every chunking pattern ends ragged).
fn request_rows(ds: &Dataset, n_inputs: usize, n: usize) -> Vec<f64> {
    let cols: Vec<&[f64]> = (0..n_inputs).map(|c| ds.column(c).expect("column")).collect();
    let mut rows = Vec::with_capacity(n * n_inputs);
    for r in 0..n {
        for col in &cols {
            rows.push(col[r % col.len()]);
        }
    }
    rows
}

fn row(fx: &Fixture, r: usize) -> Vec<f64> {
    fx.rows[r * fx.n_inputs..(r + 1) * fx.n_inputs].to_vec()
}

fn n_rows(fx: &Fixture) -> usize {
    fx.rows.len() / fx.n_inputs
}

/// Bits streamed through a service must equal the offline replay of
/// `artifacts[0]`, whatever the worker count, submission chunking, and
/// coalescing cap.
#[test]
fn streamed_bits_match_offline_at_every_worker_count_and_chunking() {
    let fx = fixture();
    let registry = OperatorRegistry::standard();
    // Submission patterns: one-by-one with immediate wait, chunks of 7
    // (submit a chunk, then wait it), and fire-everything-then-drain.
    for workers in WORKERS {
        for (pattern, chunk) in [("1-by-1", 1usize), ("chunks-of-7", 7), ("all-at-once", usize::MAX)] {
            for max_batch in [1usize, 3, 1024] {
                let service = ScoreService::start(
                    &fx.artifacts[0],
                    &registry,
                    ServiceConfig { workers, max_batch, ..ServiceConfig::default() },
                )
                .expect("service starts");
                let mut got = vec![0u64; n_rows(fx)];
                let mut pending: Vec<(usize, safe::serve::Ticket)> = Vec::new();
                for r in 0..n_rows(fx) {
                    pending.push((r, service.submit(row(fx, r)).expect("submit")));
                    if pending.len() >= chunk {
                        for (idx, ticket) in pending.drain(..) {
                            let resp = ticket.wait().expect("response");
                            assert_eq!(resp.version, 1);
                            got[idx] = resp.score.to_bits();
                        }
                    }
                }
                for (idx, ticket) in pending.drain(..) {
                    got[idx] = ticket.wait().expect("response").score.to_bits();
                }
                let report = service.shutdown();
                assert_eq!(report.completed, n_rows(fx) as u64);
                assert_eq!(report.failed, 0);
                for (r, (&g, &e)) in got.iter().zip(&fx.bits[0]).enumerate() {
                    assert_eq!(
                        g, e,
                        "workers={workers} pattern={pattern} max_batch={max_batch}: \
                         row {r} diverged from the offline scorer"
                    );
                }
            }
        }
    }
}

/// Deterministic swap coverage: the stream is cut into one phase per
/// artifact, swaps happen on a barrier between phases, and because
/// submitters wait out every ticket before the barrier, each phase's
/// responses must carry **exactly** the phase's version and bits. The
/// barrier gives the happens-before chain (swap → barrier → submit →
/// queue → worker) that makes this exact, not just eventual.
#[test]
fn phased_swaps_stamp_exact_versions_and_bits() {
    let fx = fixture();
    let registry = OperatorRegistry::standard();
    let n = n_rows(fx);
    let n_phases = fx.artifacts.len();
    for workers in WORKERS {
        let service = ScoreService::start(
            &fx.artifacts[0],
            &registry,
            ServiceConfig { workers, max_batch: 4, ..ServiceConfig::default() },
        )
        .expect("service starts");
        // 4 submitters + the swapper meet twice per phase boundary: once
        // to close the old phase, once after the swap is installed.
        let barrier = std::sync::Barrier::new(5);

        let mut responses = Vec::new();
        std::thread::scope(|scope| {
            let service = &service;
            let barrier = &barrier;
            let mut handles = Vec::new();
            for submitter in 0..4usize {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for phase in 0..n_phases {
                        barrier.wait(); // phase closed
                        barrier.wait(); // swap (if any) installed
                        let (lo, hi) = (phase * n / n_phases, (phase + 1) * n / n_phases);
                        for r in (lo + submitter..hi).step_by(4) {
                            let ticket = service.submit(row(fx, r)).expect("submit");
                            out.push((phase, r, ticket.wait().expect("response")));
                        }
                    }
                    out
                }));
            }
            // Swapper: no swap before phase 0, then one per boundary.
            for phase in 0..n_phases {
                barrier.wait();
                if phase > 0 {
                    service.swap_artifact(&fx.artifacts[phase], &registry).expect("swap");
                }
                barrier.wait();
            }
            for h in handles {
                responses.extend(h.join().expect("submitter thread"));
            }
        });

        assert_eq!(service.version(), n_phases as u64);
        let report = service.shutdown();
        assert_eq!(report.swaps, (n_phases - 1) as u64);
        assert_eq!(report.completed, n as u64);
        assert_eq!(responses.len(), n);
        for (phase, r, resp) in &responses {
            assert_eq!(
                resp.version,
                (*phase + 1) as u64,
                "workers={workers}: phase {phase} row {r} carries the wrong version"
            );
            assert_eq!(
                resp.score.to_bits(),
                fx.bits[*phase][*r],
                "workers={workers}: phase {phase} row {r} bits diverged from the \
                 offline replay under artifact v{}",
                phase + 1
            );
        }
    }
}

/// The racing gate: N submitter threads run flat out while swaps land at
/// unpredictable points, so requests genuinely straddle each swap. Every
/// response's `(version, score_bits)` pair must still match the offline
/// replay under the artifact of exactly that version — never a hybrid.
#[test]
fn responses_straddling_racing_swaps_stay_version_consistent() {
    let fx = fixture();
    let registry = OperatorRegistry::standard();
    let n = n_rows(fx);
    for workers in WORKERS {
        let service = ScoreService::start(
            &fx.artifacts[0],
            &registry,
            // Tiny coalescing cap: more batches in flight around each swap.
            ServiceConfig { workers, max_batch: 4, ..ServiceConfig::default() },
        )
        .expect("service starts");

        // (row index, response) from every submitter.
        let mut responses = Vec::new();
        std::thread::scope(|scope| {
            let service = &service;
            let mut handles = Vec::new();
            for submitter in 0..4usize {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    // Interleaved row ranges so all submitters are active
                    // across the whole stream (and therefore every swap).
                    for r in (submitter..n).step_by(4) {
                        let ticket = service.submit(row(fx, r)).expect("submit");
                        out.push((r, ticket.wait().expect("response")));
                    }
                    out
                }));
            }
            // Swap through versions 2, 3, 4 while the submitters run,
            // pinned to completion quartiles so every swap provably lands
            // mid-stream (submitters wait per ticket, so at most a few
            // requests are in flight around each threshold).
            for (i, next) in fx.artifacts[1..].iter().enumerate() {
                let threshold = (n as u64) * (i as u64 + 1) / 4;
                while service.report().completed < threshold {
                    std::thread::yield_now();
                }
                service.swap_artifact(next, &registry).expect("swap");
            }
            for h in handles {
                responses.extend(h.join().expect("submitter thread"));
            }
        });

        assert_eq!(service.version(), fx.artifacts.len() as u64);
        let report = service.shutdown();
        assert_eq!(report.swaps, (fx.artifacts.len() - 1) as u64);
        assert_eq!(report.completed, n as u64);

        let mut seen_versions = std::collections::BTreeSet::new();
        for (r, resp) in &responses {
            let version = resp.version;
            assert!(
                (1..=fx.artifacts.len() as u64).contains(&version),
                "impossible version {version}"
            );
            seen_versions.insert(version);
            let expected = fx.bits[(version - 1) as usize][*r];
            assert_eq!(
                resp.score.to_bits(),
                expected,
                "workers={workers}: row {r} stamped v{version} but its bits do not \
                 match that artifact's offline replay"
            );
        }
        // The first swap waited for a quarter of the stream to complete,
        // so version 1 must have scored traffic. Later coverage depends on
        // scheduling (the phased test above pins it deterministically).
        assert!(seen_versions.contains(&1), "no pre-swap responses at workers={workers}");
    }
}

/// Swapping to an artifact with a different input schema must be rejected
/// and leave the running version untouched.
#[test]
fn swap_to_different_schema_is_rejected() {
    let fx = fixture();
    let registry = OperatorRegistry::standard();
    // An artifact over a narrower schema (drop the last input column).
    let ds = generate(&SyntheticConfig {
        n_rows: 300,
        dim: fx.n_inputs.saturating_sub(1).max(2),
        n_signal: 2,
        n_interactions: 1,
        noise: 0.2,
        seed: 43,
        ..Default::default()
    });
    let (train, valid) = train_test_split(&ds, 0.3, 43).expect("split");
    let config = SafeConfig::builder()
        .seed(43)
        .operators(OperatorRegistry::standard())
        .build()
        .expect("valid config");
    let outcome = Safe::new(config).fit(&train, Some(&valid)).expect("SAFE fit");
    let other = SafeArtifact::train(
        &outcome.plan,
        &registry,
        &train,
        None,
        &GbmConfig::classifier(),
    )
    .expect("artifact training");
    assert_ne!(other.input_schema, fx.artifacts[0].input_schema);

    let service = ScoreService::start(&fx.artifacts[0], &registry, ServiceConfig::default())
        .expect("service starts");
    let before = service.version();
    let err = service.swap_artifact(&other, &registry).expect_err("schema change must fail");
    assert!(err.to_string().contains("schema"), "unexpected error: {err}");
    assert_eq!(service.version(), before, "failed swap must not bump the version");

    // And the service still scores correctly afterwards.
    let resp = service
        .submit(row(fx, 0))
        .expect("submit")
        .wait()
        .expect("response");
    assert_eq!(resp.score.to_bits(), fx.bits[0][0]);
    assert_eq!(resp.version, before);
    service.shutdown();
}
