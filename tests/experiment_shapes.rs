//! Small-scale checks that the paper's *result shapes* reproduce: who wins,
//! in which direction, at what relative cost. The full-size versions are the
//! `safe-bench` binaries; these run in seconds under `cargo test --release`.

use std::time::Instant;

use safe::baselines::Tfc;
use safe::core::engineer::FeatureEngineer;
use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

fn interaction_dataset(seed: u64) -> safe::data::Dataset {
    generate(&SyntheticConfig {
        n_rows: 2_500,
        dim: 10,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.25,
        seed,
        ..Default::default()
    })
}

/// Table III shape: SAFE lifts AUC over ORIG on interaction data, averaged
/// over classifiers and seeds.
#[test]
fn safe_beats_orig_on_average() {
    let mut lift = 0.0;
    let mut cells = 0;
    for seed in [1u64, 2] {
        let full = interaction_dataset(seed);
        let (train, test) = safe::data::split::train_test_split(&full, 0.3, seed).unwrap();
        let outcome = Safe::new(SafeConfig { seed, ..SafeConfig::paper() })
            .fit(&train, None)
            .unwrap();
        let train_new = outcome.plan.apply(&train).unwrap();
        let test_new = outcome.plan.apply(&test).unwrap();
        for clf in [ClassifierKind::Lr, ClassifierKind::Dt, ClassifierKind::Xgb] {
            let before = evaluate_auc(clf, &train, &test, seed).unwrap();
            let after = evaluate_auc(clf, &train_new, &test_new, seed).unwrap();
            lift += after - before;
            cells += 1;
        }
    }
    let mean_lift = lift / cells as f64;
    assert!(
        mean_lift > 0.0,
        "mean AUC lift should be positive, got {mean_lift:.4}"
    );
}

/// Table V shape: SAFE is much cheaper than TFC's exhaustive generation on
/// a wide dataset.
#[test]
fn safe_is_faster_than_tfc_on_wide_data() {
    // 60 features → TFC scores 60 originals + 2·C(60,2)·2 + ... ≈ 7k
    // candidates; SAFE's path mining touches a few dozen.
    let ds = generate(&SyntheticConfig {
        n_rows: 1_500,
        dim: 60,
        n_signal: 6,
        n_interactions: 4,
        seed: 3,
        ..Default::default()
    });
    let t0 = Instant::now();
    Safe::new(SafeConfig { seed: 3, ..SafeConfig::paper() })
        .fit(&ds, None)
        .unwrap();
    let safe_time = t0.elapsed();

    let t1 = Instant::now();
    Tfc::default().engineer(&ds, None).unwrap();
    let tfc_time = t1.elapsed();

    assert!(
        safe_time < tfc_time,
        "SAFE ({safe_time:?}) should beat exhaustive TFC ({tfc_time:?})"
    );
}

/// Table VI shape: SAFE's selected feature set is more stable across
/// resamples than RAND's.
#[test]
fn safe_is_more_stable_than_rand() {
    use std::collections::HashMap;
    let t_runs = 5;
    let mut occ_safe: HashMap<String, usize> = HashMap::new();
    let mut occ_rand: HashMap<String, usize> = HashMap::new();
    let mut per_run_safe = 0;
    let mut per_run_rand = 0;
    for r in 0..t_runs {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.3, 100 + r);
        let s = Safe::new(SafeConfig { seed: r, ..SafeConfig::paper() })
            .fit(&split.train, None)
            .unwrap();
        per_run_safe = per_run_safe.max(s.plan.outputs.len());
        for n in &s.plan.outputs {
            *occ_safe.entry(n.clone()).or_insert(0) += 1;
        }
        let rnd = Safe::new(SafeConfig::rand_baseline(r))
            .fit(&split.train, None)
            .unwrap();
        per_run_rand = per_run_rand.max(rnd.plan.outputs.len());
        for n in &rnd.plan.outputs {
            *occ_rand.entry(n.clone()).or_insert(0) += 1;
        }
    }
    let jsd_safe = safe::stats::divergence::stability_score(
        &occ_safe.values().copied().collect::<Vec<_>>(),
        per_run_safe,
        t_runs as usize,
    );
    let jsd_rand = safe::stats::divergence::stability_score(
        &occ_rand.values().copied().collect::<Vec<_>>(),
        per_run_rand,
        t_runs as usize,
    );
    assert!(
        jsd_safe <= jsd_rand + 0.05,
        "SAFE stability {jsd_safe:.4} should not be meaningfully worse than RAND {jsd_rand:.4}"
    );
}

/// §IV-D shape: SAFE runtime grows roughly linearly with N (within a
/// generous factor — constant overheads favour larger N).
#[test]
fn safe_runtime_is_subquadratic_in_n() {
    let time_for = |n: usize| {
        let ds = generate(&SyntheticConfig {
            n_rows: n,
            dim: 12,
            n_signal: 4,
            seed: 9,
            ..Default::default()
        });
        let t = Instant::now();
        Safe::new(SafeConfig { seed: 9, ..SafeConfig::paper() })
            .fit(&ds, None)
            .unwrap();
        t.elapsed().as_secs_f64()
    };
    // Warm up allocators/threads.
    let _ = time_for(1_000);
    let t1 = time_for(2_000);
    let t4 = time_for(8_000);
    let growth = t4 / t1.max(1e-6);
    assert!(
        growth < 16.0,
        "4x rows should not cost ~quadratic 16x: growth {growth:.1} (t1={t1:.3}s, t4={t4:.3}s)"
    );
}

/// Fig. 4 shape: more iterations never destroy the engineered set (AUC at
/// iteration k stays within tolerance of iteration 1, typically above).
#[test]
fn iterations_do_not_degrade() {
    let full = interaction_dataset(13);
    let (train, test) = safe::data::split::train_test_split(&full, 0.3, 13).unwrap();
    let outcome = Safe::new(SafeConfig {
        n_iterations: 3,
        seed: 13,
        ..SafeConfig::paper()
    })
    .fit(&train, None)
    .unwrap();
    let mut aucs = Vec::new();
    for plan in &outcome.plans_per_iteration {
        let tr = plan.apply(&train).unwrap();
        let te = plan.apply(&test).unwrap();
        aucs.push(evaluate_auc(ClassifierKind::Xgb, &tr, &te, 0).unwrap());
    }
    let first = aucs[0];
    let last = *aucs.last().unwrap();
    assert!(
        last > first - 0.03,
        "later iterations should not collapse AUC: {aucs:?}"
    );
}

/// The two assumptions of Section IV-B1, as the paper tests them: mined
/// same-path combinations (SAFE) find the planted interaction more reliably
/// than random combinations over all features (RAND).
#[test]
fn mined_combinations_find_the_planted_interaction() {
    let mut safe_hits = 0usize;
    let mut rand_hits = 0usize;
    let runs = 4usize;
    for seed in 0..runs as u64 {
        let ds = generate(&SyntheticConfig {
            n_rows: 2_000,
            dim: 16,
            n_signal: 2,
            n_interactions: 1, // exactly x0·x1 carries the signal
            marginal_weight: 0.0,
            noise: 0.2,
            n_redundant: 0,
            seed: 40 + seed,
            ..Default::default()
        });
        let hit = |plan: &safe::core::plan::FeaturePlan| {
            plan.steps.iter().any(|s| {
                s.parents.contains(&"x0".to_string()) && s.parents.contains(&"x1".to_string())
            })
        };
        let s = Safe::new(SafeConfig { seed, gamma: 8, ..SafeConfig::paper() })
            .fit(&ds, None)
            .unwrap();
        let r = Safe::new(SafeConfig { gamma: 8, ..SafeConfig::rand_baseline(seed) })
            .fit(&ds, None)
            .unwrap();
        safe_hits += hit(&s.plan) as usize;
        rand_hits += hit(&r.plan) as usize;
    }
    assert!(
        safe_hits >= rand_hits,
        "mining should find the planted pair at least as often: SAFE {safe_hits}/{runs} vs RAND {rand_hits}/{runs}"
    );
    assert!(
        safe_hits >= runs - 1,
        "SAFE should find the planted pair almost always: {safe_hits}/{runs}"
    );
}
