//! Serving differential suite: the serving subsystem must reproduce the
//! in-process pipeline exactly. Three contracts are pinned here, each over
//! a *real* SAFE fit (not a hand-built toy plan):
//!
//! 1. **Artifact round trip** — `SafeArtifact` text/disk round trips
//!    preserve every score bit and the recorded validation AUC bits.
//! 2. **Scorer vs. column path** — the micro-batching `ScorerHandle` is
//!    bit-identical to `plan.apply(ds)` + `model.predict(ds)`.
//! 3. **Thread/batch invariance** — scores are bit-identical for threads
//!    in {1,2,4,7} and across batch sizes, including ragged tails.
//!
//! See `DESIGN.md`, "Serving: artifacts & the batch scorer".

use std::sync::OnceLock;

use safe::core::{Safe, SafeConfig};
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::gbm::GbmConfig;
use safe::ops::registry::OperatorRegistry;
use safe::serve::{SafeArtifact, ScorerHandle};

/// Thread budgets under test: serial, even splits, and a prime that does
/// not divide most item counts (ragged chunk boundaries).
const THREADS: [usize; 4] = [1, 2, 4, 7];

struct Fixture {
    artifact: SafeArtifact,
    valid: Dataset,
}

/// One real SAFE fit shared by every test: interaction-heavy synthetic
/// data, a full pipeline run, then a scoring booster over the fitted plan.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = generate(&SyntheticConfig {
            n_rows: 700,
            dim: 6,
            n_signal: 4,
            n_interactions: 3,
            noise: 0.2,
            seed: 29,
            ..Default::default()
        });
        let (train, valid) = train_test_split(&ds, 0.3, 29).expect("split");
        let config = SafeConfig::builder()
            .seed(29)
            .operators(OperatorRegistry::standard())
            .build()
            .expect("valid config");
        let outcome = Safe::new(config).fit(&train, Some(&valid)).expect("SAFE fit");
        let artifact = SafeArtifact::train(
            &outcome.plan,
            &OperatorRegistry::standard(),
            &train,
            Some(&valid),
            &GbmConfig::classifier(),
        )
        .expect("artifact training");
        Fixture { artifact, valid }
    })
}

fn column_path_scores(artifact: &SafeArtifact, ds: &Dataset) -> Vec<f64> {
    let engineered = artifact.plan.apply(ds).expect("plan applies");
    artifact.model.predict(&engineered)
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i} diverged");
    }
}

#[test]
fn artifact_text_round_trip_preserves_real_fit_bits() {
    let fx = fixture();
    let back = SafeArtifact::from_text(&fx.artifact.to_text()).expect("parse back");
    assert_bits_equal(
        &column_path_scores(&fx.artifact, &fx.valid),
        &column_path_scores(&back, &fx.valid),
        "text round trip",
    );
    assert_eq!(
        fx.artifact.val_auc.map(f64::to_bits),
        back.val_auc.map(f64::to_bits),
        "recorded validation AUC must survive the round trip bit-for-bit"
    );
    assert!(fx.artifact.val_auc.is_some(), "fit supplied a validation set");
}

#[test]
fn artifact_disk_round_trip_preserves_real_fit_bits() {
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!("safe_serving_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("real_fit.safeartifact");
    fx.artifact.save(&path).expect("save");
    let back = SafeArtifact::load(&path).expect("load");
    assert_bits_equal(
        &column_path_scores(&fx.artifact, &fx.valid),
        &column_path_scores(&back, &fx.valid),
        "disk round trip",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scorer_matches_in_process_column_path_bitwise() {
    let fx = fixture();
    let expected = column_path_scores(&fx.artifact, &fx.valid);
    let scorer = ScorerHandle::new(&fx.artifact, &OperatorRegistry::standard()).expect("scorer");
    let (scores, report) = scorer.score_dataset(&fx.valid).expect("scoring");
    assert_bits_equal(&expected, &scores, "scorer vs column path");
    assert_eq!(report.rows as usize, fx.valid.n_rows());
}

#[test]
fn scorer_is_thread_and_batch_invariant_on_a_real_fit() {
    let fx = fixture();
    let expected = column_path_scores(&fx.artifact, &fx.valid);
    for threads in THREADS {
        // Batch 37 leaves a ragged tail on almost any row count.
        for batch in [37usize, 1024] {
            let scorer = ScorerHandle::new(&fx.artifact, &OperatorRegistry::standard())
                .expect("scorer")
                .with_threads(threads)
                .with_batch_size(batch);
            let (scores, report) = scorer.score_dataset(&fx.valid).expect("scoring");
            assert_eq!(report.threads, threads);
            assert_bits_equal(
                &expected,
                &scores,
                &format!("threads={threads} batch={batch}"),
            );
        }
    }
}
