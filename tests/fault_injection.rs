//! Fault-injection suite: arm each named failpoint in the pipeline and
//! assert that `Safe::fit` degrades gracefully — it must return `Ok` with
//! an accurate per-iteration status (or, for points outside the loop, keep
//! the pipeline moving) and must never panic.
//!
//! Requires the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test fault_injection
//! ```
//!
//! The registry in `safe-data` is process-global, so every test that arms
//! a point serializes on [`FP_LOCK`] and disarms on drop (even when an
//! assertion fails).

#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safe_core::{IterationStatus, Safe, SafeConfig, SafeOutcome, SelectionMode};
use safe_data::failpoints;
use safe_data::Dataset;

/// Serializes tests that mutate the global failpoint registry.
static FP_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock and guarantees a clean slate before and after
/// the test body, even if an assertion panics.
struct FpGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn fp_guard() -> FpGuard<'static> {
    let lock = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::disarm_all();
    FpGuard { _lock: lock }
}

impl Drop for FpGuard<'_> {
    fn drop(&mut self) {
        failpoints::disarm_all();
    }
}

const FEATURES: [&str; 5] = ["a", "b", "c", "n1", "n2"];

/// Product-interaction data (label ≈ sign of 3ab + c/2): the shape SAFE's
/// generation stage is built for, so the un-injected pipeline completes.
fn interaction_data(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = vec![Vec::with_capacity(n); 5];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        let c: f64 = rng.gen_range(-1.0..1.0);
        cols[0].push(a);
        cols[1].push(b);
        cols[2].push(c);
        cols[3].push(rng.gen_range(-1.0..1.0));
        cols[4].push(rng.gen_range(-1.0..1.0));
        let score = 3.0 * a * b + 0.5 * c + rng.gen_range(-0.2..0.2);
        labels.push((score > 0.0) as u8);
    }
    Dataset::from_columns(
        FEATURES.iter().map(|s| s.to_string()).collect(),
        cols,
        Some(labels),
    )
    .unwrap()
}

/// Arm `point`, run a fit, disarm, and check the history/plan invariant.
fn fit_with(point: &'static str) -> SafeOutcome {
    failpoints::arm(point);
    let outcome = Safe::paper()
        .fit(&interaction_data(800, 4), None)
        .unwrap_or_else(|e| panic!("{point}: fit must degrade, not fail: {e}"));
    failpoints::disarm(point);
    assert_eq!(
        outcome.history.len(),
        outcome.plans_per_iteration.len(),
        "{point}: every iteration must record both a report and a plan"
    );
    outcome
}

/// The last iteration degraded at `want_stage` and the outcome fell back to
/// the identity plan over the original features.
fn assert_degraded_to_identity(outcome: &SafeOutcome, point: &str, want_stage: &str) {
    let last = outcome.history.last().expect("at least one iteration report");
    match &last.status {
        IterationStatus::Degraded { stage, reason } => {
            assert_eq!(*stage, want_stage, "{point}: wrong stage (reason: {reason})");
        }
        other => panic!("{point}: expected Degraded at {want_stage}, got {other:?}"),
    }
    assert_eq!(outcome.plan.outputs, FEATURES, "{point}: identity fallback");
    assert!(outcome.plan.steps.is_empty(), "{point}: no generated steps");
}

#[test]
fn gbm_fit_begin_failure_degrades_mining() {
    let _g = fp_guard();
    let outcome = fit_with("gbm/fit-begin");
    assert_degraded_to_identity(&outcome, "gbm/fit-begin", "mine");
    let IterationStatus::Degraded { reason, .. } = &outcome.history[0].status else {
        unreachable!()
    };
    assert!(reason.contains("gbm/fit-begin"), "reason names the point: {reason}");
    assert!(reason.contains("iteration 0"), "reason carries the iteration: {reason}");
}

#[test]
fn gbm_train_round_failure_degrades_mining() {
    let _g = fp_guard();
    let outcome = fit_with("gbm/train-round");
    assert_degraded_to_identity(&outcome, "gbm/train-round", "mine");
}

#[test]
fn binning_failure_zeroes_iv_and_degrades_selection() {
    let _g = fp_guard();
    // Every binning fit fails → every candidate's IV falls back to 0 → no
    // candidate clears α, and the iteration degrades at the IV filter.
    let outcome = fit_with("binning/fit");
    assert_degraded_to_identity(&outcome, "binning/fit", "iv-filter");
}

#[test]
fn operator_fit_failure_yields_no_generated_features() {
    let _g = fp_guard();
    // Operators failing to fit is survivable: generation simply yields
    // nothing, and the funnel continues over the original features alone.
    let outcome = fit_with("ops/fit");
    let first = &outcome.history[0];
    assert_eq!(first.n_generated, 0, "no feature survives a failing operator fit");
    assert!(
        matches!(
            first.status,
            IterationStatus::Completed | IterationStatus::Degraded { stage: "iv-filter", .. }
        ),
        "no panic and no spurious stage: {:?}",
        first.status
    );
    assert!(outcome.plan.steps.is_empty(), "plan contains no generated steps");
    assert!(!outcome.plan.outputs.is_empty());
}

#[test]
fn empty_iv_survivor_set_degrades_to_identity_plan() {
    let _g = fp_guard();
    let outcome = fit_with("select/iv-empty");
    assert_degraded_to_identity(&outcome, "select/iv-empty", "iv-filter");
    assert_eq!(outcome.history.len(), 1, "loop stops after the degraded iteration");
}

#[test]
fn rank_failure_degrades_with_injected_reason() {
    let _g = fp_guard();
    let outcome = fit_with("select/rank");
    assert_degraded_to_identity(&outcome, "select/rank", "rank");
    let IterationStatus::Degraded { reason, .. } = &outcome.history[0].status else {
        unreachable!()
    };
    assert!(reason.contains("select/rank"), "reason names the point: {reason}");
}

#[test]
fn staged_worker_panic_degrades_staged_prune_to_identity() {
    let _g = fp_guard();
    // A scoring-worker panic inside the successive-halving pruner
    // (`select/staged-worker-panic`) must degrade the iteration at the
    // `staged-prune` stage, never unwind the run. The dataset is widened
    // with noise columns so the candidate pool clears the pruner's
    // finalist floor — a short-circuited pool would never reach the
    // armed worker.
    let wide = {
        let base = interaction_data(800, 4);
        let mut rng = StdRng::seed_from_u64(31);
        let mut names: Vec<String> =
            base.feature_names().iter().map(|s| s.to_string()).collect();
        let mut cols: Vec<Vec<f64>> = base.columns().map(<[f64]>::to_vec).collect();
        for j in 0..8 {
            names.push(format!("w{j}"));
            cols.push((0..base.n_rows()).map(|_| rng.gen_range(-1.0..1.0)).collect());
        }
        Dataset::from_columns(names, cols, base.labels().map(<[u8]>::to_vec)).unwrap()
    };
    let config = SafeConfig { selection: SelectionMode::Staged, ..SafeConfig::paper() };
    failpoints::arm("select/staged-worker-panic");
    let outcome = Safe::new(config)
        .fit(&wide, None)
        .expect("staged worker panic must degrade, not fail");
    failpoints::disarm_all();
    let last = outcome.history.last().expect("one iteration report");
    let IterationStatus::Degraded { stage, reason } = &last.status else {
        panic!("expected Degraded at staged-prune, got {:?}", last.status);
    };
    assert_eq!(*stage, "staged-prune", "wrong stage (reason: {reason})");
    assert!(
        reason.contains("select/staged-worker-panic"),
        "reason names the point: {reason}"
    );
    assert_eq!(
        outcome.plan.outputs,
        wide.feature_names(),
        "identity fallback over the widened features"
    );
    assert!(outcome.plan.steps.is_empty(), "no generated steps survive the degrade");
}

#[test]
fn one_shot_arm_fires_exactly_once() {
    let _g = fp_guard();
    // `arm_once` trips on the first traversal only: the first fit degrades,
    // the second (same process, nothing re-armed) completes normally.
    let train = interaction_data(800, 4);
    failpoints::arm_once("gbm/fit-begin");
    let degraded = Safe::paper().fit(&train, None).unwrap();
    assert!(matches!(
        degraded.history[0].status,
        IterationStatus::Degraded { stage: "mine", .. }
    ));
    assert!(
        !failpoints::armed().contains(&"gbm/fit-begin"),
        "Once arm is consumed"
    );

    let clean = Safe::paper().fit(&train, None).unwrap();
    assert!(matches!(
        clean.history.last().unwrap().status,
        IterationStatus::Completed
    ));
}

#[test]
fn degraded_run_still_yields_an_applicable_plan() {
    let _g = fp_guard();
    // The fallback plan is not just cosmetic: it must apply to fresh data.
    let outcome = fit_with("gbm/fit-begin");
    let test = interaction_data(200, 9);
    let transformed = outcome.plan.apply(&test).unwrap();
    assert_eq!(transformed.n_cols(), FEATURES.len());
    assert_eq!(transformed.n_rows(), 200);
}

#[test]
fn armed_registry_is_inert_for_unmarked_paths() {
    let _g = fp_guard();
    // Arming a name no code traverses must not perturb a normal run.
    failpoints::arm("no/such-point");
    let outcome = Safe::paper().fit(&interaction_data(800, 4), None).unwrap();
    failpoints::disarm_all();
    assert!(matches!(
        outcome.history.last().unwrap().status,
        IterationStatus::Completed
    ));
}

#[test]
fn multi_iteration_run_keeps_last_good_plan_on_late_failure() {
    let _g = fp_guard();
    // With every miner call failing from the start, a multi-iteration
    // config still returns Ok: iteration 0 degrades, the loop stops, and
    // the per-iteration bookkeeping stays aligned.
    let config = SafeConfig { n_iterations: 3, ..SafeConfig::paper() };
    failpoints::arm("gbm/fit-begin");
    let outcome = Safe::new(config).fit(&interaction_data(800, 4), None).unwrap();
    failpoints::disarm_all();
    assert_eq!(outcome.history.len(), 1);
    assert_eq!(outcome.plans_per_iteration.len(), 1);
    assert!(matches!(
        outcome.history[0].status,
        IterationStatus::Degraded { stage: "mine", .. }
    ));
    assert_eq!(outcome.plan.outputs, FEATURES);
}
