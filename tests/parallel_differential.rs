//! Serial-vs-parallel differential suite: the parallel execution layer
//! (`safe::stats::par`) must be *bit-identical* to the serial path for
//! every thread count. Chunk boundaries depend only on the item count and
//! the resolved thread budget, every output slot is written by exactly one
//! worker, and reductions concatenate in chunk-index order — so
//! `threads=k` and `threads=1` runs of the whole SAFE pipeline must agree
//! on every selected feature, every plan byte, every funnel count, and
//! every downstream AUC. These tests pin that contract (see `DESIGN.md`,
//! "Parallel execution & determinism contract").

use proptest::prelude::*;

use safe::core::{Safe, SafeConfig, SafeOutcome};
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};
use safe::stats::par::{par_map, try_par_map, Parallelism};

/// Thread budgets under test: serial, even splits, and a prime that does
/// not divide most item counts (exercises ragged chunk boundaries).
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Interaction-heavy synthetic data: the shape SAFE's generation stage is
/// built for, so the pipeline completes with a non-trivial funnel.
fn interaction_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 900,
        dim: 6,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        seed: 11,
        ..Default::default()
    })
}

/// NaN-heavy data: a third of the draws in the affected columns are
/// missing, so binning, IV, and Pearson all hit their NaN paths inside
/// worker threads.
fn nan_heavy_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 700,
        dim: 12,
        n_signal: 5,
        n_interactions: 2,
        noise: 0.3,
        missing_rate: 0.35,
        seed: 23,
        ..Default::default()
    })
}

/// Degenerate data: a small synthetic base plus a constant column and an
/// all-NaN column. Workers must agree with the serial path on which
/// candidates get discarded as degenerate.
fn degenerate_dataset() -> Dataset {
    let base = generate(&SyntheticConfig {
        n_rows: 600,
        dim: 5,
        n_signal: 3,
        n_interactions: 2,
        noise: 0.25,
        seed: 37,
        ..Default::default()
    });
    let mut names: Vec<String> = base.meta().iter().map(|m| m.name.clone()).collect();
    let mut cols: Vec<Vec<f64>> = base.columns().map(<[f64]>::to_vec).collect();
    names.push("konst".to_string());
    cols.push(vec![7.0; base.n_rows()]);
    names.push("void".to_string());
    cols.push(vec![f64::NAN; base.n_rows()]);
    Dataset::from_columns(names, cols, base.labels().map(<[u8]>::to_vec)).unwrap()
}

fn fit_with_threads(data: &Dataset, threads: usize) -> SafeOutcome {
    let config = SafeConfig { seed: 5, n_iterations: 2, ..SafeConfig::paper() }
        .with_threads(threads);
    Safe::new(config)
        .fit(data, None)
        .unwrap_or_else(|e| panic!("fit with threads={threads} failed: {e}"))
}

/// Per-iteration downstream AUC: apply each iteration's plan snapshot and
/// evaluate a fixed-seed GBM on a held-out split. Computed independently
/// for each run so the comparison is end-to-end, not short-circuited
/// through the (already asserted) plan equality.
fn per_iteration_aucs(data: &Dataset, outcome: &SafeOutcome) -> Vec<u64> {
    let (train, test) = train_test_split(data, 0.3, 1).unwrap();
    outcome
        .plans_per_iteration
        .iter()
        .map(|plan| {
            let tr = plan.apply(&train).unwrap();
            let te = plan.apply(&test).unwrap();
            evaluate_auc(ClassifierKind::Xgb, &tr, &te, 9).unwrap().to_bits()
        })
        .collect()
}

/// The core differential assertion: every observable output of the run —
/// plan bytes, per-iteration snapshots, funnel history, run report, and
/// downstream AUC bits — matches the serial baseline exactly.
fn assert_differential(name: &str, data: &Dataset) {
    let baseline = fit_with_threads(data, THREADS[0]);
    let baseline_aucs = per_iteration_aucs(data, &baseline);
    assert!(
        !baseline.plan.outputs.is_empty(),
        "{name}: serial baseline selected nothing — dataset too weak to differentiate"
    );
    for &threads in &THREADS[1..] {
        let run = fit_with_threads(data, threads);
        assert_eq!(
            run.plan.to_text(),
            baseline.plan.to_text(),
            "{name}: plan differs at threads={threads}"
        );
        assert_eq!(
            run.plans_per_iteration, baseline.plans_per_iteration,
            "{name}: per-iteration plans differ at threads={threads}"
        );
        assert_eq!(run.history.len(), baseline.history.len(), "{name}: threads={threads}");
        for (a, b) in run.history.iter().zip(&baseline.history) {
            assert!(
                a.structural_eq(b),
                "{name}: iteration {} history differs at threads={threads}:\n{a:?}\nvs\n{b:?}",
                a.iteration
            );
        }
        assert!(
            run.report.structural_eq(&baseline.report),
            "{name}: run report differs structurally at threads={threads}"
        );
        assert_eq!(
            per_iteration_aucs(data, &run),
            baseline_aucs,
            "{name}: downstream AUC bits differ at threads={threads}"
        );
    }
}

#[test]
fn interaction_heavy_runs_are_bit_identical_across_thread_counts() {
    assert_differential("interaction", &interaction_dataset());
}

#[test]
fn nan_heavy_runs_are_bit_identical_across_thread_counts() {
    assert_differential("nan-heavy", &nan_heavy_dataset());
}

#[test]
fn degenerate_runs_are_bit_identical_across_thread_counts() {
    assert_differential("degenerate", &degenerate_dataset());
}

/// Oversubscription far beyond the available cores must change nothing
/// observable either (the resolved budget only shapes chunk boundaries).
#[test]
fn heavy_oversubscription_matches_serial() {
    let data = interaction_dataset();
    let a = fit_with_threads(&data, 1);
    let b = fit_with_threads(&data, 64);
    assert_eq!(a.plan, b.plan);
    assert!(a.report.structural_eq(&b.report));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Order preservation: `par_map` over any input and any thread budget
    /// is exactly the serial `map`, in the serial order.
    #[test]
    fn par_map_preserves_order_for_any_thread_count(
        xs in prop::collection::vec(-1e9f64..1e9, 0..200),
        threads in 1usize..=16,
    ) {
        let serial: Vec<f64> = xs.iter().map(|v| v * 3.0 - 1.0).collect();
        let parallel = par_map(Parallelism::new(threads), xs.len(), |i| xs[i] * 3.0 - 1.0);
        prop_assert_eq!(serial, parallel);
    }

    /// Panic propagation: a panic at any index under any thread budget
    /// surfaces as a captured `Err` carrying the payload — never a hang,
    /// never an unwind across the call.
    #[test]
    fn worker_panic_surfaces_as_error_for_any_index(
        n in 1usize..120,
        panic_at in 0usize..120,
        threads in 1usize..=8,
    ) {
        let panic_at = panic_at % n;
        let result = try_par_map(Parallelism::new(threads), n, |i| {
            if i == panic_at {
                panic!("poisoned item {i}");
            }
            i * 2
        });
        let err = result.expect_err("a panicking worker must produce Err");
        prop_assert!(
            err.message.contains(&format!("poisoned item {panic_at}")),
            "payload lost: {}", err.message
        );
    }
}

/// With failpoints compiled in, an injected panic inside an IV worker at
/// threads=4 must degrade the iteration (surfacing as a `SafeError`
/// message in the status) and must never hang or abort the fit.
#[cfg(feature = "failpoints")]
mod failpoint_differential {
    use super::*;
    use safe::core::IterationStatus;
    use safe::data::failpoints;

    #[test]
    fn injected_worker_panic_degrades_instead_of_hanging() {
        failpoints::disarm_all();
        failpoints::arm("select/iv-worker-panic");
        let data = interaction_dataset();
        let config =
            SafeConfig { seed: 5, n_iterations: 1, ..SafeConfig::paper() }.with_threads(4);
        let outcome = Safe::new(config)
            .fit(&data, None)
            .unwrap_or_else(|e| panic!("worker panic must degrade, not fail: {e}"));
        failpoints::disarm_all();
        let degraded = outcome.history.iter().any(|r| match &r.status {
            IterationStatus::Degraded { stage, reason } => {
                assert_eq!(*stage, "iv-filter");
                assert!(reason.contains("panicked"), "reason: {reason}");
                assert!(reason.contains("select/iv-worker-panic"), "reason: {reason}");
                true
            }
            _ => false,
        });
        assert!(degraded, "no degraded iteration recorded: {:?}", outcome.history);
    }
}
