//! Registry-drift guard for the fault-injection roster.
//!
//! `safe_data::failpoints::ALL` is the single source of truth for every
//! failpoint name in the workspace. This suite keeps four surfaces in
//! lockstep, in both directions:
//!
//! 1. every registered name has a real `failpoint!` call site under
//!    `crates/*/src`, and every call-site name is registered;
//! 2. every registered name is exercised by a fault-injection suite
//!    (`tests/fault_injection.rs`, `tests/parallel_differential.rs`, or
//!    `tests/crash_differential.rs`);
//! 3. every registered name appears in `DESIGN.md`'s §13 failpoint table.
//!
//! Purely textual — no `failpoints` feature needed — so it runs in the
//! default tier-1 `cargo test` and a new point can never land untested or
//! undocumented.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use safe::data::failpoints::ALL;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// All `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Source files that may legitimately contain `failpoint!` call sites:
/// every crate's `src` tree, minus the registry module itself (its docs
/// and unit tests use placeholder names like `test/macro`).
fn call_site_files() -> Vec<PathBuf> {
    let crates = repo_root().join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates).expect("read crates/") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    files.retain(|p| !p.ends_with("src/failpoints.rs"));
    files.sort();
    assert!(!files.is_empty(), "no source files found under crates/*/src");
    files
}

/// Extract the name of every `failpoint!("...")` invocation in `text`,
/// skipping comment lines (doc examples use placeholder names).
fn call_site_names(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let mut rest = trimmed;
        while let Some(at) = rest.find("failpoint!(") {
            rest = &rest[at + "failpoint!(".len()..];
            if let Some(open) = rest.find('"') {
                let tail = &rest[open + 1..];
                if let Some(close) = tail.find('"') {
                    names.push(tail[..close].to_string());
                    rest = &tail[close + 1..];
                    continue;
                }
            }
            break;
        }
    }
    names
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

#[test]
fn every_registered_failpoint_has_a_call_site_and_vice_versa() {
    let registered: BTreeSet<&str> = ALL.iter().copied().collect();
    assert_eq!(registered.len(), ALL.len(), "duplicate names in ALL");

    let mut in_source: BTreeSet<String> = BTreeSet::new();
    for file in call_site_files() {
        in_source.extend(call_site_names(&read(&file)));
    }

    let unregistered: Vec<&String> = in_source
        .iter()
        .filter(|n| !registered.contains(n.as_str()))
        .collect();
    assert!(
        unregistered.is_empty(),
        "failpoint! call sites missing from safe_data::failpoints::ALL: {unregistered:?}"
    );

    // Most points are declared through the macro; a few (the checkpoint
    // store's I/O points) branch on `should_fail` directly because their
    // effect is not a plain early `Err` return. Either way the quoted
    // name must appear in real (non-registry) source.
    let mut sources = String::new();
    for file in call_site_files() {
        sources.push_str(&read(&file));
    }
    let unimplemented: Vec<&&str> = ALL
        .iter()
        .filter(|n| !sources.contains(&format!("\"{n}\"")))
        .collect();
    assert!(
        unimplemented.is_empty(),
        "names in ALL with no call site under crates/*/src: {unimplemented:?}"
    );
}

#[test]
fn every_registered_failpoint_is_exercised_by_a_fault_suite() {
    let root = repo_root();
    let suites = [
        read(&root.join("tests/fault_injection.rs")),
        read(&root.join("tests/parallel_differential.rs")),
        read(&root.join("tests/crash_differential.rs")),
    ];
    let untested: Vec<&&str> = ALL
        .iter()
        .filter(|n| {
            let quoted = format!("\"{n}\"");
            !suites.iter().any(|s| s.contains(&quoted))
        })
        .collect();
    assert!(
        untested.is_empty(),
        "names in ALL never armed by a fault-injection suite \
         (fault_injection / parallel_differential / crash_differential): \
         {untested:?}"
    );
}

#[test]
fn every_registered_failpoint_is_documented_in_the_design_table() {
    let design = read(&repo_root().join("DESIGN.md"));
    let undocumented: Vec<&&str> = ALL
        .iter()
        .filter(|n| !design.contains(&format!("`{n}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "names in ALL absent from DESIGN.md's failpoint table: {undocumented:?}"
    );
}
