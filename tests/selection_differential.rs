//! Exact-vs-staged selection differential suite.
//!
//! Two contracts (see `DESIGN.md`, "Staged selection"):
//!
//! 1. **Exact mode is the seed pipeline.** `SelectionMode::Exact` (the
//!    default) must be bit-identical to a config that never mentions the
//!    mode — every plan byte, per-iteration snapshot, funnel count,
//!    structural report, and downstream AUC bit — at every thread budget.
//!    The staged pruner is opt-in; merely existing must change nothing.
//! 2. **Staged mode holds AUC parity.** `SelectionMode::Staged` prunes the
//!    candidate pool on cheap subsampled scores before the exact pass runs
//!    on the finalists, so its plans may differ — but the engineered
//!    features must hold downstream AUC within ±0.005 of exact mode, and
//!    the run itself must stay deterministic across thread budgets.

use safe::core::{Safe, SafeConfig, SafeOutcome, SelectionMode};
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

/// AUC-parity bound between exact and staged selection (absolute).
const AUC_TOLERANCE: f64 = 0.005;

/// Seeds for the parity sweep (the differential harness's usual trio).
const SEEDS: [u64; 3] = [5, 17, 42];

/// Interaction-heavy synthetic data: the shape SAFE's generation stage is
/// built for, producing a candidate pool large enough that the staged
/// pruner actually engages (pool > finalist target).
fn interaction_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 900,
        dim: 6,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        seed: 11,
        ..Default::default()
    })
}

/// NaN-heavy data: a third of the draws missing, so the staged pruner's
/// subsampled IV scoring hits its missing-value paths.
fn nan_heavy_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 700,
        dim: 12,
        n_signal: 5,
        n_interactions: 2,
        noise: 0.3,
        missing_rate: 0.35,
        seed: 23,
        ..Default::default()
    })
}

/// Degenerate data: a constant column and an all-NaN column ride along, so
/// both modes must agree with themselves on degenerate-candidate handling.
fn degenerate_dataset() -> Dataset {
    let base = generate(&SyntheticConfig {
        n_rows: 600,
        dim: 5,
        n_signal: 3,
        n_interactions: 2,
        noise: 0.25,
        seed: 37,
        ..Default::default()
    });
    let mut names: Vec<String> = base.meta().iter().map(|m| m.name.clone()).collect();
    let mut cols: Vec<Vec<f64>> = base.columns().map(<[f64]>::to_vec).collect();
    names.push("konst".to_string());
    cols.push(vec![7.0; base.n_rows()]);
    names.push("void".to_string());
    cols.push(vec![f64::NAN; base.n_rows()]);
    Dataset::from_columns(names, cols, base.labels().map(<[u8]>::to_vec)).unwrap()
}

fn shapes() -> Vec<(&'static str, Dataset)> {
    vec![
        ("interaction", interaction_dataset()),
        ("nan-heavy", nan_heavy_dataset()),
        ("degenerate", degenerate_dataset()),
    ]
}

fn fit(data: &Dataset, mode: SelectionMode, threads: usize, seed: u64) -> SafeOutcome {
    let config = SafeConfig {
        seed,
        n_iterations: 2,
        selection: mode,
        ..SafeConfig::paper()
    }
    .with_threads(threads);
    Safe::new(config)
        .fit(data, None)
        .unwrap_or_else(|e| panic!("fit (mode {mode:?}, threads {threads}) failed: {e}"))
}

/// Downstream AUC of the final plan on a held-out split, as raw bits —
/// exact-mode comparisons demand bit equality, not closeness.
fn final_auc(data: &Dataset, outcome: &SafeOutcome) -> f64 {
    let (train, test) = train_test_split(data, 0.3, 1).unwrap();
    let tr = outcome.plan.apply(&train).unwrap();
    let te = outcome.plan.apply(&test).unwrap();
    evaluate_auc(ClassifierKind::Xgb, &tr, &te, 9).unwrap()
}

fn assert_outcomes_identical(name: &str, ctx: &str, a: &SafeOutcome, b: &SafeOutcome) {
    assert_eq!(a.plan.to_text(), b.plan.to_text(), "{name}: plan differs {ctx}");
    assert_eq!(
        a.plans_per_iteration, b.plans_per_iteration,
        "{name}: per-iteration plans differ {ctx}"
    );
    assert_eq!(a.history.len(), b.history.len(), "{name}: history length differs {ctx}");
    for (x, y) in a.history.iter().zip(&b.history) {
        assert!(
            x.structural_eq(y),
            "{name}: iteration {} history differs {ctx}:\n{x:?}\nvs\n{y:?}",
            x.iteration
        );
    }
    assert!(
        a.report.structural_eq(&b.report),
        "{name}: run report differs structurally {ctx}"
    );
}

/// Contract 1: an explicit `SelectionMode::Exact` is byte-for-byte the
/// pipeline a mode-less config runs — plans, snapshots, history, report,
/// and AUC bits — at threads 1 and 4, on all three dataset shapes.
#[test]
fn exact_mode_is_bit_identical_to_the_default_pipeline() {
    for (name, data) in shapes() {
        for threads in [1usize, 4] {
            let default_cfg = SafeConfig { seed: 5, n_iterations: 2, ..SafeConfig::paper() }
                .with_threads(threads);
            assert_eq!(default_cfg.selection, SelectionMode::Exact);
            let baseline = Safe::new(default_cfg)
                .fit(&data, None)
                .unwrap_or_else(|e| panic!("{name}: default fit failed: {e}"));
            let explicit = fit(&data, SelectionMode::Exact, threads, 5);
            assert_outcomes_identical(
                name,
                &format!("(default vs explicit exact, threads={threads})"),
                &baseline,
                &explicit,
            );
            assert_eq!(
                final_auc(&data, &baseline).to_bits(),
                final_auc(&data, &explicit).to_bits(),
                "{name}: AUC bits differ at threads={threads}"
            );
        }
    }
}

/// Exact mode must also stay thread-invariant with the mode set explicitly
/// (the staged plumbing sits on the same code path; it must not perturb
/// the parallel determinism contract).
#[test]
fn exact_mode_is_thread_invariant() {
    for (name, data) in shapes() {
        let serial = fit(&data, SelectionMode::Exact, 1, 5);
        let parallel = fit(&data, SelectionMode::Exact, 4, 5);
        assert_outcomes_identical(name, "(threads 1 vs 4)", &serial, &parallel);
    }
}

/// Contract 2: staged selection holds downstream AUC within ±0.005 of
/// exact on every dataset shape and every sweep seed.
#[test]
fn staged_mode_holds_auc_parity_with_exact() {
    for (name, data) in shapes() {
        for seed in SEEDS {
            let exact = fit(&data, SelectionMode::Exact, 1, seed);
            let staged = fit(&data, SelectionMode::Staged, 1, seed);
            assert!(
                !exact.plan.outputs.is_empty(),
                "{name}/seed {seed}: exact selected nothing — dataset too weak"
            );
            assert!(
                !staged.plan.outputs.is_empty(),
                "{name}/seed {seed}: staged selected nothing"
            );
            let e = final_auc(&data, &exact);
            let s = final_auc(&data, &staged);
            assert!(
                (e - s).abs() <= AUC_TOLERANCE,
                "{name}/seed {seed}: staged AUC {s:.6} drifted past ±{AUC_TOLERANCE} \
                 from exact AUC {e:.6}"
            );
        }
    }
}

/// Staged selection is itself deterministic across thread budgets: the
/// subsample order and finalist set depend only on (seed, rung), so the
/// whole staged run must be bit-identical at threads 1 and 4.
#[test]
fn staged_mode_is_thread_invariant() {
    for (name, data) in shapes() {
        let serial = fit(&data, SelectionMode::Staged, 1, 5);
        let parallel = fit(&data, SelectionMode::Staged, 4, 5);
        assert_outcomes_identical(name, "(staged, threads 1 vs 4)", &serial, &parallel);
        assert_eq!(
            final_auc(&data, &serial).to_bits(),
            final_auc(&data, &parallel).to_bits(),
            "{name}: staged AUC bits differ across thread budgets"
        );
    }
}

/// The staged pruner must actually engage somewhere in this sweep — a
/// suite where every pool short-circuits would vacuously pass parity.
#[test]
fn staged_pruner_engages_on_the_interaction_shape() {
    let data = interaction_dataset();
    let staged = fit(&data, SelectionMode::Staged, 1, 5);
    let pruned = staged
        .report
        .iterations
        .iter()
        .flat_map(|it| it.stages.iter())
        .any(|st| st.stage == "staged-prune" && st.features_in > st.features_out);
    assert!(
        pruned,
        "no staged-prune stage shrank the pool; report: {:#?}",
        staged.report.iterations
    );
}
