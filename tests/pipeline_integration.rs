//! Cross-crate integration: datagen → SAFE/baselines → plan → models.

use safe::baselines::{FcTree, Tfc};
use safe::core::engineer::{FeatureEngineer, Identity};
use safe::core::plan::FeaturePlan;
use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};
use safe::ops::registry::OperatorRegistry;

fn interaction_split() -> (safe::data::Dataset, safe::data::Dataset) {
    let config = SyntheticConfig {
        n_rows: 2_000,
        dim: 8,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        // Chosen so the raw-feature LR baseline is weak enough that
        // materialized interactions show a clear gain (the vendored RNG
        // produces different draws than the original crates.io rand).
        seed: 5,
        ..Default::default()
    };
    let full = generate(&config);
    let (train, test) = safe::data::split::train_test_split(&full, 0.3, 1).unwrap();
    (train, test)
}

#[test]
fn every_engineer_produces_portable_plans() {
    let (train, test) = interaction_split();
    let engineers: Vec<Box<dyn FeatureEngineer>> = vec![
        Box::new(Identity),
        Box::new(Safe::new(SafeConfig { seed: 1, ..SafeConfig::paper() })),
        Box::new(Safe::new(SafeConfig::rand_baseline(1))),
        Box::new(Safe::new(SafeConfig::imp_baseline(1))),
        Box::new(Tfc::default()),
        Box::new(FcTree::default()),
    ];
    for engineer in engineers {
        let plan = engineer.engineer(&train, None).unwrap();
        // Serialize, reparse, apply to unseen data.
        let text = plan.to_text();
        let back = FeaturePlan::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: plan codec failed: {e}", engineer.method_name()));
        assert_eq!(plan, back, "{}", engineer.method_name());
        let transformed = back.apply(&test).unwrap();
        assert_eq!(transformed.n_rows(), test.n_rows());
        assert_eq!(transformed.n_cols(), plan.outputs.len());
        assert!(transformed.labels().is_some());
    }
}

#[test]
fn safe_features_help_a_linear_model_on_interaction_data() {
    // The signature result: interactions are invisible to LR on raw
    // features but become linear once SAFE materializes the products.
    let (train, test) = interaction_split();
    let outcome = Safe::new(SafeConfig { seed: 5, ..SafeConfig::paper() })
        .fit(&train, None)
        .unwrap();
    let train_new = outcome.plan.apply(&train).unwrap();
    let test_new = outcome.plan.apply(&test).unwrap();
    let before = evaluate_auc(ClassifierKind::Lr, &train, &test, 0).unwrap();
    let after = evaluate_auc(ClassifierKind::Lr, &train_new, &test_new, 0).unwrap();
    assert!(
        after > before + 0.02,
        "LR should gain from materialized interactions: {before:.4} -> {after:.4}"
    );
}

#[test]
fn all_nine_classifiers_run_on_engineered_features() {
    let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.3, 7);
    let outcome = Safe::new(SafeConfig { seed: 7, ..SafeConfig::paper() })
        .fit(&split.train, None)
        .unwrap();
    let train_new = outcome.plan.apply(&split.train).unwrap();
    let test_new = outcome.plan.apply(&split.test).unwrap();
    for kind in ClassifierKind::ALL {
        let a = evaluate_auc(kind, &train_new, &test_new, 0)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.abbrev()));
        assert!(
            a > 0.5,
            "{} should beat chance on planted-signal data, got {a}",
            kind.abbrev()
        );
    }
}

#[test]
fn plans_survive_custom_registries() {
    // A plan learned with the standard registry compiles against any
    // registry containing its operators — and fails loudly otherwise.
    let (train, _) = interaction_split();
    let outcome = Safe::new(SafeConfig { seed: 2, ..SafeConfig::paper() })
        .fit(&train, None)
        .unwrap();
    assert!(outcome.plan.compile(&OperatorRegistry::standard()).is_ok());
    assert!(outcome.plan.compile(&OperatorRegistry::arithmetic()).is_ok());
    if !outcome.plan.steps.is_empty() {
        assert!(outcome.plan.compile(&OperatorRegistry::empty()).is_err());
    }
}

#[test]
fn engineered_validation_sets_stay_aligned() {
    let split = generate_benchmark_scaled(BenchmarkId::Magic, 0.03, 11);
    assert!(split.valid.is_some());
    let outcome = Safe::new(SafeConfig { seed: 11, ..SafeConfig::paper() })
        .fit(&split.train, split.valid.as_ref())
        .unwrap();
    let v = split.valid.as_ref().unwrap();
    let v_new = outcome.plan.apply(v).unwrap();
    assert_eq!(v_new.n_rows(), v.n_rows());
    assert_eq!(v_new.labels(), v.labels());
    assert_eq!(v_new.feature_names(), outcome.plan.outputs.iter().map(|s| s.as_str()).collect::<Vec<_>>());
}

#[test]
fn safe_is_idempotent_on_its_own_output_names() {
    // Applying the plan twice (plan of plan output) is not meaningful, but
    // the candidate-set union in a second iteration must not duplicate
    // column names — covered by running 2 iterations.
    let (train, _) = interaction_split();
    let outcome = Safe::new(SafeConfig {
        n_iterations: 2,
        seed: 3,
        ..SafeConfig::paper()
    })
    .fit(&train, None)
    .unwrap();
    let mut names = outcome.plan.outputs.clone();
    names.sort();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "no duplicate output names");
}
