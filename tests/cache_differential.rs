//! Cached-vs-cold differential suite: the cross-iteration training caches
//! (`safe::core::cache`) and the histogram-subtraction tree grower must be
//! *bit-identical* to a from-scratch run. `SafeConfig::cache` only changes
//! how repeated work is resolved — a bin-cache hit hands back the same
//! quantization a fresh fit would compute, a stats-cache hit returns the
//! same finalized `f64`, and histogram subtraction is performed by both
//! paths — so toggling it must not move a single observable bit: not a
//! plan byte, not a funnel count, not a downstream AUC. These tests pin
//! that contract (see `DESIGN.md` §12).

use proptest::prelude::*;

use safe::core::{Safe, SafeConfig, SafeOutcome};
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::gbm::binner::BinnedDataset;
use safe::models::classifier::{evaluate_auc, ClassifierKind};
use safe::stats::par::Parallelism;

/// Thread budgets under test: the caches must be transparent in serial and
/// parallel runs alike.
const THREADS: [usize; 2] = [1, 4];

/// Interaction-heavy synthetic data: the shape SAFE's generation stage is
/// built for, so the pipeline completes with a non-trivial funnel.
fn interaction_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 900,
        dim: 6,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        seed: 11,
        ..Default::default()
    })
}

/// NaN-heavy data: a third of the draws in the affected columns are
/// missing, so the missing bin, IV NaN handling, and pairwise-finite
/// Pearson all participate in the cached values.
fn nan_heavy_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 700,
        dim: 12,
        n_signal: 5,
        n_interactions: 2,
        noise: 0.3,
        missing_rate: 0.35,
        seed: 23,
        ..Default::default()
    })
}

/// Degenerate data: a small synthetic base plus a constant column and an
/// all-NaN column. Cached and cold runs must agree on which candidates get
/// discarded as degenerate.
fn degenerate_dataset() -> Dataset {
    let base = generate(&SyntheticConfig {
        n_rows: 600,
        dim: 5,
        n_signal: 3,
        n_interactions: 2,
        noise: 0.25,
        seed: 37,
        ..Default::default()
    });
    let mut names: Vec<String> = base.meta().iter().map(|m| m.name.clone()).collect();
    let mut cols: Vec<Vec<f64>> = base.columns().map(<[f64]>::to_vec).collect();
    names.push("konst".to_string());
    cols.push(vec![7.0; base.n_rows()]);
    names.push("void".to_string());
    cols.push(vec![f64::NAN; base.n_rows()]);
    Dataset::from_columns(names, cols, base.labels().map(<[u8]>::to_vec)).unwrap()
}

fn fit_run(data: &Dataset, threads: usize, cache: bool) -> SafeOutcome {
    let config =
        SafeConfig { seed: 5, n_iterations: 2, cache, ..SafeConfig::paper() }.with_threads(threads);
    Safe::new(config)
        .fit(data, None)
        .unwrap_or_else(|e| panic!("fit with threads={threads} cache={cache} failed: {e}"))
}

/// Per-iteration downstream AUC: apply each iteration's plan snapshot and
/// evaluate a fixed-seed GBM on a held-out split. Computed independently
/// for each run so the comparison is end-to-end, not short-circuited
/// through the (already asserted) plan equality.
fn per_iteration_aucs(data: &Dataset, outcome: &SafeOutcome) -> Vec<u64> {
    let (train, test) = train_test_split(data, 0.3, 1).unwrap();
    outcome
        .plans_per_iteration
        .iter()
        .map(|plan| {
            let tr = plan.apply(&train).unwrap();
            let te = plan.apply(&test).unwrap();
            evaluate_auc(ClassifierKind::Xgb, &tr, &te, 9).unwrap().to_bits()
        })
        .collect()
}

/// The core differential assertion: at every thread budget, a cached run's
/// observable outputs — plan bytes, per-iteration snapshots, funnel
/// history, structural run report, and downstream AUC bits — match a cold
/// (`cache: false`) run exactly.
fn assert_cache_differential(name: &str, data: &Dataset) {
    for &threads in &THREADS {
        let cold = fit_run(data, threads, false);
        let warm = fit_run(data, threads, true);
        assert!(
            !cold.plan.outputs.is_empty(),
            "{name}: cold baseline selected nothing — dataset too weak to differentiate"
        );
        assert_eq!(
            warm.plan.to_text(),
            cold.plan.to_text(),
            "{name}: plan differs with cache at threads={threads}"
        );
        assert_eq!(
            warm.plans_per_iteration, cold.plans_per_iteration,
            "{name}: per-iteration plans differ with cache at threads={threads}"
        );
        assert_eq!(warm.history.len(), cold.history.len(), "{name}: threads={threads}");
        for (a, b) in warm.history.iter().zip(&cold.history) {
            assert!(
                a.structural_eq(b),
                "{name}: iteration {} history differs with cache at threads={threads}:\n{a:?}\nvs\n{b:?}",
                a.iteration
            );
        }
        assert!(
            warm.report.structural_eq(&cold.report),
            "{name}: run report differs structurally with cache at threads={threads}"
        );
        assert_eq!(
            per_iteration_aucs(data, &warm),
            per_iteration_aucs(data, &cold),
            "{name}: downstream AUC bits differ with cache at threads={threads}"
        );
    }
}

#[test]
fn interaction_heavy_cached_runs_are_bit_identical_to_cold() {
    assert_cache_differential("interaction", &interaction_dataset());
}

#[test]
fn nan_heavy_cached_runs_are_bit_identical_to_cold() {
    assert_cache_differential("nan-heavy", &nan_heavy_dataset());
}

#[test]
fn degenerate_cached_runs_are_bit_identical_to_cold() {
    assert_cache_differential("degenerate", &degenerate_dataset());
}

/// The cache must actually *work*, not just be transparent: by the second
/// iteration the miner re-trains on columns that were already quantized, so
/// its stage telemetry must record bin-cache hits — and a cold run must not
/// emit cache counters at all.
#[test]
fn warm_iterations_reuse_binned_columns() {
    let data = interaction_dataset();
    let warm = fit_run(&data, 1, true);
    let cold = fit_run(&data, 1, false);

    let warm_train = warm.report.iterations[1]
        .stage("gbm-train")
        .expect("second iteration has a gbm-train stage");
    let hits = warm_train.counter("cache_bin_hits").expect("cached run records bin-cache hits");
    let misses = warm_train.counter("cache_bin_misses").unwrap_or(0);
    assert!(hits > 0, "second-iteration miner must reuse cached bin columns");

    // Cold re-binning cost for the same stage is its full column count; the
    // warm run re-bins strictly fewer columns than that.
    assert!(
        misses < hits + misses,
        "warm run re-binned every column: hits={hits} misses={misses}"
    );

    let cold_train = cold.report.iterations[1].stage("gbm-train").unwrap();
    assert_eq!(
        cold_train.counter("cache_bin_hits"),
        None,
        "cold run must not emit cache counters"
    );

    // The selection statistics cache participates too: the iv-filter stage
    // of a cached run records its hit/miss split.
    let warm_iv = warm.report.iterations[0].stage("iv-filter").unwrap();
    assert!(
        warm_iv.counter("cache_iv_misses").is_some(),
        "cached run records IV cache telemetry"
    );
    assert_eq!(
        cold.report.iterations[0].stage("iv-filter").unwrap().counter("cache_iv_misses"),
        None
    );
}

fn assert_binned_eq(a: &BinnedDataset, b: &BinnedDataset) {
    assert_eq!(a.n_features(), b.n_features());
    assert_eq!(a.n_rows(), b.n_rows());
    for f in 0..a.n_features() {
        assert_eq!(a.bins(f), b.bins(f), "bin column {f} differs");
        assert_eq!(a.mapper(f).n_value_bins(), b.mapper(f).n_value_bins(), "mapper {f} differs");
        for s in 0..a.mapper(f).n_split_candidates() as u16 {
            assert_eq!(
                a.mapper(f).threshold(s).to_bits(),
                b.mapper(f).threshold(s).to_bits(),
                "threshold {s} of feature {f} differs"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental binning contract: for any column values (including NaN),
    /// any base/extension split, and any bin budget, `extend_with` on a
    /// fitted `BinnedDataset` equals a fresh fit of the concatenated matrix
    /// — same bins, same mappers, same thresholds to the bit.
    #[test]
    fn extend_with_matches_fresh_fit_of_concatenation(
        vals in prop::collection::vec(-1e3f64..1e3, 24..160),
        split_at in 1usize..4,
        max_bins in 4usize..64,
    ) {
        const N_COLS: usize = 4;
        let n_rows = vals.len() / N_COLS;
        let columns: Vec<Vec<f64>> = (0..N_COLS)
            .map(|c| {
                vals[c * n_rows..(c + 1) * n_rows]
                    .iter()
                    // Carve a NaN band out of the value range so missing
                    // values participate in most cases.
                    .map(|&v| if v > 900.0 { f64::NAN } else { v })
                    .collect()
            })
            .collect();
        let names: Vec<String> = (0..N_COLS).map(|c| format!("col{c}")).collect();

        let base = Dataset::from_columns(
            names[..split_at].to_vec(),
            columns[..split_at].to_vec(),
            None,
        ).unwrap();
        let extra = Dataset::from_columns(
            names[split_at..].to_vec(),
            columns[split_at..].to_vec(),
            None,
        ).unwrap();
        let concat = Dataset::from_columns(names.clone(), columns.clone(), None).unwrap();

        let mut incremental = BinnedDataset::fit(&base, max_bins, Parallelism::auto());
        incremental.extend_with(&extra, Parallelism::auto()).unwrap();
        let fresh = BinnedDataset::fit(&concat, max_bins, Parallelism::auto());
        assert_binned_eq(&incremental, &fresh);
    }
}
