//! Resident-vs-chunked differential suite: the out-of-core backend behind
//! the `ColumnRead` column-access API must be *bit-identical* to the fully
//! resident path. Chunk boundaries are a storage concern only — segments
//! are visited in ascending fixed row order and every kernel consumes the
//! exact same `f64` sequence either way — so a fit on a chunked (or
//! spill-backed) dataset must agree with its resident twin on every plan
//! byte, every funnel count, every structural report, and every downstream
//! AUC bit, at every thread count and chunk size. These tests pin that
//! contract (see `DESIGN.md`, "Out-of-core backend").

use safe::core::{Safe, SafeConfig, SafeOutcome};
use safe::data::chunk::ChunkOptions;
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

/// Thread budgets under test: serial and a parallel budget, so chunked
/// reads are exercised both single-threaded and from concurrent workers.
const THREADS: [usize; 2] = [1, 4];

/// Chunk sizes under test: one that fragments every dataset into many
/// ragged-tailed chunks, and one larger than most test tables (the
/// single-chunk degenerate case).
const CHUNK_ROWS: [usize; 2] = [64, 1024];

/// Interaction-heavy synthetic data: the shape SAFE's generation stage is
/// built for, so the pipeline completes with a non-trivial funnel.
fn interaction_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 900,
        dim: 6,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        seed: 11,
        ..Default::default()
    })
}

/// NaN-heavy data: a third of the draws in the affected columns are
/// missing, so chunk decode, binning, IV, and Pearson all stream NaN
/// payloads through the chunked reader.
fn nan_heavy_dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 700,
        dim: 12,
        n_signal: 5,
        n_interactions: 2,
        noise: 0.3,
        missing_rate: 0.35,
        seed: 23,
        ..Default::default()
    })
}

/// Degenerate data: a small synthetic base plus a constant column and an
/// all-NaN column. The chunked path must agree with the resident path on
/// which candidates get discarded as degenerate.
fn degenerate_dataset() -> Dataset {
    let base = generate(&SyntheticConfig {
        n_rows: 600,
        dim: 5,
        n_signal: 3,
        n_interactions: 2,
        noise: 0.25,
        seed: 37,
        ..Default::default()
    });
    let mut names: Vec<String> = base.meta().iter().map(|m| m.name.clone()).collect();
    let mut cols: Vec<Vec<f64>> = base.columns().map(<[f64]>::to_vec).collect();
    names.push("konst".to_string());
    cols.push(vec![7.0; base.n_rows()]);
    names.push("void".to_string());
    cols.push(vec![f64::NAN; base.n_rows()]);
    Dataset::from_columns(names, cols, base.labels().map(<[u8]>::to_vec)).unwrap()
}

fn fit(data: &Dataset, threads: usize) -> SafeOutcome {
    let config = SafeConfig { seed: 5, n_iterations: 2, ..SafeConfig::paper() }
        .with_threads(threads);
    Safe::new(config)
        .fit(data, None)
        .unwrap_or_else(|e| panic!("fit with threads={threads} failed: {e}"))
}

/// Per-iteration downstream AUC: apply each iteration's plan snapshot and
/// evaluate a fixed-seed GBM on a held-out split. Always computed against
/// the resident base so both backends are scored on identical bytes, and
/// independently per run so the comparison is end-to-end.
fn per_iteration_aucs(eval_base: &Dataset, outcome: &SafeOutcome) -> Vec<u64> {
    let (train, test) = train_test_split(eval_base, 0.3, 1).unwrap();
    outcome
        .plans_per_iteration
        .iter()
        .map(|plan| {
            let tr = plan.apply(&train).unwrap();
            let te = plan.apply(&test).unwrap();
            evaluate_auc(ClassifierKind::Xgb, &tr, &te, 9).unwrap().to_bits()
        })
        .collect()
}

/// The core differential assertion: every observable output of a fit on
/// the chunked twin — plan bytes, per-iteration snapshots, funnel history,
/// structural run report, and downstream AUC bits — matches the resident
/// fit exactly, for every thread count × chunk size.
fn assert_backend_differential(name: &str, base: &Dataset) {
    for &threads in &THREADS {
        let resident = fit(base, threads);
        let resident_aucs = per_iteration_aucs(base, &resident);
        assert!(
            !resident.plan.outputs.is_empty(),
            "{name}: resident baseline selected nothing — dataset too weak to differentiate"
        );
        for &chunk_rows in &CHUNK_ROWS {
            let twin = base
                .to_chunked(ChunkOptions::in_memory(chunk_rows))
                .unwrap_or_else(|e| panic!("{name}: to_chunked({chunk_rows}) failed: {e}"));
            assert!(twin.has_chunked_columns(), "{name}: twin must actually be chunked");
            let run = fit(&twin, threads);
            let ctx = format!("{name}: threads={threads} chunk_rows={chunk_rows}");
            assert_eq!(
                run.plan.to_text(),
                resident.plan.to_text(),
                "{ctx}: plan differs between backends"
            );
            assert_eq!(
                run.plans_per_iteration, resident.plans_per_iteration,
                "{ctx}: per-iteration plans differ between backends"
            );
            assert_eq!(run.history.len(), resident.history.len(), "{ctx}: history length");
            for (a, b) in run.history.iter().zip(&resident.history) {
                assert!(
                    a.structural_eq(b),
                    "{ctx}: iteration {} history differs:\n{a:?}\nvs\n{b:?}",
                    a.iteration
                );
            }
            assert!(
                run.report.structural_eq(&resident.report),
                "{ctx}: run report differs structurally between backends"
            );
            assert_eq!(
                per_iteration_aucs(base, &run),
                resident_aucs,
                "{ctx}: downstream AUC bits differ between backends"
            );
        }
    }
}

#[test]
fn interaction_heavy_backends_are_bit_identical() {
    assert_backend_differential("interaction", &interaction_dataset());
}

#[test]
fn nan_heavy_backends_are_bit_identical() {
    assert_backend_differential("nan-heavy", &nan_heavy_dataset());
}

#[test]
fn degenerate_backends_are_bit_identical() {
    assert_backend_differential("degenerate", &degenerate_dataset());
}

/// Fresh per-test spill root under the system temp dir.
fn spill_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("safe_oocore_diff")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spill-backed fit on a table ≥10× the resident chunk budget must (a)
/// complete, (b) match the resident fit bit-for-bit, (c) keep the decoded
/// high-water mark within budget plus one in-flight chunk, and (d) leave
/// no spill segments behind once the dataset is dropped.
#[test]
fn spilled_fit_on_ten_times_budget_is_bit_identical_and_bounded() {
    let base = generate(&SyntheticConfig {
        n_rows: 4_000,
        dim: 24,
        n_signal: 5,
        n_interactions: 3,
        noise: 0.2,
        missing_rate: 0.1,
        seed: 41,
        ..Default::default()
    });
    let root = spill_root("ten_times");
    let entries_before = std::fs::read_dir(&root).unwrap().count();

    let chunk_rows = 64;
    let resident_chunks = 6;
    let resident = fit(&base, 4);
    let resident_aucs = per_iteration_aucs(&base, &resident);
    {
        let spilled = base
            .to_chunked(ChunkOptions::spilled(chunk_rows, resident_chunks, &root))
            .unwrap();
        let store = *spilled.chunk_stores().first().expect("spilled twin has a store");
        assert!(store.is_spilled());
        let budget = store.budget_bytes().expect("spilled store has a budget");
        let table = store.table_bytes();
        assert!(
            table >= 10 * budget,
            "table ({table} B) must be >= 10x the resident budget ({budget} B)"
        );

        let run = fit(&spilled, 4);
        assert_eq!(run.plan.to_text(), resident.plan.to_text(), "spilled plan differs");
        assert_eq!(run.plans_per_iteration, resident.plans_per_iteration);
        assert!(run.report.structural_eq(&resident.report));
        assert_eq!(per_iteration_aucs(&base, &run), resident_aucs, "spilled AUC bits differ");

        let stats = store.stats();
        let chunk_bytes = (chunk_rows * base.n_cols() * std::mem::size_of::<f64>()) as u64;
        assert!(
            stats.peak_resident_bytes <= budget + chunk_bytes,
            "peak resident {} B exceeded budget {} B (+{} B in-flight chunk)",
            stats.peak_resident_bytes,
            budget,
            chunk_bytes
        );
        assert!(stats.evictions > 0, "a 10x-budget fit must evict");
    }
    // Dropping the dataset must reclaim every spill segment and the
    // per-store directory itself.
    assert_eq!(
        std::fs::read_dir(&root).unwrap().count(),
        entries_before,
        "spill segments leaked after drop"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Checkpoints are backend-neutral: a checkpoint written by a resident fit
/// resumes under the chunked twin (the fingerprint records only
/// result-determining settings, never storage placement), and the resumed
/// outcome is bit-identical.
#[test]
fn checkpoint_resume_is_backend_neutral() {
    let base = interaction_dataset();
    let ckpt_dir = spill_root("ckpt_xbackend");
    let config = || SafeConfig {
        seed: 5,
        n_iterations: 2,
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..SafeConfig::paper()
    };

    let resident = Safe::new(config()).fit(&base, None).unwrap();
    let resident_aucs = per_iteration_aucs(&base, &resident);

    let twin = base.to_chunked(ChunkOptions::in_memory(64)).unwrap();
    let resumed = Safe::new(config())
        .fit_resumed(&twin, None)
        .expect("resident checkpoint must resume under the chunked backend");
    assert_eq!(resumed.plan.to_text(), resident.plan.to_text());
    assert_eq!(resumed.plans_per_iteration, resident.plans_per_iteration);
    assert_eq!(per_iteration_aucs(&base, &resumed), resident_aucs);

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
