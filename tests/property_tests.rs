//! Property-based tests (proptest) on the cross-crate invariants that the
//! SAFE pipeline leans on.

use proptest::prelude::*;

use safe::core::plan::{FeaturePlan, PlanStep};
use safe::data::binning::{bin_column, BinStrategy};
use safe::ops::registry::OperatorRegistry;
use safe::stats::auc::auc;
use safe::stats::divergence::jensen_shannon;
use safe::stats::entropy::{gain_ratio, information_gain};
use safe::stats::iv::information_value;
use safe::stats::pearson::pearson;

fn finite_column(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 2..max_len)
}

fn labels_like(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pearson_is_bounded_and_symmetric(
        x in finite_column(200),
        y in finite_column(200),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let r = pearson(x, y);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((r - pearson(y, x)).abs() < 1e-12);
    }

    #[test]
    fn pearson_affine_invariance(
        x in finite_column(100),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let y: Vec<f64> = x.iter().map(|&v| a * v + b).collect();
        let r = pearson(&x, &y);
        // Unless x is (nearly) constant, a positive-affine copy correlates 1.
        let distinct = x.iter().any(|&v| (v - x[0]).abs() > 1e-6);
        if distinct {
            prop_assert!(r > 0.999, "r = {r}");
        }
    }

    #[test]
    fn iv_is_nonnegative_and_label_flip_invariant(
        values in finite_column(300),
        flip_bits in prop::collection::vec(any::<bool>(), 300),
    ) {
        let labels: Vec<u8> = flip_bits.iter().take(values.len()).map(|&b| b as u8).collect();
        let values = &values[..labels.len()];
        let iv = information_value(values, &labels, 8).unwrap();
        prop_assert!(iv >= -1e-12, "iv = {iv}");
        let flipped: Vec<u8> = labels.iter().map(|&l| 1 - l).collect();
        let iv2 = information_value(values, &flipped, 8).unwrap();
        prop_assert!((iv - iv2).abs() < 1e-9);
    }

    #[test]
    fn binning_is_a_partition(
        values in prop::collection::vec(prop_oneof![
            (-1e6f64..1e6).prop_map(|v| v),
            Just(f64::NAN),
        ], 2..200),
        n_bins in 2usize..16,
    ) {
        let a = bin_column(&values, n_bins, BinStrategy::EqualFrequency).unwrap();
        prop_assert_eq!(a.bins.len(), values.len());
        // Every row lands in a valid bin.
        prop_assert!(a.bins.iter().all(|&b| b < a.n_bins));
        // Binning is order-preserving on finite values.
        let mut pairs: Vec<(f64, usize)> = values
            .iter()
            .copied()
            .zip(a.bins.iter().copied())
            .filter(|(v, _)| v.is_finite())
            .collect();
        pairs.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn information_gain_bounded_by_label_entropy(
        cells in prop::collection::vec(0usize..6, 10..200),
        bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        let labels: Vec<u8> = bits.iter().take(cells.len()).map(|&b| b as u8).collect();
        let ig = information_gain(&cells, &labels, 6);
        let h = safe::stats::entropy::label_entropy(&labels);
        prop_assert!(ig >= 0.0);
        prop_assert!(ig <= h + 1e-9, "ig {ig} > H(Y) {h}");
        let gr = gain_ratio(&cells, &labels, 6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&gr), "gain ratio {gr}");
    }

    #[test]
    fn auc_is_bounded_and_complement_symmetric(
        scores in finite_column(200),
        bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        let labels: Vec<u8> = bits.iter().take(scores.len()).map(|&b| b as u8).collect();
        let scores = &scores[..labels.len()];
        let a = auc(scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        // Negating scores flips the ranking (when both classes present).
        let neg: Vec<f64> = scores.iter().map(|v| -v).collect();
        let b = auc(&neg, &labels);
        let has_both = labels.iter().any(|&l| l == 0) && labels.iter().any(|&l| l == 1);
        if has_both {
            prop_assert!((a + b - 1.0).abs() < 1e-9, "a = {a}, b = {b}");
        }
    }

    #[test]
    fn jsd_bounded_symmetric(
        p in prop::collection::vec(0.0f64..10.0, 2..20),
        q in prop::collection::vec(0.0f64..10.0, 2..20),
    ) {
        let n = p.len().min(q.len());
        let mut p = p[..n].to_vec();
        let mut q = q[..n].to_vec();
        // Ensure non-empty distributions.
        p[0] += 1e-3;
        q[0] += 1e-3;
        let d = jensen_shannon(&p, &q);
        prop_assert!(d >= -1e-12);
        prop_assert!(d <= std::f64::consts::LN_2 + 1e-9);
        prop_assert!((d - jensen_shannon(&q, &p)).abs() < 1e-9);
    }

    #[test]
    fn operators_batch_equals_rowwise(
        a in finite_column(50),
        b in finite_column(50),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let registry = OperatorRegistry::standard();
        for op in registry.by_arity(2) {
            let fitted = match op.fit(&[a, b], None) {
                Ok(f) => f,
                Err(_) => continue,
            };
            let batch = fitted.apply(&[a, b]);
            for i in 0..n {
                let single = fitted.apply_row(&[a[i], b[i]]);
                prop_assert!(
                    batch[i] == single || (batch[i].is_nan() && single.is_nan()),
                    "{} row {i}: batch {} vs single {}",
                    op.name(), batch[i], single
                );
            }
        }
    }

    #[test]
    fn stateful_operators_round_trip_params(
        col in finite_column(100),
    ) {
        let registry = OperatorRegistry::standard();
        let labels: Vec<u8> = (0..col.len()).map(|i| (i % 2) as u8).collect();
        for name in ["minmax", "zscore", "disc_width", "disc_freq", "disc_chimerge"] {
            let op = registry.get(name).unwrap();
            let fitted = match op.fit(&[&col], Some(&labels)) {
                Ok(f) => f,
                Err(_) => continue,
            };
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            for &probe in col.iter().take(10) {
                let x = fitted.apply_row(&[probe]);
                let y = rebuilt.apply_row(&[probe]);
                prop_assert!(x == y || (x.is_nan() && y.is_nan()), "{name}");
            }
        }
    }

    #[test]
    fn plan_codec_round_trips_arbitrary_params(
        params in prop::collection::vec(any::<f64>(), 0..8),
    ) {
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "step".into(),
                op: "zscore".into(),
                parents: vec!["a".into()],
                params: params.clone(),
            }],
            outputs: vec!["step".into()],
        };
        let text = plan.to_text();
        let back = FeaturePlan::from_text(&text).unwrap();
        // Bit-exact round trip, including NaN/inf/-0.0 payloads.
        prop_assert_eq!(back.steps[0].params.len(), params.len());
        for (x, y) in back.steps[0].params.iter().zip(&params) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The plan parser must never panic, whatever bytes arrive — a plan file
    /// is an external artifact in production.
    #[test]
    fn plan_parser_never_panics(text in "\\PC*") {
        let _ = FeaturePlan::from_text(&text);
    }

    /// Tab-structured garbage with a valid header is still rejected cleanly.
    #[test]
    fn structured_garbage_is_rejected_not_panicking(
        fields in prop::collection::vec("[A-Za-z0-9(),.]{0,12}", 0..10),
    ) {
        let mut text = String::from("SAFEPLAN\t1\n");
        text.push_str(&fields.join("\t"));
        text.push('\n');
        let _ = FeaturePlan::from_text(&text);
    }
}

// --- degenerate datasets ----------------------------------------------------
//
// The robustness contract of `Safe::fit`: on any dataset — constant columns,
// all-NaN columns, ±inf cells, tiny row counts, one-sided labels — it returns
// `Ok` (possibly degraded, with accurate per-iteration status) or a typed
// `SafeError`. It must never panic.

use safe::core::{IterationStatus, Safe, SafeConfig};
use safe::data::Dataset;

/// One column of a pathological dataset: healthy, constant, all-NaN, or
/// salted with non-finite cells.
fn degenerate_column(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        prop::collection::vec(-100.0f64..100.0, n..=n),
        (-100.0f64..100.0).prop_map(move |v| vec![v; n]),
        Just(vec![f64::NAN; n]),
        prop::collection::vec(
            prop_oneof![
                (-100.0f64..100.0).prop_map(|v| v),
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            n..=n,
        ),
    ]
}

fn degenerate_dataset() -> impl Strategy<Value = Dataset> {
    (4usize..32, 1usize..4).prop_flat_map(|(n_rows, n_cols)| {
        let cols = prop::collection::vec(degenerate_column(n_rows), n_cols..=n_cols);
        // Bias toward imbalance so single-class label sets appear often.
        let labels = prop::collection::vec(
            (0u8..=3).prop_map(|v| (v == 3) as u8),
            n_rows..=n_rows,
        );
        (cols, labels).prop_map(|(cols, labels)| {
            let names = (0..cols.len()).map(|i| format!("f{i}")).collect();
            Dataset::from_columns(names, cols, Some(labels)).unwrap()
        })
    })
}

/// A small configuration so each proptest case stays cheap.
fn tiny_config() -> SafeConfig {
    let mut miner = safe::gbm::config::GbmConfig::miner();
    miner.n_rounds = 4;
    SafeConfig {
        miner: miner.clone(),
        ranker: miner,
        gamma: 8,
        ..SafeConfig::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the dataset, `fit` must not panic: it returns `Ok` with a
    /// coherent outcome, or a typed error.
    #[test]
    fn fit_on_degenerate_data_never_panics(ds in degenerate_dataset()) {
        match Safe::new(tiny_config()).fit(&ds, None) {
            Ok(outcome) => {
                prop_assert_eq!(
                    outcome.history.len(),
                    outcome.plans_per_iteration.len(),
                    "report/plan alignment"
                );
                prop_assert!(
                    !outcome.plan.outputs.is_empty(),
                    "an Ok outcome must keep at least one feature"
                );
                for report in &outcome.history {
                    if let IterationStatus::Degraded { reason, .. } = &report.status {
                        prop_assert!(!reason.is_empty(), "degradation carries a reason");
                    }
                }
            }
            Err(e) => {
                // Typed rejection is fine; its message must be non-empty so
                // the CLI chain renderer has something to show.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Repair mode must also hold the no-panic contract, and any surviving
    /// plan must not reference a column the audit dropped.
    #[test]
    fn repair_policy_never_panics_and_plans_stay_consistent(ds in degenerate_dataset()) {
        let mut config = tiny_config();
        config.audit = safe::data::AuditConfig {
            policy: safe::data::AuditPolicy::Repair,
            ..Default::default()
        };
        if let Ok(outcome) = Safe::new(config).fit(&ds, None) {
            let dropped: Vec<&str> = outcome
                .audit
                .actions
                .iter()
                .filter_map(|a| match a {
                    safe::data::RepairAction::DroppedColumn { name, .. } => Some(name.as_str()),
                    _ => None,
                })
                .collect();
            for name in &dropped {
                prop_assert!(
                    !outcome.plan.input_names.iter().any(|n| n == name),
                    "dropped column {} must not be a plan input", name
                );
            }
        }
    }
}
