//! Crash differential (chaos) suite: kill `Safe::fit` at each checkpoint
//! I/O failpoint, resume with `Safe::fit_resumed`, and assert the final
//! plan, per-iteration snapshots, funnel history, structural run report,
//! and downstream AUC bits are *bit-identical* to an uninterrupted run —
//! in serial and parallel alike (see `DESIGN.md` §13).
//!
//! Requires the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test crash_differential
//! ```
//!
//! Failure modes exercised (the eight `ckpt/*` failpoints plus a manual
//! torn-write sweep):
//!
//! - `ckpt/kill-after-save`  — crash after a durable snapshot: resume
//!   continues from it.
//! - `ckpt/kill-before-save` — crash before any snapshot: resume cold
//!   starts.
//! - `ckpt/write-fail`, `ckpt/fsync-fail`, `ckpt/rename-fail` — the save
//!   fails but training must carry on (durability degrades, results
//!   don't); with a crash on top, resume cold starts.
//! - `ckpt/torn-write`, `ckpt/corrupt-byte` — the snapshot on disk is
//!   damaged: resume quarantines it (`*.corrupt`) and walks down the
//!   recovery ladder.
//! - `ckpt/load-fail` — the newest snapshot is unreadable: resume falls
//!   back to the previous good one.

#![cfg(feature = "failpoints")]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use safe::core::checkpoint::CheckpointStore;
use safe::core::{Safe, SafeConfig, SafeError, SafeOutcome};
use safe::data::failpoints;
use safe::data::split::train_test_split;
use safe::data::Dataset;
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

/// Thread budgets under test: crash recovery must be bit-identical in
/// serial and parallel runs alike.
const THREADS: [usize; 2] = [1, 4];

/// Serializes tests that mutate the global failpoint registry.
static FP_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock and guarantees a clean slate before and after
/// the test body, even if an assertion panics.
struct FpGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn fp_guard() -> FpGuard<'static> {
    let lock = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::disarm_all();
    FpGuard { _lock: lock }
}

impl Drop for FpGuard<'_> {
    fn drop(&mut self) {
        failpoints::disarm_all();
    }
}

/// Interaction-heavy synthetic data: the shape SAFE's generation stage is
/// built for, so the pipeline completes with a non-trivial funnel.
fn dataset() -> Dataset {
    generate(&SyntheticConfig {
        n_rows: 800,
        dim: 6,
        n_signal: 4,
        n_interactions: 3,
        marginal_weight: 0.1,
        noise: 0.2,
        seed: 11,
        ..Default::default()
    })
}

fn config(dir: Option<&Path>, threads: usize) -> SafeConfig {
    SafeConfig {
        seed: 5,
        n_iterations: 2,
        checkpoint_dir: dir.map(Path::to_path_buf),
        ..SafeConfig::paper()
    }
    .with_threads(threads)
}

/// Fresh per-scenario checkpoint directory under the system temp dir.
fn temp_dir(name: &str, threads: usize) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("safe_crash_diff")
        .join(format!("{name}_t{threads}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The uninterrupted reference outcome per thread count, computed once.
/// Checkpoint telemetry is sink-only, so an un-checkpointed run is a valid
/// baseline for every scenario's plan/history/report comparison.
fn baseline(threads: usize) -> SafeOutcome {
    static CACHE: OnceLock<Mutex<HashMap<usize, SafeOutcome>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(threads)
        .or_insert_with(|| {
            Safe::new(config(None, threads))
                .fit(&dataset(), None)
                .unwrap_or_else(|e| panic!("baseline fit at threads={threads} failed: {e}"))
        })
        .clone()
}

/// Per-iteration downstream AUC bits: apply each iteration's plan snapshot
/// and evaluate a fixed-seed GBM on a held-out split, independently per
/// run, so the comparison is end-to-end.
fn per_iteration_aucs(data: &Dataset, outcome: &SafeOutcome) -> Vec<u64> {
    let (train, test) = train_test_split(data, 0.3, 1).unwrap();
    outcome
        .plans_per_iteration
        .iter()
        .map(|plan| {
            let tr = plan.apply(&train).unwrap();
            let te = plan.apply(&test).unwrap();
            evaluate_auc(ClassifierKind::Xgb, &tr, &te, 9).unwrap().to_bits()
        })
        .collect()
}

/// The crash-differential assertion: every observable output of the
/// resumed run matches the uninterrupted baseline.
fn assert_same_outcome(name: &str, threads: usize, got: &SafeOutcome, check_auc: bool) {
    let want = baseline(threads);
    assert!(
        !want.plan.outputs.is_empty(),
        "{name}: baseline selected nothing — dataset too weak to differentiate"
    );
    assert_eq!(
        got.plan.to_text(),
        want.plan.to_text(),
        "{name}: final plan differs at threads={threads}"
    );
    assert_eq!(
        got.plans_per_iteration, want.plans_per_iteration,
        "{name}: per-iteration plans differ at threads={threads}"
    );
    assert_eq!(got.history.len(), want.history.len(), "{name}: threads={threads}");
    for (a, b) in got.history.iter().zip(&want.history) {
        assert!(
            a.structural_eq(b),
            "{name}: iteration {} history differs at threads={threads}:\n{a:?}\nvs\n{b:?}",
            a.iteration
        );
    }
    assert!(
        got.report.structural_eq(&want.report),
        "{name}: run report differs structurally at threads={threads}"
    );
    if check_auc {
        let data = dataset();
        assert_eq!(
            per_iteration_aucs(&data, got),
            per_iteration_aucs(&data, &want),
            "{name}: downstream AUC bits differ at threads={threads}"
        );
    }
}

/// Arm each point once and run a fit that must die with the injected
/// checkpoint error (the suite's stand-in for the process vanishing).
fn killed_fit(dir: &Path, threads: usize, points: &[&'static str]) -> SafeError {
    for p in points {
        failpoints::arm_once(p);
    }
    let err = Safe::new(config(Some(dir), threads))
        .fit(&dataset(), None)
        .expect_err("armed kill failpoint must abort the fit");
    failpoints::disarm_all();
    assert!(matches!(err, SafeError::Checkpoint(_)), "unexpected kill error: {err}");
    err
}

fn resume(dir: &Path, threads: usize) -> SafeOutcome {
    Safe::new(config(Some(dir), threads))
        .fit_resumed(&dataset(), None)
        .unwrap_or_else(|e| panic!("resume at threads={threads} failed: {e}"))
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    CheckpointStore::new(dir.to_path_buf()).list().unwrap()
}

fn corrupt_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".corrupt"))
        .collect();
    out.sort();
    out
}

#[test]
fn kill_after_save_resumes_from_the_snapshot_bit_identically() {
    let _guard = fp_guard();
    for &threads in &THREADS {
        let dir = temp_dir("kill_after", threads);
        let err = killed_fit(&dir, threads, &["ckpt/kill-after-save"]);
        assert!(err.to_string().contains("checkpoint"), "{err}");
        // The crash happened *after* iteration 0's durable snapshot.
        assert_eq!(snapshot_files(&dir).len(), 1, "one snapshot must survive the crash");
        let resumed = resume(&dir, threads);
        assert_same_outcome("kill-after-save", threads, &resumed, true);
        // The resumed segment finishes the run durably.
        let latest = CheckpointStore::new(dir).load_latest().unwrap().checkpoint.unwrap();
        assert!(latest.terminal.is_final());
    }
}

#[test]
fn kill_before_any_save_cold_starts_bit_identically() {
    let _guard = fp_guard();
    for &threads in &THREADS {
        let dir = temp_dir("kill_before", threads);
        killed_fit(&dir, threads, &["ckpt/kill-before-save"]);
        assert!(snapshot_files(&dir).is_empty(), "no snapshot may exist before the save");
        let resumed = resume(&dir, threads);
        assert_same_outcome("kill-before-save", threads, &resumed, true);
    }
}

/// A failed save must degrade durability, not training: the fit completes
/// and its outputs match the baseline even though no snapshot landed.
#[test]
fn failed_saves_degrade_durability_not_training() {
    let _guard = fp_guard();
    for point in ["ckpt/write-fail", "ckpt/fsync-fail", "ckpt/rename-fail"] {
        let dir = temp_dir(&point.replace('/', "_"), 1);
        failpoints::arm_once(point);
        let outcome = Safe::new(config(Some(&dir), 1))
            .fit(&dataset(), None)
            .unwrap_or_else(|e| panic!("{point}: failed save must not abort the fit: {e}"));
        failpoints::disarm_all();
        assert_same_outcome(point, 1, &outcome, false);
        // Iteration 0's snapshot was lost, later ones still landed.
        let files = snapshot_files(&dir);
        assert!(
            !files.iter().any(|p| p.ends_with("ckpt-000001.safeckpt")),
            "{point}: the failed snapshot must not exist: {files:?}"
        );
        assert!(!files.is_empty(), "{point}: later snapshots must still land");
    }
}

#[test]
fn save_failure_then_crash_cold_starts_bit_identically() {
    let _guard = fp_guard();
    for point in ["ckpt/write-fail", "ckpt/fsync-fail", "ckpt/rename-fail"] {
        for &threads in &THREADS {
            let dir = temp_dir(&format!("{}_crash", point.replace('/', "_")), threads);
            killed_fit(&dir, threads, &[point, "ckpt/kill-after-save"]);
            assert!(
                snapshot_files(&dir).is_empty(),
                "{point}: the failed save must leave no loadable snapshot"
            );
            let resumed = resume(&dir, threads);
            assert_same_outcome(point, threads, &resumed, false);
        }
    }
}

/// `rename-fail` aborts between the temp file and its final name; the
/// stray `*.tmp` must be invisible to the recovery ladder.
#[test]
fn stray_tmp_files_from_a_failed_rename_are_ignored() {
    let _guard = fp_guard();
    let dir = temp_dir("stray_tmp", 1);
    killed_fit(&dir, 1, &["ckpt/rename-fail", "ckpt/kill-after-save"]);
    let has_tmp = std::fs::read_dir(&dir)
        .unwrap()
        .any(|e| e.unwrap().path().to_string_lossy().ends_with(".safeckpt.tmp"));
    assert!(has_tmp, "the aborted rename must leave its temp file behind");
    assert!(snapshot_files(&dir).is_empty(), "the temp file must not be listed");
    let resumed = resume(&dir, 1);
    assert_same_outcome("stray-tmp", 1, &resumed, false);
}

/// A damaged snapshot with no previous good one is *unrecoverable*: resume
/// quarantines it and refuses (the CLI maps this to exit code 7) instead of
/// silently discarding the crashed run's training time. The explicit cold
/// refit then reproduces the baseline exactly.
fn assert_damaged_only_snapshot_is_rejected(name: &str, points: &[&'static str]) {
    for &threads in &THREADS {
        let dir = temp_dir(&name.replace('/', "_"), threads);
        // The damaged save reports success — the crash is what exposes it.
        killed_fit(&dir, threads, points);
        assert_eq!(snapshot_files(&dir).len(), 1, "{name}: the file looks like a snapshot");
        let err = Safe::new(config(Some(&dir), threads))
            .fit_resumed(&dataset(), None)
            .expect_err("an all-corrupt ladder must be rejected, not silently cold-started");
        assert!(matches!(err, SafeError::Checkpoint(_)), "{name}: {err}");
        assert_eq!(corrupt_files(&dir).len(), 1, "{name}: the snapshot must be quarantined");
        assert!(snapshot_files(&dir).is_empty(), "{name}: nothing loadable may remain");
        // Operator-style recovery: an explicit fresh fit matches the baseline.
        let refit = Safe::new(config(Some(&dir), threads)).fit(&dataset(), None).unwrap();
        assert_same_outcome(name, threads, &refit, false);
    }
}

#[test]
fn torn_write_is_quarantined_and_rejected_without_a_previous_good() {
    let _guard = fp_guard();
    assert_damaged_only_snapshot_is_rejected("torn-write", &["ckpt/torn-write", "ckpt/kill-after-save"]);
}

#[test]
fn corrupt_byte_fails_the_checksum_and_is_rejected_without_a_previous_good() {
    let _guard = fp_guard();
    assert_damaged_only_snapshot_is_rejected(
        "corrupt-byte",
        &["ckpt/corrupt-byte", "ckpt/kill-after-save"],
    );
}

/// The newest snapshot fails to *read* (I/O error, not corruption): the
/// ladder quarantines it and resumes from the previous good one.
#[test]
fn load_failure_falls_back_to_the_previous_good_snapshot() {
    let _guard = fp_guard();
    for &threads in &THREADS {
        let dir = temp_dir("load_fail", threads);
        // Uninterrupted checkpointed run: two snapshots (mid-run + terminal).
        Safe::new(config(Some(&dir), threads)).fit(&dataset(), None).unwrap();
        let files = snapshot_files(&dir);
        assert!(files.len() >= 2, "need a snapshot ladder, got {files:?}");

        failpoints::arm_once("ckpt/load-fail");
        let resumed = resume(&dir, threads);
        failpoints::disarm_all();
        assert_same_outcome("load-fail", threads, &resumed, true);
        assert_eq!(
            corrupt_files(&dir).len(),
            1,
            "the unreadable newest snapshot must be quarantined"
        );
    }
}

/// Torn-write sweep without failpoints: truncate the newest snapshot at
/// byte k for a spread of k and resume. Every prefix must fail closed
/// (quarantine, fall back to the previous good snapshot) and reproduce the
/// baseline exactly.
#[test]
fn truncation_at_any_byte_recovers_from_the_previous_good_snapshot() {
    let _guard = fp_guard();
    let dir = temp_dir("sweep", 1);
    Safe::new(config(Some(&dir), 1)).fit(&dataset(), None).unwrap();
    let files = snapshot_files(&dir);
    assert!(files.len() >= 2, "need a snapshot ladder, got {files:?}");
    let latest_path = files.last().unwrap().clone();
    let originals: Vec<(PathBuf, Vec<u8>)> = files
        .iter()
        .map(|p| (p.clone(), std::fs::read(p).unwrap()))
        .collect();
    let latest = std::fs::read(&latest_path).unwrap();

    let n = latest.len();
    for k in [0, 1, n / 4, n / 2, (3 * n) / 4, n - 1] {
        // Restore the pristine ladder, then tear the newest file at k.
        for c in corrupt_files(&dir) {
            std::fs::remove_file(c).unwrap();
        }
        for (path, bytes) in &originals {
            std::fs::write(path, bytes).unwrap();
        }
        std::fs::write(&latest_path, &latest[..k]).unwrap();

        let resumed = resume(&dir, 1);
        assert_same_outcome(&format!("truncate@{k}"), 1, &resumed, false);
        assert!(
            !corrupt_files(&dir).is_empty(),
            "truncate@{k}: the torn snapshot must be quarantined"
        );
    }
}
