//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/struct surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, `Bencher::iter`, `black_box` — with a simple
//! median-of-samples timer instead of upstream's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier (display label).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier shown as `function/param`.
    pub fn new(function: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", function.into()),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `f`, recording the median over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed samples.
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Benchmark registry entry point (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        run_one(&group_name, None, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure under an id within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, Some(&id.into().label), self.samples, f);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, Some(&id.label), self.samples, |b| f(b, input));
        self
    }

    /// Close the group (no-op; upstream flushes reports here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: Option<&str>, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    let shown = match label {
        Some(l) => format!("{group}/{l}"),
        None => group.to_string(),
    };
    match b.last {
        Some(t) => println!("bench {shown:<50} median {t:>12?} ({samples} samples)"),
        None => println!("bench {shown:<50} (no measurement)"),
    }
}

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
