//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors a
//! small property-testing runner that implements exactly the surface its
//! tests use: the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Just`/string
//! strategies, `prop::collection::vec`, `any::<T>()`, `prop_oneof!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failure reports the case
//! number and seed instead of a minimized input), no failure persistence,
//! and string-pattern strategies only understand the tiny regex subset the
//! workspace's tests actually employ (`\PC`, `[...]` classes, `*`,
//! `{m,n}`).

pub mod test_runner {
    //! Deterministic RNG, case-level error type, and run configuration.

    /// Deterministic xoshiro256++ stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeded construction; the `proptest!` macro derives the seed from
        /// the test name so every test gets an independent stream.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *w = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[lo, hi]` (inclusive); `lo <= hi` required.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + ((self.next_u64() as u128) % span) as usize
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure with a rendered message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// Construct a rejection (assume failure).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Run configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a over the test name: stable per-test seed for `TestRng`.
    pub fn seed_for_test(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The value type this strategy generates.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the candidate strategies; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len() - 1);
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128).wrapping_add(v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let v = (rng.next_u64() as u128) % span;
                    (lo as u128).wrapping_add(v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + rng.unit_f64() * (self.end as f64 - self.start as f64);
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    (lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — default strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// The default strategy for a type; created by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Default strategy for `T` (implemented for the primitives the
    /// workspace tests use).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;

        fn generate(&self, rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Bias toward edge-case payloads so codec tests see NaN, ±inf,
            // signed zero and subnormals, then fall back to raw bit soup.
            const SPECIALS: [f64; 10] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MIN,
                f64::MAX,
                f64::EPSILON,
                f64::MIN_POSITIVE,
                1.0,
            ];
            if rng.unit_f64() < 0.25 {
                SPECIALS[rng.usize_in(0, SPECIALS.len() - 1)]
            } else {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a size specification for [`vec`].
    pub trait SizeRange {
        /// Inclusive (lo, hi) bounds for the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.lo, self.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies from (a tiny subset of) regex patterns.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One parsed atom of the pattern: a char set plus a repetition range.
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parse the supported subset: literal chars, `[...]` classes with
    /// ranges, `\PC` (printable char), each optionally followed by `*` or
    /// `{m,n}`. Unsupported syntax degrades to literal characters, which is
    /// acceptable for fuzz-input generation.
    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                    i += 3;
                    printable_pool()
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ]
                    set
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 32)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}');
                    match close {
                        Some(off) => {
                            let body: String = chars[i + 1..i + off].iter().collect();
                            i += off + 1;
                            let mut parts = body.splitn(2, ',');
                            let lo = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                            let hi = parts
                                .next()
                                .and_then(|s| s.trim().parse().ok())
                                .unwrap_or(lo);
                            (lo, hi.max(lo))
                        }
                        None => (1, 1),
                    }
                }
                _ => (1, 1),
            };
            if !set.is_empty() {
                pieces.push(Piece {
                    chars: set,
                    min,
                    max,
                });
            }
        }
        pieces
    }

    /// Printable pool for `\PC`: ASCII printables plus a few multi-byte
    /// code points so UTF-8 boundaries get exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        pool.extend(['é', 'λ', '→', '𝄞', '中', '\u{00a0}']);
        pool
    }

    /// Strategy interpreting `&str` as a generation pattern.
    pub struct PatternStrategy {
        pieces: Vec<Piece>,
    }

    impl PatternStrategy {
        /// Compile a pattern.
        pub fn new(pattern: &str) -> Self {
            PatternStrategy {
                pieces: parse(pattern),
            }
        }
    }

    impl Strategy for PatternStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = rng.usize_in(piece.min, piece.max);
                for _ in 0..n {
                    out.push(piece.chars[rng.usize_in(0, piece.chars.len() - 1)]);
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            PatternStrategy::new(self).generate(rng)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Module-path alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Assert inside a proptest body; failure aborts the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(any::<bool>(), 5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of `proptest!` — one plain `#[test]` fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest '{}': too many rejected cases ({} attempts, {} passed)",
                            stringify!($name), attempts, passed
                        );
                    }
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &($strategy), &mut rng,
                                );
                            )*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match case {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (seed {:#x}): {}",
                                stringify!($name), passed, seed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in prop::collection::vec(0u8..=1, 3..=5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((3..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b <= 1));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0u64..5, 0u64..5).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(any::<bool>(), n..=n))) {
            prop_assert!((1..4).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1.0f64), (2.0f64..3.0).prop_map(|v| v)]) {
            prop_assert!(x == 1.0 || (2.0..3.0).contains(&x), "x = {x}");
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn string_patterns(s in "[a-c]{2,4}", t in "\\PC*") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = t; // arbitrary printable soup; just must not panic
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 10, "x = {x}");
            }
        }
        always_fails();
    }
}
