//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the API surface it
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle,
//! choose_multiple}`. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha12, so seeded streams differ from
//! real `rand`, but every consumer in this workspace only relies on
//! *deterministic, well-mixed* streams, never on specific values.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range, matching
    /// upstream `rand` semantics.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Rounding can land exactly on `end`; clamp back inside.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Iterator over `amount` distinct elements chosen uniformly
        /// without replacement (at most `len` of them).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector: O(len) setup,
            // exact sampling without replacement.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&f));
            let u = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&u));
            let z = rng.gen_range(5usize..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_multiple_is_without_replacement() {
        let mut rng = StdRng::seed_from_u64(4);
        let items: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = items.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 20, "duplicates drawn");
    }
}
