//! Contract tests applied uniformly to all nine classifiers: determinism,
//! probability ranges, shape checking, imbalance handling, and
//! better-than-chance learning on a shared easy task.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;
use safe_models::classifier::{evaluate_auc, ClassifierKind, ModelError};
use safe_stats::auc::auc;

fn easy_task(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    let mut noise = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x1: f64 = rng.gen_range(-1.0..1.0);
        let x2: f64 = rng.gen_range(-1.0..1.0);
        a.push(x1);
        b.push(x2);
        noise.push(rng.gen_range(-1.0..1.0));
        y.push((x1 + 0.7 * x2 + rng.gen_range(-0.15..0.15) > 0.0) as u8);
    }
    Dataset::from_columns(
        vec!["a".into(), "b".into(), "noise".into()],
        vec![a, b, noise],
        Some(y),
    )
    .unwrap()
}

#[test]
fn all_classifiers_beat_chance_on_the_easy_task() {
    let train = easy_task(600, 1);
    let test = easy_task(300, 2);
    for kind in ClassifierKind::ALL {
        let a = evaluate_auc(kind, &train, &test, 0).unwrap();
        assert!(
            a > 0.80,
            "{} should easily clear 0.80 on a linear task, got {a:.3}",
            kind.abbrev()
        );
    }
}

#[test]
fn all_probabilities_are_in_unit_interval() {
    let train = easy_task(300, 3);
    for kind in ClassifierKind::ALL {
        let model = kind.build(0).fit(&train).unwrap();
        for p in model.predict_proba(&train).unwrap() {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "{}: p = {p}",
                kind.abbrev()
            );
        }
    }
}

#[test]
fn all_classifiers_are_deterministic_under_seed() {
    let train = easy_task(250, 4);
    for kind in ClassifierKind::ALL {
        let a = kind.build(17).fit(&train).unwrap().predict_proba(&train).unwrap();
        let b = kind.build(17).fit(&train).unwrap().predict_proba(&train).unwrap();
        assert_eq!(a, b, "{} must be seed-deterministic", kind.abbrev());
    }
}

#[test]
fn all_classifiers_reject_schema_mismatch() {
    let train = easy_task(150, 5);
    let wrong = Dataset::from_columns(vec!["only".into()], vec![vec![1.0, 2.0]], None).unwrap();
    for kind in ClassifierKind::ALL {
        let model = kind.build(0).fit(&train).unwrap();
        assert!(
            matches!(
                model.predict_proba(&wrong),
                Err(ModelError::ShapeMismatch { .. })
            ),
            "{} must reject wrong feature counts",
            kind.abbrev()
        );
    }
}

#[test]
fn all_classifiers_reject_unlabeled_training_data() {
    let unlabeled =
        Dataset::from_columns(vec!["x".into()], vec![vec![1.0, 2.0, 3.0]], None).unwrap();
    for kind in ClassifierKind::ALL {
        assert!(
            kind.build(0).fit(&unlabeled).is_err(),
            "{} must require labels",
            kind.abbrev()
        );
    }
}

#[test]
fn classifiers_handle_class_imbalance() {
    // 5% positives; every model must still rank clearly above chance.
    let n = 1_000;
    let mut rng = StdRng::seed_from_u64(6);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let positive = i % 20 == 0;
        x.push(if positive {
            rng.gen_range(1.0..3.0)
        } else {
            rng.gen_range(-3.0..1.2)
        });
        y.push(positive as u8);
    }
    let ds = Dataset::from_columns(vec!["x".into()], vec![x], Some(y)).unwrap();
    for kind in ClassifierKind::ALL {
        let model = kind.build(0).fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        let a = auc(&probs, ds.labels().unwrap());
        assert!(a > 0.85, "{} on imbalanced data: auc = {a:.3}", kind.abbrev());
    }
}

#[test]
fn classifiers_tolerate_missing_cells() {
    let mut train = easy_task(300, 7);
    // Punch NaNs into column 0.
    let mut col0 = train.column(0).unwrap().to_vec();
    for i in (0..col0.len()).step_by(9) {
        col0[i] = f64::NAN;
    }
    let cols: Vec<Vec<f64>> = vec![
        col0,
        train.column(1).unwrap().to_vec(),
        train.column(2).unwrap().to_vec(),
    ];
    let labels = train.labels().unwrap().to_vec();
    train = Dataset::from_columns(
        vec!["a".into(), "b".into(), "noise".into()],
        cols,
        Some(labels),
    )
    .unwrap();
    for kind in ClassifierKind::ALL {
        let model = kind.build(0).fit(&train).unwrap();
        let probs = model.predict_proba(&train).unwrap();
        assert!(
            probs.iter().all(|p| p.is_finite()),
            "{} must stay finite under NaN cells",
            kind.abbrev()
        );
    }
}

#[test]
fn tree_ensembles_beat_single_trees_on_noise() {
    // A noisy task where variance reduction matters.
    let train = easy_task(400, 8);
    let test = easy_task(400, 9);
    let dt = evaluate_auc(ClassifierKind::Dt, &train, &test, 0).unwrap();
    let rf = evaluate_auc(ClassifierKind::Rf, &train, &test, 0).unwrap();
    let et = evaluate_auc(ClassifierKind::Et, &train, &test, 0).unwrap();
    assert!(rf > dt - 0.02, "RF {rf:.3} vs DT {dt:.3}");
    assert!(et > dt - 0.02, "ET {et:.3} vs DT {dt:.3}");
}
