//! The paper's "XGB" classifier: a thin adapter over [`safe_gbm`].

use safe_data::dataset::Dataset;
use safe_gbm::booster::{Gbm, GbmModel};
use safe_gbm::config::GbmConfig;

use crate::classifier::{Classifier, FittedClassifier, ModelError};

/// Gradient-boosted-tree classifier with XGBoost-like defaults (100 rounds,
/// depth 6, η = 0.3, λ = 1).
#[derive(Debug, Clone)]
pub struct XgbClassifier {
    config: GbmConfig,
}

impl XgbClassifier {
    /// Default classifier configuration with a seed.
    pub fn new(seed: u64) -> Self {
        XgbClassifier {
            config: GbmConfig { seed, ..GbmConfig::classifier() },
        }
    }

    /// Custom booster configuration.
    pub fn with_config(config: GbmConfig) -> Self {
        XgbClassifier { config }
    }
}

/// Fitted booster wrapper.
pub struct FittedXgb {
    model: GbmModel,
}

impl Classifier for XgbClassifier {
    fn name(&self) -> &'static str {
        "XGB"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let model = Gbm::new(self.config.clone())
            .fit(train, None)
            .map_err(|e| ModelError::BadTrainingData(e.to_string()))?;
        Ok(Box::new(FittedXgb { model }))
    }
}

impl FittedClassifier for FittedXgb {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        Ok(self.model.predict(ds))
    }
    fn n_features(&self) -> usize {
        self.model.n_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use safe_stats::auc::auc;

    fn interactions(n: usize, seed: u64) -> Dataset {
        // Label depends on the product x0·x1 — tree-friendly, linear-hostile.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            c0.push(a);
            c1.push(b);
            y.push((a * b > 0.0) as u8);
        }
        Dataset::from_columns(vec!["a".into(), "b".into()], vec![c0, c1], Some(y)).unwrap()
    }

    #[test]
    fn learns_interactions() {
        let train = interactions(800, 1);
        let test = interactions(400, 2);
        let model = XgbClassifier::new(0).fit(&train).unwrap();
        let a = auc(&model.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(a > 0.95, "auc = {a}");
    }

    #[test]
    fn shape_check() {
        let train = interactions(100, 3);
        let model = XgbClassifier::new(0).fit(&train).unwrap();
        let narrow =
            Dataset::from_columns(vec!["a".into()], vec![vec![0.1, 0.2]], None).unwrap();
        assert!(model.predict_proba(&narrow).is_err());
    }
}
