//! # safe-models — the nine downstream classifiers of the paper's evaluation
//!
//! Tables III and VIII evaluate engineered feature sets under nine
//! scikit-learn classifiers; this crate rebuilds each of them from scratch
//! behind one [`Classifier`] / [`FittedClassifier`] pair:
//!
//! | paper abbrev. | implementation |
//! |---|---|
//! | AB  | [`adaboost::AdaBoost`] — SAMME on decision stumps |
//! | DT  | [`tree::DecisionTree`] — CART with gini impurity |
//! | ET  | [`forest::ExtraTrees`] — randomized-threshold ensemble |
//! | kNN | [`knn::KNearestNeighbors`] — brute-force, standardized L2 |
//! | LR  | [`linear::LogisticRegression`] — mini-batch SGD + L2 |
//! | MLP | [`mlp::MlpClassifier`] — 1 hidden ReLU layer, SGD momentum |
//! | RF  | [`forest::RandomForest`] — bootstrap + √M feature bagging |
//! | SVM | [`linear::LinearSvm`] — Pegasos hinge-loss SGD |
//! | XGB | [`xgb::XgbClassifier`] — wrapper over [`safe_gbm`] |
//!
//! All models consume the columnar [`safe_data::Dataset`], emit calibration-
//! agnostic scores in `[0, 1]` via `predict_proba` (AUC, the paper's metric,
//! only needs ranking), and are deterministic under a fixed seed.

#![warn(missing_docs)]

pub mod adaboost;
pub mod classifier;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod mlp;
pub mod scaler;
pub mod tree;
pub mod xgb;

pub use classifier::{Classifier, ClassifierKind, FittedClassifier, ModelError};
