//! Tree ensembles: Random Forest (bootstrap + best splits on √M features)
//! and Extremely randomized Trees (full sample + one random split per
//! feature). Members are trained in parallel and probabilities averaged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;
use safe_gbm::binner::BinnedDataset;
use safe_gbm::tree::Tree;
use safe_stats::par::{par_map, Parallelism};

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};
use crate::tree::{grow_classification_tree, MaxFeatures, Splitter, TreeConfig};

/// Shared ensemble settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Ensemble size (scikit-learn default: 100).
    pub n_trees: usize,
    /// Per-tree depth cap.
    pub max_depth: usize,
    /// Whether members see a bootstrap resample (RF) or the full data (ET).
    pub bootstrap: bool,
    /// Split policy of the members.
    pub splitter: Splitter,
    /// Features per node.
    pub max_features: MaxFeatures,
    /// Quantization budget.
    pub max_bins: usize,
    /// Seed; member `i` derives seed `seed + i`.
    pub seed: u64,
    /// Worker budget for member training (0 = one worker per core).
    pub parallelism: Parallelism,
}

impl ForestConfig {
    fn random_forest(seed: u64) -> Self {
        ForestConfig {
            n_trees: 100,
            max_depth: 25,
            bootstrap: true,
            splitter: Splitter::Best,
            max_features: MaxFeatures::Sqrt,
            max_bins: 256,
            seed,
            parallelism: Parallelism::auto(),
        }
    }

    fn extra_trees(seed: u64) -> Self {
        ForestConfig {
            bootstrap: false,
            splitter: Splitter::Random,
            ..ForestConfig::random_forest(seed)
        }
    }
}

/// Train all members on one binned matrix (parallel across trees).
fn fit_members(
    train: &Dataset,
    config: &ForestConfig,
) -> Result<Vec<Tree>, ModelError> {
    let labels = training_labels(train)?.to_vec();
    let binned = BinnedDataset::fit(train, config.max_bins, config.parallelism);
    let n = train.n_rows();
    let tree_config = TreeConfig {
        max_depth: config.max_depth,
        max_features: config.max_features,
        splitter: config.splitter,
        max_bins: config.max_bins,
        parallelism: config.parallelism,
        ..TreeConfig::default()
    };
    let weights = vec![1.0; n];
    let trees = par_map(config.parallelism, config.n_trees, |i| {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        let rows: Vec<u32> = if config.bootstrap {
            (0..n).map(|_| rng.gen_range(0..n as u32)).collect()
        } else {
            (0..n as u32).collect()
        };
        grow_classification_tree(&binned, &labels, &weights, rows, &tree_config, &mut rng)
    });
    Ok(trees)
}

/// A fitted ensemble averaging member leaf probabilities.
pub struct FittedForest {
    trees: Vec<Tree>,
    n_features: usize,
}

impl FittedClassifier for FittedForest {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let cols: Vec<&[f64]> = ds.columns().collect();
        let mut out = vec![0.0f64; ds.n_rows()];
        for t in &self.trees {
            t.predict_into(&cols, &mut out);
        }
        let k = self.trees.len().max(1) as f64;
        for v in &mut out {
            *v /= k;
        }
        Ok(out)
    }
    fn n_features(&self) -> usize {
        self.n_features
    }
}

/// The paper's "RF" classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
}

impl RandomForest {
    /// scikit-learn-like defaults (100 trees, bootstrap, √M features).
    pub fn new(seed: u64) -> Self {
        RandomForest {
            config: ForestConfig::random_forest(seed),
        }
    }

    /// Custom ensemble settings.
    pub fn with_config(config: ForestConfig) -> Self {
        RandomForest { config }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        Ok(Box::new(FittedForest {
            trees: fit_members(train, &self.config)?,
            n_features: train.n_cols(),
        }))
    }
}

/// The paper's "ET" classifier.
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    config: ForestConfig,
}

impl ExtraTrees {
    /// scikit-learn-like defaults (100 trees, no bootstrap, random splits).
    pub fn new(seed: u64) -> Self {
        ExtraTrees {
            config: ForestConfig::extra_trees(seed),
        }
    }

    /// Custom ensemble settings.
    pub fn with_config(config: ForestConfig) -> Self {
        ExtraTrees { config }
    }
}

impl Classifier for ExtraTrees {
    fn name(&self) -> &'static str {
        "ET"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        Ok(Box::new(FittedForest {
            trees: fit_members(train, &self.config)?,
            n_features: train.n_cols(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use safe_stats::auc::auc;

    /// Noisy two-feature data where the signal is x0 + x1 > 0.
    fn noisy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c0 = Vec::with_capacity(n);
        let mut c1 = Vec::with_capacity(n);
        let mut c2 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            c0.push(a);
            c1.push(b);
            c2.push(rng.gen_range(-1.0..1.0));
            let noise: f64 = rng.gen_range(-0.3..0.3);
            y.push((a + b + noise > 0.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "noise".into()],
            vec![c0, c1, c2],
            Some(y),
        )
        .unwrap()
    }

    #[test]
    fn random_forest_beats_chance_clearly() {
        let train = noisy(500, 1);
        let test = noisy(300, 2);
        let model = RandomForest::with_config(ForestConfig {
            n_trees: 30,
            ..ForestConfig::random_forest(0)
        })
        .fit(&train)
        .unwrap();
        let probs = model.predict_proba(&test).unwrap();
        let a = auc(&probs, test.labels().unwrap());
        assert!(a > 0.9, "auc = {a}");
    }

    #[test]
    fn extra_trees_beats_chance_clearly() {
        let train = noisy(500, 3);
        let test = noisy(300, 4);
        let model = ExtraTrees::with_config(ForestConfig {
            n_trees: 30,
            ..ForestConfig::extra_trees(0)
        })
        .fit(&train)
        .unwrap();
        let probs = model.predict_proba(&test).unwrap();
        let a = auc(&probs, test.labels().unwrap());
        assert!(a > 0.88, "auc = {a}");
    }

    #[test]
    fn probabilities_averaged_into_unit_interval() {
        let train = noisy(200, 5);
        let model = RandomForest::with_config(ForestConfig {
            n_trees: 7,
            ..ForestConfig::random_forest(0)
        })
        .fit(&train)
        .unwrap();
        for p in model.predict_proba(&train).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn forest_smooths_single_tree() {
        // On noisy data the forest's test AUC should be at least the single
        // tree's (variance reduction), with margin allowed for luck.
        let train = noisy(400, 6);
        let test = noisy(400, 7);
        let tree = crate::tree::DecisionTree::new(0).fit(&train).unwrap();
        let forest = RandomForest::with_config(ForestConfig {
            n_trees: 50,
            ..ForestConfig::random_forest(0)
        })
        .fit(&train)
        .unwrap();
        let auc_tree = auc(&tree.predict_proba(&test).unwrap(), test.labels().unwrap());
        let auc_forest = auc(&forest.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(
            auc_forest > auc_tree - 0.02,
            "forest {auc_forest} vs tree {auc_tree}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let train = noisy(200, 8);
        let cfg = ForestConfig {
            n_trees: 10,
            ..ForestConfig::random_forest(99)
        };
        let a = RandomForest::with_config(cfg.clone()).fit(&train).unwrap();
        let b = RandomForest::with_config(cfg).fit(&train).unwrap();
        assert_eq!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let train = noisy(200, 9);
        let a = RandomForest::with_config(ForestConfig {
            n_trees: 5,
            ..ForestConfig::random_forest(1)
        })
        .fit(&train)
        .unwrap();
        let b = RandomForest::with_config(ForestConfig {
            n_trees: 5,
            ..ForestConfig::random_forest(2)
        })
        .fit(&train)
        .unwrap();
        assert_ne!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
    }
}
