//! AdaBoost (SAMME) on shallow CART trees — the paper's "AB" classifier.
//!
//! Discrete SAMME for two classes: each round fits a depth-1 stump on the
//! current sample weights, computes the weighted error ε, the stage weight
//! `α = ln((1−ε)/ε)`, and multiplies misclassified sample weights by `e^α`.
//! The final score `F(x) = Σ α_m (2 h_m(x) − 1)` is squashed through a
//! sigmoid to yield a ranking-compatible probability.

use rand::rngs::StdRng;
use rand::SeedableRng;

use safe_data::dataset::Dataset;
use safe_gbm::binner::BinnedDataset;
use safe_gbm::tree::Tree;
use safe_stats::par::Parallelism;

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};
use crate::tree::{grow_classification_tree, TreeConfig};

/// AdaBoost hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostConfig {
    /// Boosting rounds (scikit-learn default: 50).
    pub n_estimators: usize,
    /// Depth of the base trees (1 = decision stumps, the sklearn default).
    pub base_depth: usize,
    /// RNG seed (tie-breaking inside base trees).
    pub seed: u64,
    /// Worker budget for feature quantization (0 = one worker per core).
    pub parallelism: Parallelism,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            n_estimators: 50,
            base_depth: 1,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

/// The paper's "AB" classifier.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    config: AdaBoostConfig,
}

impl AdaBoost {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        AdaBoost {
            config: AdaBoostConfig { seed, ..AdaBoostConfig::default() },
        }
    }

    /// Custom configuration.
    pub fn with_config(config: AdaBoostConfig) -> Self {
        AdaBoost { config }
    }
}

/// Fitted boosted ensemble: stumps plus their stage weights.
pub struct FittedAdaBoost {
    stages: Vec<(Tree, f64)>,
    n_features: usize,
}

impl Classifier for AdaBoost {
    fn name(&self) -> &'static str {
        "AB"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?.to_vec();
        let n = train.n_rows();
        let binned = BinnedDataset::fit(train, 256, self.config.parallelism);
        let tree_config = TreeConfig {
            max_depth: self.config.base_depth,
            ..TreeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut weights = vec![1.0 / n as f64; n];
        let mut stages: Vec<(Tree, f64)> = Vec::new();
        let all_rows: Vec<u32> = (0..n as u32).collect();
        let train_rows = train.to_rows();

        for _ in 0..self.config.n_estimators {
            let stump = grow_classification_tree(
                &binned,
                &labels,
                &weights,
                all_rows.clone(),
                &tree_config,
                &mut rng,
            );
            // Hard predictions at the 0.5 leaf-probability threshold.
            let hard: Vec<u8> = train_rows
                .iter()
                .map(|row| (stump.predict_row(row) >= 0.5) as u8)
                .collect();
            let eps: f64 = hard
                .iter()
                .zip(&labels)
                .zip(&weights)
                .filter(|((h, y), _)| h != y)
                .map(|(_, &w)| w)
                .sum();
            if eps <= 1e-12 {
                // Perfect stump: dominate the vote and stop.
                stages.push((stump, 10.0));
                break;
            }
            if eps >= 0.5 {
                // No better than chance: boosting has converged/stalled.
                break;
            }
            let alpha = ((1.0 - eps) / eps).ln();
            for ((h, y), w) in hard.iter().zip(&labels).zip(weights.iter_mut()) {
                if h != y {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            stages.push((stump, alpha));
        }
        if stages.is_empty() {
            return Err(ModelError::BadTrainingData(
                "AdaBoost found no stump better than chance".into(),
            ));
        }
        Ok(Box::new(FittedAdaBoost {
            stages,
            n_features: train.n_cols(),
        }))
    }
}

impl FittedClassifier for FittedAdaBoost {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let rows = ds.to_rows();
        let alpha_total: f64 = self.stages.iter().map(|(_, a)| a).sum();
        Ok(rows
            .iter()
            .map(|row| {
                let score: f64 = self
                    .stages
                    .iter()
                    .map(|(t, a)| {
                        let vote = if t.predict_row(row) >= 0.5 { 1.0 } else { -1.0 };
                        a * vote
                    })
                    .sum();
                // Normalized margin in [-1, 1] → sigmoid for a smooth score.
                let m = if alpha_total > 0.0 { score / alpha_total } else { 0.0 };
                1.0 / (1.0 + (-3.0 * m).exp())
            })
            .collect())
    }
    fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use safe_stats::auc::auc;

    fn bands(n: usize, seed: u64) -> Dataset {
        // Label = 1 in two disjoint x-bands: a single stump cannot solve it,
        // boosting stumps can.
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
        let y: Vec<u8> = x
            .iter()
            .map(|&v| ((0.0..1.0).contains(&v) || (2.0..3.0).contains(&v)) as u8)
            .collect();
        Dataset::from_columns(vec!["x".into()], vec![x], Some(y)).unwrap()
    }

    #[test]
    fn boosting_solves_what_a_stump_cannot() {
        let train = bands(600, 1);
        let test = bands(300, 2);
        let stump = AdaBoost::with_config(AdaBoostConfig {
            n_estimators: 1,
            ..AdaBoostConfig::default()
        })
        .fit(&train)
        .unwrap();
        let full = AdaBoost::new(0).fit(&train).unwrap();
        let auc_stump = auc(&stump.predict_proba(&test).unwrap(), test.labels().unwrap());
        let auc_full = auc(&full.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(auc_full > auc_stump + 0.05, "stump {auc_stump} vs boosted {auc_full}");
        assert!(auc_full > 0.9, "boosted auc {auc_full}");
    }

    #[test]
    fn perfect_stump_short_circuits() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let ds = Dataset::from_columns(vec!["x".into()], vec![x], Some(y)).unwrap();
        let model = AdaBoost::new(0).fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        assert_eq!(auc(&probs, ds.labels().unwrap()), 1.0);
    }

    #[test]
    fn scores_are_probabilities() {
        let train = bands(200, 3);
        let model = AdaBoost::new(0).fit(&train).unwrap();
        for p in model.predict_proba(&train).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic() {
        let train = bands(200, 4);
        let a = AdaBoost::new(5).fit(&train).unwrap();
        let b = AdaBoost::new(5).fit(&train).unwrap();
        assert_eq!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
    }
}
