//! The `Classifier` / `FittedClassifier` traits and the paper's roster.

use safe_data::dataset::Dataset;
use std::fmt;

/// Errors from model training/prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Training data unusable (no labels, no rows, single class...).
    BadTrainingData(String),
    /// Prediction input incompatible with the fitted model.
    ShapeMismatch {
        /// Features the model was trained on.
        expected: usize,
        /// Features supplied.
        actual: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadTrainingData(msg) => write!(f, "bad training data: {msg}"),
            ModelError::ShapeMismatch { expected, actual } => {
                write!(f, "model expects {expected} features, got {actual}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A trainable binary classifier.
pub trait Classifier: Send + Sync {
    /// Paper abbreviation, e.g. `"RF"`.
    fn name(&self) -> &'static str;

    /// Train on a labeled dataset.
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError>;
}

/// A trained binary classifier.
pub trait FittedClassifier: Send + Sync {
    /// Positive-class scores in `[0, 1]`, one per row.
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError>;

    /// Number of features the model expects.
    fn n_features(&self) -> usize;

    /// Shared input check.
    fn check_shape(&self, ds: &Dataset) -> Result<(), ModelError> {
        if ds.n_cols() != self.n_features() {
            return Err(ModelError::ShapeMismatch {
                expected: self.n_features(),
                actual: ds.n_cols(),
            });
        }
        Ok(())
    }
}

/// Validate a training set and return its labels.
pub(crate) fn training_labels(ds: &Dataset) -> Result<&[u8], ModelError> {
    let labels = ds
        .labels()
        .ok_or_else(|| ModelError::BadTrainingData("no labels attached".into()))?;
    if ds.n_rows() == 0 || ds.n_cols() == 0 {
        return Err(ModelError::BadTrainingData("empty dataset".into()));
    }
    Ok(labels)
}

/// The nine classifiers of Tables III/VIII, by paper abbreviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// AdaBoost.
    Ab,
    /// Decision tree.
    Dt,
    /// Extremely randomized trees.
    Et,
    /// k nearest neighbors.
    Knn,
    /// Logistic regression.
    Lr,
    /// Multi-layer perceptron.
    Mlp,
    /// Random forest.
    Rf,
    /// Linear-kernel SVM.
    Svm,
    /// Gradient-boosted trees.
    Xgb,
}

impl ClassifierKind {
    /// Every classifier, in the row order of Table III.
    pub const ALL: [ClassifierKind; 9] = [
        ClassifierKind::Ab,
        ClassifierKind::Dt,
        ClassifierKind::Et,
        ClassifierKind::Knn,
        ClassifierKind::Lr,
        ClassifierKind::Mlp,
        ClassifierKind::Rf,
        ClassifierKind::Svm,
        ClassifierKind::Xgb,
    ];

    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            ClassifierKind::Ab => "AB",
            ClassifierKind::Dt => "DT",
            ClassifierKind::Et => "ET",
            ClassifierKind::Knn => "kNN",
            ClassifierKind::Lr => "LR",
            ClassifierKind::Mlp => "MLP",
            ClassifierKind::Rf => "RF",
            ClassifierKind::Svm => "SVM",
            ClassifierKind::Xgb => "XGB",
        }
    }

    /// Build the classifier with default (scikit-learn-like) settings.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Ab => Box::new(crate::adaboost::AdaBoost::new(seed)),
            ClassifierKind::Dt => Box::new(crate::tree::DecisionTree::new(seed)),
            ClassifierKind::Et => Box::new(crate::forest::ExtraTrees::new(seed)),
            ClassifierKind::Knn => Box::new(crate::knn::KNearestNeighbors::default_k()),
            ClassifierKind::Lr => Box::new(crate::linear::LogisticRegression::new(seed)),
            ClassifierKind::Mlp => Box::new(crate::mlp::MlpClassifier::new(seed)),
            ClassifierKind::Rf => Box::new(crate::forest::RandomForest::new(seed)),
            ClassifierKind::Svm => Box::new(crate::linear::LinearSvm::new(seed)),
            ClassifierKind::Xgb => Box::new(crate::xgb::XgbClassifier::new(seed)),
        }
    }
}

/// Train on `train`, score `test`, return AUC — the evaluation step used by
/// every experiment harness.
pub fn evaluate_auc(
    kind: ClassifierKind,
    train: &Dataset,
    test: &Dataset,
    seed: u64,
) -> Result<f64, ModelError> {
    let model = kind.build(seed).fit(train)?;
    let probs = model.predict_proba(test)?;
    let labels = test
        .labels()
        .ok_or_else(|| ModelError::BadTrainingData("test set has no labels".into()))?;
    Ok(safe_stats::auc::auc(&probs, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_roster_matches_paper() {
        let abbrevs: Vec<&str> = ClassifierKind::ALL.iter().map(|k| k.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec!["AB", "DT", "ET", "kNN", "LR", "MLP", "RF", "SVM", "XGB"]
        );
    }

    #[test]
    fn build_produces_named_models() {
        for kind in ClassifierKind::ALL {
            let model = kind.build(0);
            assert_eq!(model.name(), kind.abbrev());
        }
    }

    #[test]
    fn error_display() {
        let e = ModelError::ShapeMismatch {
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }
}
