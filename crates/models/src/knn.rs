//! Brute-force k-nearest-neighbors — the paper's "kNN" classifier.
//!
//! Features are standardized with training statistics (unscaled industrial
//! columns make Euclidean distance meaningless), distances are exact L2, and
//! the score is the positive fraction among the k nearest training rows
//! (scikit-learn's `predict_proba` with uniform weights, k = 5).

use safe_data::dataset::Dataset;
use safe_stats::par::{par_map, Parallelism};

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};
use crate::scaler::StandardScaler;

/// kNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnConfig {
    /// Neighborhood size (scikit-learn default: 5).
    pub k: usize,
    /// Worker budget for query scoring (0 = one worker per core).
    pub parallelism: Parallelism,
}

/// The paper's "kNN" classifier.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    config: KnnConfig,
}

impl KNearestNeighbors {
    /// k = 5, the scikit-learn default.
    pub fn default_k() -> Self {
        KNearestNeighbors {
            config: KnnConfig { k: 5, parallelism: Parallelism::auto() },
        }
    }

    /// Custom k.
    pub fn with_k(k: usize) -> Self {
        KNearestNeighbors {
            config: KnnConfig { k: k.max(1), parallelism: Parallelism::auto() },
        }
    }

    /// Explicit worker budget for query scoring.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }
}

/// Fitted kNN: the standardized training matrix plus labels.
pub struct FittedKnn {
    scaler: StandardScaler,
    train_rows: Vec<Vec<f64>>,
    labels: Vec<u8>,
    k: usize,
    parallelism: Parallelism,
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &'static str {
        "kNN"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?.to_vec();
        let scaler = StandardScaler::fit(train);
        let train_rows = scaler.transform_rows(train);
        Ok(Box::new(FittedKnn {
            scaler,
            train_rows,
            labels,
            k: self.config.k,
            parallelism: self.config.parallelism,
        }))
    }
}

impl FittedClassifier for FittedKnn {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let queries = self.scaler.transform_rows(ds);
        let k = self.k.min(self.train_rows.len());
        // One query per parallel task; each scans the training matrix.
        let out = par_map(self.parallelism, queries.len(), |qi| {
            let q = &queries[qi];
            // Max-heap of (dist, label) capped at k via simple insertion —
            // k is tiny (5), so linear maintenance beats a real heap.
            let mut nearest: Vec<(f64, u8)> = Vec::with_capacity(k + 1);
            for (row, &label) in self.train_rows.iter().zip(&self.labels) {
                let mut d = 0.0;
                for (a, b) in q.iter().zip(row) {
                    let diff = a - b;
                    d += diff * diff;
                }
                if nearest.len() < k {
                    nearest.push((d, label));
                    nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                } else if d < nearest[k - 1].0 {
                    nearest[k - 1] = (d, label);
                    nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                }
            }
            let pos = nearest.iter().filter(|(_, l)| *l == 1).count();
            pos as f64 / nearest.len().max(1) as f64
        });
        Ok(out)
    }
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use safe_stats::auc::auc;

    fn blobs(n: usize, seed: u64) -> Dataset {
        // Two Gaussian-ish blobs at (±1, ±1).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = (i % 2) as u8;
            let center = if label == 1 { 1.0 } else { -1.0 };
            c0.push(center + rng.gen_range(-0.8..0.8));
            c1.push(center + rng.gen_range(-0.8..0.8));
            y.push(label);
        }
        Dataset::from_columns(vec!["a".into(), "b".into()], vec![c0, c1], Some(y)).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let train = blobs(400, 1);
        let test = blobs(200, 2);
        let model = KNearestNeighbors::default_k().fit(&train).unwrap();
        let probs = model.predict_proba(&test).unwrap();
        let a = auc(&probs, test.labels().unwrap());
        assert!(a > 0.95, "auc = {a}");
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let train = blobs(100, 3);
        let model = KNearestNeighbors::with_k(1).fit(&train).unwrap();
        let probs = model.predict_proba(&train).unwrap();
        let labels = train.labels().unwrap();
        for (p, &y) in probs.iter().zip(labels) {
            assert_eq!(*p, y as f64, "1-NN on its own training point");
        }
    }

    #[test]
    fn probs_are_neighbor_fractions() {
        let train = blobs(50, 4);
        let model = KNearestNeighbors::with_k(5).fit(&train).unwrap();
        for p in model.predict_proba(&train).unwrap() {
            let scaled = p * 5.0;
            assert!((scaled - scaled.round()).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn scaling_makes_wide_features_harmless() {
        // Second feature is pure noise at 1000× the scale; standardization
        // keeps the signal feature relevant.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300;
        let sig: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 }).collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let y: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let ds = Dataset::from_columns(
            vec!["sig".into(), "noise".into()],
            vec![sig, noise],
            Some(y),
        )
        .unwrap();
        let model = KNearestNeighbors::default_k().fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        let a = auc(&probs, ds.labels().unwrap());
        assert!(a > 0.9, "auc = {a}");
    }

    #[test]
    fn k_larger_than_train_is_capped() {
        let train = blobs(4, 6);
        let model = KNearestNeighbors::with_k(50).fit(&train).unwrap();
        let probs = model.predict_proba(&train).unwrap();
        assert_eq!(probs.len(), 4);
        for p in probs {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
