//! Multi-layer perceptron — the paper's "MLP" classifier.
//!
//! One hidden ReLU layer, sigmoid output, log-loss, mini-batch SGD with
//! momentum, He initialization. The scikit-learn default is a (100,) hidden
//! layer; that width is kept but epochs are modest since the benchmark
//! harness trains this model hundreds of times.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};
use crate::scaler::StandardScaler;

/// MLP hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 100,
            epochs: 30,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 64,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// The paper's "MLP" classifier.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    config: MlpConfig,
}

impl MlpClassifier {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        MlpClassifier {
            config: MlpConfig { seed, ..MlpConfig::default() },
        }
    }

    /// Custom configuration.
    pub fn with_config(config: MlpConfig) -> Self {
        MlpClassifier { config }
    }
}

/// Fitted network weights.
pub struct FittedMlp {
    scaler: StandardScaler,
    /// `w1[h * d + j]`: input j → hidden h.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// hidden h → output.
    w2: Vec<f64>,
    b2: f64,
    hidden: usize,
}

impl FittedMlp {
    fn forward(&self, x: &[f64], hidden_buf: &mut [f64]) -> f64 {
        let d = x.len();
        for h in 0..self.hidden {
            let mut a = self.b1[h];
            let row = &self.w1[h * d..(h + 1) * d];
            for (w, xi) in row.iter().zip(x) {
                a += w * xi;
            }
            hidden_buf[h] = a.max(0.0);
        }
        let mut z = self.b2;
        for (w, a) in self.w2.iter().zip(hidden_buf.iter()) {
            z += w * a;
        }
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

impl Classifier for MlpClassifier {
    fn name(&self) -> &'static str {
        "MLP"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?.to_vec();
        let scaler = StandardScaler::fit(train);
        let rows = scaler.transform_rows(train);
        let n = rows.len();
        let d = train.n_cols();
        let hdim = self.config.hidden;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // He init for the ReLU layer, small uniform for the head.
        let scale1 = (2.0 / d as f64).sqrt();
        let mut w1: Vec<f64> = (0..hdim * d).map(|_| rng.gen_range(-scale1..scale1)).collect();
        let mut b1 = vec![0.0f64; hdim];
        let scale2 = (1.0 / hdim as f64).sqrt();
        let mut w2: Vec<f64> = (0..hdim).map(|_| rng.gen_range(-scale2..scale2)).collect();
        let mut b2 = 0.0f64;

        // Momentum buffers.
        let mut vw1 = vec![0.0f64; hdim * d];
        let mut vb1 = vec![0.0f64; hdim];
        let mut vw2 = vec![0.0f64; hdim];
        let mut vb2 = 0.0f64;

        let cfg = &self.config;
        let mut order: Vec<usize> = (0..n).collect();
        let mut hidden = vec![0.0f64; hdim];
        let mut gw1 = vec![0.0f64; hdim * d];
        let mut gb1 = vec![0.0f64; hdim];
        let mut gw2 = vec![0.0f64; hdim];

        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.learning_rate / (1.0 + 0.05 * epoch as f64);
            for batch in order.chunks(cfg.batch_size) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                let mut gb2 = 0.0f64;

                for &i in batch {
                    let x = &rows[i];
                    // Forward.
                    for h in 0..hdim {
                        let mut a = b1[h];
                        let wrow = &w1[h * d..(h + 1) * d];
                        for (w, xi) in wrow.iter().zip(x) {
                            a += w * xi;
                        }
                        hidden[h] = a.max(0.0);
                    }
                    let mut z = b2;
                    for (w, a) in w2.iter().zip(&hidden) {
                        z += w * a;
                    }
                    let p = if z >= 0.0 {
                        1.0 / (1.0 + (-z).exp())
                    } else {
                        let e = z.exp();
                        e / (1.0 + e)
                    };
                    // Backward.
                    let dz = p - labels[i] as f64;
                    gb2 += dz;
                    for h in 0..hdim {
                        gw2[h] += dz * hidden[h];
                        if hidden[h] > 0.0 {
                            let dh = dz * w2[h];
                            gb1[h] += dh;
                            let grow = &mut gw1[h * d..(h + 1) * d];
                            for (g, xi) in grow.iter_mut().zip(x) {
                                *g += dh * xi;
                            }
                        }
                    }
                }

                let k = batch.len() as f64;
                for (idx, w) in w1.iter_mut().enumerate() {
                    vw1[idx] = cfg.momentum * vw1[idx] - lr * (gw1[idx] / k + cfg.l2 * *w);
                    *w += vw1[idx];
                }
                for h in 0..hdim {
                    vb1[h] = cfg.momentum * vb1[h] - lr * gb1[h] / k;
                    b1[h] += vb1[h];
                    vw2[h] = cfg.momentum * vw2[h] - lr * (gw2[h] / k + cfg.l2 * w2[h]);
                    w2[h] += vw2[h];
                }
                vb2 = cfg.momentum * vb2 - lr * gb2 / k;
                b2 += vb2;
            }
        }

        Ok(Box::new(FittedMlp {
            scaler,
            w1,
            b1,
            w2,
            b2,
            hidden: hdim,
        }))
    }
}

impl FittedClassifier for FittedMlp {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let rows = self.scaler.transform_rows(ds);
        let mut buf = vec![0.0f64; self.hidden];
        Ok(rows.iter().map(|r| self.forward(r, &mut buf)).collect())
    }
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use safe_stats::auc::auc;

    fn rings(n: usize, seed: u64) -> Dataset {
        // Nonlinear target: inside-vs-outside a circle, which a linear model
        // cannot express but one hidden layer can.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.5..1.5);
            let b: f64 = rng.gen_range(-1.5..1.5);
            c0.push(a);
            c1.push(b);
            y.push(((a * a + b * b) < 1.0) as u8);
        }
        Dataset::from_columns(vec!["a".into(), "b".into()], vec![c0, c1], Some(y)).unwrap()
    }

    #[test]
    fn learns_a_nonlinear_boundary() {
        let train = rings(800, 1);
        let test = rings(400, 2);
        let model = MlpClassifier::with_config(MlpConfig {
            hidden: 32,
            epochs: 60,
            ..MlpConfig::default()
        })
        .fit(&train)
        .unwrap();
        let a = auc(&model.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(a > 0.9, "auc = {a}");

        // A linear model cannot do this.
        let lin = crate::linear::LogisticRegression::new(0).fit(&train).unwrap();
        let a_lin = auc(&lin.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(a > a_lin + 0.2, "mlp {a} vs linear {a_lin}");
    }

    #[test]
    fn outputs_are_probabilities() {
        let train = rings(200, 3);
        let model = MlpClassifier::new(0).fit(&train).unwrap();
        for p in model.predict_proba(&train).unwrap() {
            assert!((0.0..=1.0).contains(&p), "p = {p}");
            assert!(p.is_finite());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let train = rings(150, 4);
        let a = MlpClassifier::new(9).fit(&train).unwrap();
        let b = MlpClassifier::new(9).fit(&train).unwrap();
        assert_eq!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let train = rings(150, 5);
        let a = MlpClassifier::new(1).fit(&train).unwrap();
        let b = MlpClassifier::new(2).fit(&train).unwrap();
        assert_ne!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
    }
}
