//! Internal feature standardization shared by the distance/gradient models
//! (kNN, LR, SVM, MLP). Tree models are scale-invariant and skip it.

use safe_data::dataset::Dataset;
use safe_stats::describe::describe;

/// Frozen per-feature z-score parameters; NaN inputs become 0 after scaling
/// (mean imputation), which keeps the linear models total on dirty data.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit means/stds per column of the training set.
    pub fn fit(ds: &Dataset) -> StandardScaler {
        let mut means = Vec::with_capacity(ds.n_cols());
        let mut stds = Vec::with_capacity(ds.n_cols());
        for col in ds.columns() {
            let s = describe(col);
            means.push(s.mean);
            stds.push(if s.std > 0.0 { s.std } else { 1.0 });
        }
        StandardScaler { means, stds }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Scale a dataset to row-major form (the layout the iterative models
    /// consume), imputing missing cells to the (scaled) mean, i.e. zero.
    pub fn transform_rows(&self, ds: &Dataset) -> Vec<Vec<f64>> {
        let cols: Vec<&[f64]> = ds.columns().collect();
        (0..ds.n_rows())
            .map(|i| {
                cols.iter()
                    .enumerate()
                    .map(|(f, c)| self.scale_cell(f, c[i]))
                    .collect()
            })
            .collect()
    }

    /// Scale one raw cell.
    #[inline]
    pub fn scale_cell(&self, feature: usize, v: f64) -> f64 {
        if v.is_finite() {
            (v - self.means[feature]) / self.stds[feature]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![10.0, 10.0, 10.0]],
            None,
        )
        .unwrap()
    }

    #[test]
    fn standardizes_columns() {
        let s = StandardScaler::fit(&ds());
        let rows = s.transform_rows(&ds());
        // Column a: mean 2, std sqrt(2/3).
        let std = (2.0f64 / 3.0).sqrt();
        assert!((rows[0][0] - (1.0 - 2.0) / std).abs() < 1e-12);
        assert!((rows[2][0] - (3.0 - 2.0) / std).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let s = StandardScaler::fit(&ds());
        let rows = s.transform_rows(&ds());
        assert!(rows.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn missing_becomes_zero() {
        let d = Dataset::from_columns(vec!["a".into()], vec![vec![1.0, f64::NAN, 3.0]], None)
            .unwrap();
        let s = StandardScaler::fit(&d);
        let rows = s.transform_rows(&d);
        assert_eq!(rows[1][0], 0.0);
    }
}
