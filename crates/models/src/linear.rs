//! Linear models: logistic regression (mini-batch SGD, L2) and linear SVM
//! (Pegasos hinge-loss SGD) — the paper's "LR" and "SVM" classifiers.
//!
//! Both standardize features internally and emit sigmoid-squashed decision
//! values, which is all AUC needs (SVM scores are uncalibrated but correctly
//! ordered).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use safe_data::dataset::Dataset;

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};
use crate::scaler::StandardScaler;

/// Shared SGD settings.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConfig {
    /// Full passes over the data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Mini-batch size (logistic regression only; Pegasos is per-sample).
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            epochs: 40,
            learning_rate: 0.1,
            l2: 1e-4,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// Fitted linear scorer `σ(w·x + b)` on standardized inputs.
pub struct FittedLinear {
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
}

impl FittedLinear {
    fn margin(&self, row: &[f64]) -> f64 {
        let mut m = self.bias;
        for (w, x) in self.weights.iter().zip(row) {
            m += w * x;
        }
        m
    }
}

impl FittedClassifier for FittedLinear {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let rows = self.scaler.transform_rows(ds);
        Ok(rows
            .iter()
            .map(|r| {
                let m = self.margin(r);
                if m >= 0.0 {
                    1.0 / (1.0 + (-m).exp())
                } else {
                    let e = m.exp();
                    e / (1.0 + e)
                }
            })
            .collect())
    }
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }
}

/// The paper's "LR" classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LinearConfig,
}

impl LogisticRegression {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        LogisticRegression {
            config: LinearConfig { seed, ..LinearConfig::default() },
        }
    }

    /// Custom configuration.
    pub fn with_config(config: LinearConfig) -> Self {
        LogisticRegression { config }
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LR"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?.to_vec();
        let scaler = StandardScaler::fit(train);
        let rows = scaler.transform_rows(train);
        let n = rows.len();
        let d = train.n_cols();
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let cfg = &self.config;

        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.learning_rate / (1.0 + 0.1 * epoch as f64);
            for batch in order.chunks(cfg.batch_size) {
                let mut gw = vec![0.0f64; d];
                let mut gb = 0.0f64;
                for &i in batch {
                    let mut m = b;
                    for (wj, xj) in w.iter().zip(&rows[i]) {
                        m += wj * xj;
                    }
                    let p = if m >= 0.0 {
                        1.0 / (1.0 + (-m).exp())
                    } else {
                        let e = m.exp();
                        e / (1.0 + e)
                    };
                    let err = p - labels[i] as f64;
                    for (g, xj) in gw.iter_mut().zip(&rows[i]) {
                        *g += err * xj;
                    }
                    gb += err;
                }
                let k = batch.len() as f64;
                for (wj, g) in w.iter_mut().zip(&gw) {
                    *wj -= lr * (g / k + cfg.l2 * *wj);
                }
                b -= lr * gb / k;
            }
        }
        Ok(Box::new(FittedLinear {
            scaler,
            weights: w,
            bias: b,
        }))
    }
}

/// The paper's "SVM" classifier (linear kernel, Pegasos SGD).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: LinearConfig,
}

impl LinearSvm {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        LinearSvm {
            config: LinearConfig {
                seed,
                l2: 1e-4,
                epochs: 40,
                ..LinearConfig::default()
            },
        }
    }

    /// Custom configuration.
    pub fn with_config(config: LinearConfig) -> Self {
        LinearSvm { config }
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?.to_vec();
        let scaler = StandardScaler::fit(train);
        let rows = scaler.transform_rows(train);
        let n = rows.len();
        let d = train.n_cols();
        let lambda = self.config.l2.max(1e-8);
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        // Offset the Pegasos step counter so η = 1/(λ·t) starts near 1
        // instead of 1/λ — the unregularized bias otherwise takes one huge
        // first step that saturates every margin.
        let mut t = (1.0 / lambda).ceil() as usize;

        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let y = if labels[i] == 1 { 1.0 } else { -1.0 };
                let mut m = b;
                for (wj, xj) in w.iter().zip(&rows[i]) {
                    m += wj * xj;
                }
                // Pegasos step: always shrink, add the sample on margin
                // violation.
                let shrink = 1.0 - eta * lambda;
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if y * m < 1.0 {
                    for (wj, xj) in w.iter_mut().zip(&rows[i]) {
                        *wj += eta * y * xj;
                    }
                    b += eta * y;
                }
            }
        }
        Ok(Box::new(FittedLinear {
            scaler,
            weights: w,
            bias: b,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use safe_stats::auc::auc;

    fn linear_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            c0.push(a);
            c1.push(b);
            y.push((2.0 * a - b + rng.gen_range(-0.2..0.2) > 0.0) as u8);
        }
        Dataset::from_columns(vec!["a".into(), "b".into()], vec![c0, c1], Some(y)).unwrap()
    }

    #[test]
    fn logistic_regression_fits_linear_boundary() {
        let train = linear_data(600, 1);
        let test = linear_data(300, 2);
        let model = LogisticRegression::new(0).fit(&train).unwrap();
        let a = auc(&model.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(a > 0.97, "auc = {a}");
    }

    #[test]
    fn svm_fits_linear_boundary() {
        let train = linear_data(600, 3);
        let test = linear_data(300, 4);
        let model = LinearSvm::new(0).fit(&train).unwrap();
        let a = auc(&model.predict_proba(&test).unwrap(), test.labels().unwrap());
        assert!(a > 0.97, "auc = {a}");
    }

    #[test]
    fn probabilities_bounded() {
        let train = linear_data(200, 5);
        for model in [
            LogisticRegression::new(0).fit(&train).unwrap(),
            LinearSvm::new(0).fit(&train).unwrap(),
        ] {
            for p in model.predict_proba(&train).unwrap() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn imbalanced_data_learns_the_minority_direction() {
        // 10% positives along +x; ranking must still be right.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 500;
        let x: Vec<f64> = (0..n).map(|i| if i % 10 == 0 { rng.gen_range(1.0..2.0) } else { rng.gen_range(-2.0..0.5) }).collect();
        let y: Vec<u8> = (0..n).map(|i| (i % 10 == 0) as u8).collect();
        let ds = Dataset::from_columns(vec!["x".into()], vec![x], Some(y)).unwrap();
        let model = LogisticRegression::new(0).fit(&ds).unwrap();
        let a = auc(&model.predict_proba(&ds).unwrap(), ds.labels().unwrap());
        assert!(a > 0.9, "auc = {a}");
    }

    #[test]
    fn deterministic_under_seed() {
        let train = linear_data(200, 7);
        let a = LogisticRegression::new(11).fit(&train).unwrap();
        let b = LogisticRegression::new(11).fit(&train).unwrap();
        assert_eq!(
            a.predict_proba(&train).unwrap(),
            b.predict_proba(&train).unwrap()
        );
        let s1 = LinearSvm::new(11).fit(&train).unwrap();
        let s2 = LinearSvm::new(11).fit(&train).unwrap();
        assert_eq!(
            s1.predict_proba(&train).unwrap(),
            s2.predict_proba(&train).unwrap()
        );
    }

    #[test]
    fn handles_missing_cells() {
        let mut train = linear_data(200, 8);
        // Punch NaNs into the first column.
        let mut col = train.column(0).unwrap().to_vec();
        for i in (0..col.len()).step_by(7) {
            col[i] = f64::NAN;
        }
        let labels = train.labels().unwrap().to_vec();
        let c1 = train.column(1).unwrap().to_vec();
        train = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![col, c1],
            Some(labels),
        )
        .unwrap();
        let model = LogisticRegression::new(0).fit(&train).unwrap();
        let probs = model.predict_proba(&train).unwrap();
        assert!(probs.iter().all(|p| p.is_finite()));
    }
}
