//! CART classification trees (gini impurity) over quantized features.
//!
//! The same builder powers four of the paper's nine classifiers: the plain
//! decision tree, both forest ensembles (best-split and random-split
//! variants) and the AdaBoost base stumps (via sample weights). Leaves store
//! the weighted positive-class fraction, so `predict_row` directly yields a
//! probability.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;
use safe_gbm::binner::BinnedDataset;
use safe_gbm::tree::{Tree, TreeNode};
use safe_stats::par::Parallelism;

use crate::classifier::{training_labels, Classifier, FittedClassifier, ModelError};

/// Per-node feature subsampling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// Consider every feature (plain CART).
    All,
    /// √M features per node (forest default).
    Sqrt,
    /// A fixed fraction of features.
    Frac(f64),
}

impl MaxFeatures {
    fn count(self, m: usize) -> usize {
        match self {
            MaxFeatures::All => m,
            MaxFeatures::Sqrt => (m as f64).sqrt().round().max(1.0) as usize,
            MaxFeatures::Frac(f) => ((m as f64) * f).ceil().max(1.0) as usize,
        }
        .min(m)
    }
}

/// Split-point selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Splitter {
    /// Exhaustive best split per feature (CART, Random Forest).
    Best,
    /// One uniformly random split per feature (Extremely randomized Trees).
    Random,
}

/// Classification-tree hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Depth cap (scikit-learn's `None` is approximated with 25).
    pub max_depth: usize,
    /// Minimum rows in each child.
    pub min_samples_leaf: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per node.
    pub max_features: MaxFeatures,
    /// Best or random split points.
    pub splitter: Splitter,
    /// Quantization budget.
    pub max_bins: usize,
    /// RNG seed (feature subsets, random splits).
    pub seed: u64,
    /// Worker budget for feature quantization (0 = one worker per core).
    pub parallelism: Parallelism,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 25,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: MaxFeatures::All,
            splitter: Splitter::Best,
            max_bins: 256,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

/// Gini impurity of a weighted two-class node.
#[inline]
fn gini(wp: f64, wn: f64) -> f64 {
    let w = wp + wn;
    if w <= 0.0 {
        return 0.0;
    }
    let p = wp / w;
    2.0 * p * (1.0 - p)
}

struct SplitChoice {
    feature: usize,
    split_bin: u16,
    default_left: bool,
    /// Weighted impurity decrease.
    gain: f64,
}

/// Grow a classification tree. Exposed crate-wide so forests and AdaBoost
/// reuse the same builder with different configs/weights.
pub(crate) fn grow_classification_tree(
    binned: &BinnedDataset,
    labels: &[u8],
    weights: &[f64],
    rows: Vec<u32>,
    config: &TreeConfig,
    rng: &mut StdRng,
) -> Tree {
    let mut tree = Tree::default();
    tree.nodes.clear();
    build(&mut tree, binned, labels, weights, rows, config, rng, 0);
    tree
}

#[allow(clippy::too_many_arguments)]
fn build(
    tree: &mut Tree,
    binned: &BinnedDataset,
    labels: &[u8],
    weights: &[f64],
    rows: Vec<u32>,
    config: &TreeConfig,
    rng: &mut StdRng,
    depth: usize,
) -> usize {
    let (wp, wn) = rows.iter().fold((0.0, 0.0), |(p, n), &r| {
        let r = r as usize;
        if labels[r] == 1 {
            (p + weights[r], n)
        } else {
            (p, n + weights[r])
        }
    });
    let leaf_value = if wp + wn > 0.0 { wp / (wp + wn) } else { 0.5 };

    let can_split = depth < config.max_depth
        && rows.len() >= config.min_samples_split
        && wp > 0.0
        && wn > 0.0;
    let choice = if can_split {
        choose_split(binned, labels, weights, &rows, (wp, wn), config, rng)
    } else {
        None
    };

    match choice {
        None => {
            tree.nodes.push(TreeNode::Leaf { value: leaf_value });
            tree.nodes.len() - 1
        }
        Some(c) => {
            let (left_rows, right_rows) = partition(binned, &rows, &c);
            if left_rows.len() < config.min_samples_leaf
                || right_rows.len() < config.min_samples_leaf
            {
                tree.nodes.push(TreeNode::Leaf { value: leaf_value });
                return tree.nodes.len() - 1;
            }
            let threshold = binned.mapper(c.feature).threshold(c.split_bin);
            let idx = tree.nodes.len();
            tree.nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
            let left = build(tree, binned, labels, weights, left_rows, config, rng, depth + 1);
            let right = build(tree, binned, labels, weights, right_rows, config, rng, depth + 1);
            tree.nodes[idx] = TreeNode::Internal {
                feature: c.feature,
                threshold,
                default_left: c.default_left,
                left,
                right,
                gain: c.gain,
            };
            idx
        }
    }
}

fn choose_split(
    binned: &BinnedDataset,
    labels: &[u8],
    weights: &[f64],
    rows: &[u32],
    totals: (f64, f64),
    config: &TreeConfig,
    rng: &mut StdRng,
) -> Option<SplitChoice> {
    let m = binned.n_features();
    let k = config.max_features.count(m);
    let mut all: Vec<usize> = (0..m).collect();
    let candidates: Vec<usize> = if k < m {
        all.shuffle(rng);
        all.truncate(k);
        all
    } else {
        all
    };

    let (wp_total, wn_total) = totals;
    let parent_impurity = gini(wp_total, wn_total);
    let mut best: Option<SplitChoice> = None;

    for f in candidates {
        let mapper = binned.mapper(f);
        let n_splits = mapper.n_split_candidates();
        if n_splits == 0 {
            continue;
        }
        // Weighted class histogram over this feature's bins.
        let n_bins = mapper.n_bins();
        let mut wp = vec![0.0f64; n_bins];
        let mut wn = vec![0.0f64; n_bins];
        let col = binned.bins(f);
        for &r in rows {
            let r = r as usize;
            let b = col[r] as usize;
            if labels[r] == 1 {
                wp[b] += weights[r];
            } else {
                wn[b] += weights[r];
            }
        }
        let missing = mapper.missing_bin() as usize;
        let (mp, mn) = (wp[missing], wn[missing]);

        let split_bins: Vec<u16> = match config.splitter {
            Splitter::Best => (0..n_splits as u16).collect(),
            Splitter::Random => {
                // ExtraTrees draws the threshold uniformly within the node's
                // *local* value range, so restrict to the occupied bins.
                let occupied = |b: usize| wp[b] > 0.0 || wn[b] > 0.0;
                let lo = (0..n_bins).find(|&b| b != missing && occupied(b));
                let hi = (0..n_bins).rev().find(|&b| b != missing && occupied(b));
                match (lo, hi) {
                    (Some(lo), Some(hi)) if lo < hi => {
                        // Valid split bins leave at least one occupied bin on
                        // each side: lo..=hi-1 (also capped to real splits).
                        let upper = (hi - 1).min(n_splits - 1);
                        if lo > upper {
                            continue;
                        }
                        vec![rng.gen_range(lo as u16..=upper as u16)]
                    }
                    _ => continue, // node is constant on this feature
                }
            }
        };

        let mut cum_p = 0.0;
        let mut cum_n = 0.0;
        let mut cursor = 0usize; // next bin to accumulate
        for sb in split_bins {
            // Accumulate bins up to and including `sb` (split_bins are
            // increasing for Best; Random has a single entry).
            while cursor <= sb as usize {
                cum_p += wp[cursor];
                cum_n += wn[cursor];
                cursor += 1;
            }
            for default_left in [false, true] {
                let (lp, ln) = if default_left {
                    (cum_p + mp, cum_n + mn)
                } else {
                    (cum_p, cum_n)
                };
                let rp = wp_total - lp;
                let rn = wn_total - ln;
                let wl = lp + ln;
                let wr = rp + rn;
                if wl <= 0.0 || wr <= 0.0 {
                    continue;
                }
                let w = wl + wr;
                let gain =
                    parent_impurity - (wl / w) * gini(lp, ln) - (wr / w) * gini(rp, rn);
                if gain <= 1e-12 {
                    continue;
                }
                if best.as_ref().map(|b| gain > b.gain).unwrap_or(true) {
                    best = Some(SplitChoice {
                        feature: f,
                        split_bin: sb,
                        default_left,
                        gain,
                    });
                }
            }
        }
    }
    best
}

fn partition(binned: &BinnedDataset, rows: &[u32], c: &SplitChoice) -> (Vec<u32>, Vec<u32>) {
    let bins = binned.bins(c.feature);
    let missing = binned.mapper(c.feature).missing_bin();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        let b = bins[r as usize];
        let go_left = if b == missing {
            c.default_left
        } else {
            b <= c.split_bin
        };
        if go_left {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

/// The paper's "DT" classifier: a single CART tree with scikit-learn-like
/// defaults.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
}

impl DecisionTree {
    /// Default configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        DecisionTree {
            config: TreeConfig { seed, ..TreeConfig::default() },
        }
    }

    /// Custom configuration.
    pub fn with_config(config: TreeConfig) -> Self {
        DecisionTree { config }
    }
}

/// A fitted tree (also the per-member output used by the ensembles).
pub struct FittedTree {
    tree: Tree,
    n_features: usize,
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DT"
    }
    fn fit(&self, train: &Dataset) -> Result<Box<dyn FittedClassifier>, ModelError> {
        let labels = training_labels(train)?;
        let binned = BinnedDataset::fit(train, self.config.max_bins, self.config.parallelism);
        let weights = vec![1.0; train.n_rows()];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let tree = grow_classification_tree(
            &binned,
            labels,
            &weights,
            (0..train.n_rows() as u32).collect(),
            &self.config,
            &mut rng,
        );
        Ok(Box::new(FittedTree {
            tree,
            n_features: train.n_cols(),
        }))
    }
}

impl FittedClassifier for FittedTree {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, ModelError> {
        self.check_shape(ds)?;
        let cols: Vec<&[f64]> = ds.columns().collect();
        let mut out = vec![0.0; ds.n_rows()];
        self.tree.predict_into(&cols, &mut out);
        Ok(out)
    }
    fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_data::dataset::Dataset;
    use safe_stats::auc::auc;

    fn step_data(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        Dataset::from_columns(vec!["x".into()], vec![x], Some(y)).unwrap()
    }

    #[test]
    fn perfect_split_on_step_data() {
        let ds = step_data(100);
        let model = DecisionTree::new(0).fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        assert_eq!(auc(&probs, ds.labels().unwrap()), 1.0);
    }

    #[test]
    fn leaves_are_probabilities() {
        let ds = step_data(64);
        let model = DecisionTree::new(0).fit(&ds).unwrap();
        for p in model.predict_proba(&ds).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn depth_cap_limits_tree() {
        let ds = step_data(200);
        let dt = DecisionTree::with_config(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        let _ = dt.fit(&ds).unwrap(); // builds without blowing the cap
    }

    #[test]
    fn min_samples_leaf_respected() {
        // With min_samples_leaf = n/2 only a perfectly balanced root split
        // is permitted; the tree cannot isolate single rows.
        let ds = step_data(40);
        let dt = DecisionTree::with_config(TreeConfig {
            min_samples_leaf: 20,
            ..TreeConfig::default()
        });
        let fitted = dt.fit(&ds).unwrap();
        let probs = fitted.predict_proba(&ds).unwrap();
        let distinct: std::collections::BTreeSet<u64> =
            probs.iter().map(|p| p.to_bits()).collect();
        assert!(distinct.len() <= 2, "at most one split possible");
    }

    #[test]
    fn pure_labels_yield_single_leaf() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ds =
            Dataset::from_columns(vec!["x".into()], vec![x], Some(vec![1; 30])).unwrap();
        let model = DecisionTree::new(0).fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        assert!(probs.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn weighted_growth_shifts_leaf_probabilities() {
        // Upweighting the positive rows must raise the positive leaf share.
        let ds = step_data(40);
        let labels = ds.labels().unwrap().to_vec();
        let binned = BinnedDataset::fit(&ds, 256, Parallelism::auto());
        let config = TreeConfig { max_depth: 1, ..TreeConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let uniform = vec![1.0; 40];
        let boosted: Vec<f64> = labels.iter().map(|&l| if l == 1 { 5.0 } else { 1.0 }).collect();
        let t_uniform = grow_classification_tree(&binned, &labels, &uniform, (0..40).collect(), &config, &mut rng);
        let t_boosted = grow_classification_tree(&binned, &labels, &boosted, (0..40).collect(), &config, &mut rng);
        // Mixed-region leaf probability grows with positive weight (here the
        // split is clean, so compare root-level totals via prediction means).
        let mean_u: f64 = (0..40).map(|i| t_uniform.predict_row(&[i as f64])).sum::<f64>() / 40.0;
        let mean_b: f64 = (0..40).map(|i| t_boosted.predict_row(&[i as f64])).sum::<f64>() / 40.0;
        assert!(mean_b >= mean_u);
    }

    #[test]
    fn random_splitter_still_learns() {
        let ds = step_data(300);
        let dt = DecisionTree::with_config(TreeConfig {
            splitter: Splitter::Random,
            seed: 7,
            ..TreeConfig::default()
        });
        let model = dt.fit(&ds).unwrap();
        let probs = model.predict_proba(&ds).unwrap();
        assert!(auc(&probs, ds.labels().unwrap()) > 0.95);
    }

    #[test]
    fn shape_mismatch_detected() {
        let ds = step_data(20);
        let model = DecisionTree::new(0).fit(&ds).unwrap();
        let wide = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0], vec![2.0]],
            None,
        )
        .unwrap();
        assert!(matches!(
            model.predict_proba(&wide).unwrap_err(),
            ModelError::ShapeMismatch { expected: 1, actual: 2 }
        ));
    }

    #[test]
    fn max_features_counts() {
        assert_eq!(MaxFeatures::All.count(100), 100);
        assert_eq!(MaxFeatures::Sqrt.count(100), 10);
        assert_eq!(MaxFeatures::Sqrt.count(1), 1);
        assert_eq!(MaxFeatures::Frac(0.25).count(100), 25);
        assert_eq!(MaxFeatures::Frac(0.0001).count(100), 1);
    }
}
