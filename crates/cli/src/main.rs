//! # safe-cli — SAFE feature engineering from the command line
//!
//! ```text
//! safe-cli fit     --input train.csv [--valid valid.csv] --plan out.safeplan
//!                  [--label label] [--gamma 30] [--alpha 0.1] [--theta 0.8]
//!                  [--iterations 1] [--multiplier 2] [--seed 0] [--full-ops]
//! safe-cli resume  --checkpoint-dir DIR --input train.csv --plan out.safeplan
//! safe-cli apply   --plan plan.safeplan --input data.csv --output out.csv
//! safe-cli explain --plan plan.safeplan [--input data.csv]
//! safe-cli score   --input data.csv [--label label]     # per-feature IV table
//! safe-cli serve   --artifact model.safeartifact        # JSONL scoring daemon
//! safe-cli bench-serve                                  # daemon throughput bench
//! ```
//!
//! CSV convention: header row, numeric cells, label column named `label`
//! (override with `--label`), empty/NA cells are missing.

//! Exit codes: 0 success, 2 usage, 3 file i/o, 4 bad input data, 5 bad
//! plan, 6 pipeline rejection, 7 unrecoverable checkpoint state, 8 bench
//! regression found by `bench-diff` (the authoritative table is the `EXIT
//! CODES` section of `safe-cli help`). Errors print their full cause
//! chain, one `caused by:` line per nested source.

use std::process::ExitCode;

mod args;
mod benchdiff;
mod commands;
mod error;
mod serve;

// With the alloc-metrics feature the whole binary runs under the counting
// allocator, so --metrics-prom reports per-stage allocation counts/bytes
// and the peak high-water mark. Off by default: the count is a few atomic
// ops per allocation, but zero-overhead means zero-overhead.
#[cfg(feature = "alloc-metrics")]
#[global_allocator]
static ALLOCATOR: safe_obs::alloc::CountingAllocator = safe_obs::alloc::CountingAllocator;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.render_chain());
            ExitCode::from(e.exit_code())
        }
    }
}
