//! CLI errors, classified so each failure class maps to a distinct process
//! exit code and renders its full cause chain.

use std::fmt;

use safe_core::SafeError;

/// Errors from the CLI, classified by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command/flag, missing or unparsable value.
    Usage(String),
    /// Filesystem failure reading or writing a file.
    Io(String),
    /// Input data could not be read or parsed.
    Data(String),
    /// Plan file invalid, or the plan does not apply to the given data.
    Plan(String),
    /// The SAFE pipeline rejected the run (bad config, audit rejection…).
    Safe(Box<SafeError>),
    /// Unrecoverable checkpoint state: every candidate file corrupt, a
    /// fingerprint mismatch, or a missing checkpoint directory. Distinct
    /// from ordinary i/o so operators can alert on durability loss.
    Checkpoint(String),
    /// `bench-diff` found a benchmark metric regressed past the threshold.
    /// Its own exit code so CI gates can tell "the comparison ran and
    /// failed" apart from "the comparison could not run".
    BenchRegression(String),
}

impl CliError {
    /// Process exit code: 2 usage, 3 io, 4 data, 5 plan, 6 pipeline,
    /// 7 checkpoint, 8 bench regression. The single authoritative table is
    /// the `EXIT CODES` section of the CLI usage text (see
    /// `commands::USAGE`).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Data(_) => 4,
            CliError::Plan(_) => 5,
            CliError::Safe(_) => 6,
            CliError::Checkpoint(_) => 7,
            CliError::BenchRegression(_) => 8,
        }
    }

    /// Render this error and its `source()` chain, one cause per line.
    pub fn render_chain(&self) -> String {
        let mut out = format!("error: {self}");
        let mut source = std::error::Error::source(self);
        while let Some(cause) = source {
            out.push_str(&format!("\n  caused by: {cause}"));
            source = cause.source();
        }
        out
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(m) => write!(f, "{m}"),
            CliError::Data(m) => write!(f, "{m}"),
            CliError::Plan(m) => write!(f, "{m}"),
            CliError::Safe(e) => write!(f, "{e}"),
            CliError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            CliError::BenchRegression(m) => write!(f, "bench regression: {m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Safe(e) => e.source(),
            _ => None,
        }
    }
}

impl From<SafeError> for CliError {
    fn from(e: SafeError) -> Self {
        match e {
            // Checkpoint rejections get their own exit code (7) so a
            // supervisor can tell "re-run from scratch" apart from "the
            // pipeline rejected the data/config".
            SafeError::Checkpoint(m) => CliError::Checkpoint(m),
            other => CliError::Safe(Box::new(other)),
        }
    }
}

impl From<safe_serve::ServeError> for CliError {
    fn from(e: safe_serve::ServeError) -> Self {
        use safe_serve::ServeError;
        match e {
            // Filesystem trouble keeps the io exit code.
            ServeError::Io { path, source } => CliError::Io(format!("{path}: {source}")),
            // A corrupt or inconsistent artifact is a bad-plan-file failure,
            // same class as a malformed .safeplan.
            ServeError::Parse { .. } | ServeError::Checksum { .. } | ServeError::Schema(_) => {
                CliError::Plan(e.to_string())
            }
            ServeError::Plan(inner) => CliError::Plan(inner.to_string()),
            ServeError::Gbm(inner) => CliError::Data(inner.to_string()),
            ServeError::Data(_) | ServeError::Worker(_) => CliError::Data(e.to_string()),
            // A submission rejected because the service already shut down
            // is a sequencing bug in the caller, not bad input data.
            ServeError::Closed => CliError::Data(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            CliError::Usage("u".into()),
            CliError::Io("i".into()),
            CliError::Data("d".into()),
            CliError::Plan("p".into()),
            CliError::Safe(Box::new(SafeError::Config("c".into()))),
            CliError::Checkpoint("k".into()),
            CliError::BenchRegression("b".into()),
        ];
        let codes: Vec<u8> = errors.iter().map(|e| e.exit_code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct: {codes:?}");
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn chain_renders_nested_causes() {
        let safe_err = SafeError::Gbm {
            iteration: 0,
            stage: "mine",
            source: safe_gbm::GbmError::EmptyTraining,
        };
        let rendered = CliError::from(safe_err).render_chain();
        assert!(rendered.starts_with("error: "), "{rendered}");
        assert!(rendered.contains("caused by:"), "{rendered}");
    }
}
