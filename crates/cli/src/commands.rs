//! Subcommand implementations.

use std::sync::Arc;
use std::time::Instant;

use safe_core::explain::{explain_plan, explanation_report};
use safe_core::plan::FeaturePlan;
use safe_core::safe::IterationStatus;
use safe_core::{Safe, SafeConfig, SelectionMode};
use safe_data::chunk::ChunkOptions;
use safe_data::csv::{read_csv, read_csv_chunked, write_csv};
use safe_gbm::GbmConfig;
use safe_obs::{Event, EventKind, EventSink, FanoutSink, JsonlSink, MemorySink, SinkHandle};
use safe_ops::registry::OperatorRegistry;
use safe_serve::{SafeArtifact, ScorerHandle};

use crate::args::Args;
use crate::error::CliError;

const USAGE: &str = "\
safe-cli — SAFE automatic feature engineering (ICDE 2020 reproduction)

USAGE:
  safe-cli fit     --input train.csv [--valid valid.csv] --plan out.safeplan
                   [--label label] [--gamma 30] [--alpha 0.1] [--theta 0.8]
                   [--iterations 1] [--multiplier 2] [--seed 0] [--full-ops]
                   [--audit warn|repair|reject] [--threads N]
                   [--selection exact|staged]
                   [--checkpoint-dir DIR] [--checkpoint-every N]
                   [--chunk-rows N] [--spill-dir DIR] [--resident-chunks N]
                   [--trace-jsonl trace.jsonl] [--report-json report.json]
                   [--report]
                   ('train' is an alias for 'fit')
  safe-cli resume  --checkpoint-dir DIR --input train.csv --plan out.safeplan
                   [all 'fit' flags]     # continue an interrupted fit
  safe-cli apply   --plan plan.safeplan --input data.csv --output out.csv
                   [--label label]
  safe-cli explain --plan plan.safeplan [--input data.csv] [--label label]
  safe-cli score   --input data.csv [--label label]
  safe-cli score   --artifact model.safeartifact --input data.csv
                   [--label label] [--threads N] [--batch-size 1024]
                   [--output scores.csv]
  safe-cli save-artifact --plan plan.safeplan --input train.csv
                   [--valid valid.csv] --artifact model.safeartifact
                   [--label label] [--rounds 100] [--seed 0] [--threads N]
                   [--full-ops] [--chunk-rows N] [--spill-dir DIR]
                   [--resident-chunks N]
  safe-cli serve   --artifact model.safeartifact [--input requests.jsonl]
                   [--output responses.jsonl] [--follow] [--workers N]
                   [--max-batch 256] [--queue-capacity 4096]
  safe-cli bench-serve [--artifact model.safeartifact] [--requests 20000]
                   [--workers 1,2,4] [--max-batch 256] [--seed 42]
                   [--dataset NAME] [--pipeline-out PATH]
  safe-cli trace-check --input trace.jsonl [--format jsonl|chrome]
  safe-cli bench-diff old.json new.json [--fail-over 20]

SERVING:
  save-artifact        train a scoring booster on the plan's features and
                       bundle plan + booster + schema into one versioned,
                       checksummed artifact file
  score --artifact     batch-score a CSV with a saved artifact; prints the
                       AUC at full precision when a label column is present
                       (bit-identical to the AUC recorded at save time, for
                       the same data, at any --threads / --batch-size)
  serve                long-lived scoring daemon: JSONL requests in (stdin,
                       or --input FILE; --follow tails the file), one JSON
                       response per line in submission order, each stamped
                       with the artifact version that scored it; a
                       {\"swap\":\"path\"} record hot-swaps the artifact with
                       zero downtime, {\"shutdown\":true} drains and exits
  bench-serve          drive the daemon with single-row submissions at
                       several worker counts, assert streamed scores match
                       the offline scorer bit-for-bit, and record the
                       serving_daemon section of BENCH_pipeline.json

TELEMETRY:
  --trace-jsonl PATH   stream pipeline events (one JSON object per line:
                       ts_us, event, stage, ...) to PATH during the fit
  --report-json PATH   write the per-stage/per-iteration run report as JSON
  --report             print the run report as a table on stderr (the pct
                       column is each stage's share of total wall time)
  trace-check          validate a --trace-jsonl file (schema + event kinds);
                       --format chrome validates a --trace-chrome JSON file

METRICS & PROFILING:
  --metrics-prom PATH  write fit metrics (counters, gauges, latency
                       histograms with p50/p95/p99) in Prometheus text
                       exposition format
  --trace-chrome PATH  write the event stream as Chrome trace-event JSON
                       (load in Perfetto: ui.perfetto.dev, 'Open trace')
  --flame-folded PATH  write folded stacks (stage;substage self_us) for
                       flamegraph.pl / inferno / speedscope
  bench-diff           compare two BENCH_pipeline.json timing documents;
                       exits 8 when any metric regressed past --fail-over
                       percent (default 20)

THREADING:
  --threads N          worker threads for the parallel stages (0 = auto,
                       the default; 1 = serial). Results are bit-identical
                       for every N — see DESIGN.md, \"Parallel execution\"

SELECTION:
  --selection MODE     candidate selection mode: 'exact' (default; the
                       paper's full IV/Pearson/gain pass over every
                       candidate, bit-identical to prior releases) or
                       'staged' (successive-halving pruner: cheap IV on
                       growing row subsamples narrows the pool before the
                       exact pass runs on the finalists; AUC parity within
                       ±0.005 — see DESIGN.md, \"Staged selection\")

OUT-OF-CORE (see DESIGN.md, \"Out-of-core backend\"):
  --chunk-rows N       ingest the training CSV as fixed N-row chunks via
                       the streaming reader (the full table is never
                       materialized during parsing); plans, reports and
                       AUC are bit-identical to resident fits
  --spill-dir DIR      keep chunks past the resident budget in spill files
                       under DIR (a unique subdirectory is created and
                       removed when the dataset is dropped)
  --resident-chunks N  decoded-chunk LRU budget per store when spilling
                       (default 16; requires --spill-dir)

CRASH SAFETY:
  --checkpoint-dir DIR write a durable SAFECKPT snapshot after each
                       completed iteration (atomic: temp file, fsync,
                       rename); a killed fit resumes with 'resume'
  --checkpoint-every N snapshot stride in iterations (default 1; the
                       terminal snapshot is always written)
  resume               continue from the newest loadable checkpoint to the
                       same final plan, bit-identical to an uninterrupted
                       run; torn/corrupt files are quarantined (*.corrupt)
                       and the previous good snapshot is used

EXIT CODES (authoritative table — DESIGN.md and README defer here):
  0 success           2 usage             3 file i/o
  4 bad input data    5 bad plan          6 pipeline rejected the run
  7 unrecoverable checkpoint state (all candidates corrupt, fingerprint
    mismatch, or missing checkpoint directory)
  8 bench-diff found a benchmark regression past the threshold
";

/// Dispatch the parsed command line.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv).map_err(CliError::Usage)?;
    match args.command.as_deref() {
        Some("fit") | Some("train") => fit(&args, false),
        Some("resume") => fit(&args, true),
        Some("apply") => apply(&args),
        Some("explain") => explain(&args),
        Some("save-artifact") => save_artifact(&args),
        Some("score") if args.get("artifact").is_some() => score_artifact(&args),
        Some("score") => score(&args),
        Some("serve") => crate::serve::serve(&args),
        Some("bench-serve") => crate::serve::bench_serve(&args),
        Some("trace-check") => trace_check(&args),
        Some("bench-diff") => bench_diff(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

/// Prints `warn` telemetry events (degraded iterations, audit findings,
/// failpoint trips) to stderr as they happen; ignores everything else.
struct StderrWarnSink;

impl EventSink for StderrWarnSink {
    fn record(&self, event: &Event) {
        if event.kind != EventKind::Warn {
            return;
        }
        match event.iteration {
            Some(i) => eprintln!(
                "  warn[{} iter {}] {}: {}",
                event.stage, i, event.name, event.message
            ),
            None => eprintln!("  warn[{}] {}: {}", event.stage, event.name, event.message),
        }
    }
}

fn registry(args: &Args) -> OperatorRegistry {
    if args.switch("full-ops") {
        OperatorRegistry::standard()
    } else {
        OperatorRegistry::arithmetic()
    }
}

fn audit_config(args: &Args) -> Result<safe_data::AuditConfig, CliError> {
    let policy = match args.get("audit") {
        None | Some("warn") => safe_data::AuditPolicy::Warn,
        Some("repair") => safe_data::AuditPolicy::Repair,
        Some("reject") => safe_data::AuditPolicy::Reject,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "flag --audit: expected warn|repair|reject, got '{other}'"
            )))
        }
    };
    Ok(safe_data::AuditConfig { policy, ..safe_data::AuditConfig::default() })
}

fn selection_mode(args: &Args) -> Result<SelectionMode, CliError> {
    match args.get("selection") {
        None | Some("exact") => Ok(SelectionMode::Exact),
        Some("staged") => Ok(SelectionMode::Staged),
        Some(other) => Err(CliError::Usage(format!(
            "flag --selection: expected exact|staged, got '{other}'"
        ))),
    }
}

/// Parse the out-of-core backend flags (`--chunk-rows`, `--spill-dir`,
/// `--resident-chunks`). `None` means resident ingest; flag combinations
/// that cannot take effect are usage errors.
fn chunk_options(args: &Args) -> Result<Option<ChunkOptions>, CliError> {
    if args.get("chunk-rows").is_none() {
        if args.get("spill-dir").is_some() || args.get("resident-chunks").is_some() {
            return Err(CliError::Usage(
                "--spill-dir/--resident-chunks require --chunk-rows".into(),
            ));
        }
        return Ok(None);
    }
    let chunk_rows = args.get_or("chunk-rows", 4096usize).map_err(CliError::Usage)?;
    if chunk_rows == 0 {
        return Err(CliError::Usage("--chunk-rows must be at least 1".into()));
    }
    let opts = match args.get("spill-dir") {
        None => {
            if args.get("resident-chunks").is_some() {
                return Err(CliError::Usage(
                    "--resident-chunks requires --spill-dir (without spilling, every chunk stays resident)".into(),
                ));
            }
            ChunkOptions::in_memory(chunk_rows)
        }
        Some(dir) => {
            let resident =
                args.get_or("resident-chunks", 16usize).map_err(CliError::Usage)?;
            if resident == 0 {
                return Err(CliError::Usage("--resident-chunks must be at least 1".into()));
            }
            ChunkOptions::spilled(chunk_rows, resident, dir)
        }
    };
    Ok(Some(opts))
}

/// Load the train (and optional validation) CSVs, through the streaming
/// chunked reader when out-of-core flags are set — the parse never holds
/// the full f64 table — and the resident reader otherwise.
fn read_inputs(
    input: &str,
    valid_path: Option<&str>,
    label: &str,
    chunking: Option<&ChunkOptions>,
) -> Result<(safe_data::dataset::Dataset, Option<safe_data::dataset::Dataset>), CliError> {
    let read = |path: &str| match chunking {
        Some(opts) => read_csv_chunked(path, Some(label), opts.clone())
            .map_err(|e| CliError::Data(e.to_string())),
        None => read_csv(path, Some(label)).map_err(|e| CliError::Data(e.to_string())),
    };
    let train = read(input)?;
    let valid = match valid_path {
        Some(path) => Some(read(path)?),
        None => None,
    };
    Ok((train, valid))
}

/// Post-fit chunk-cache summary for chunked datasets, one line per backing
/// store on stderr.
fn report_chunk_stats(ds: &safe_data::dataset::Dataset) {
    for store in ds.chunk_stores() {
        let st = store.stats();
        eprintln!(
            "oocore: {} chunks x {} rows ({}){}, {} hits / {} loads / {} evictions, peak resident {} bytes",
            store.n_chunks(),
            store.chunk_rows(),
            if store.is_spilled() { "spilled" } else { "in-memory" },
            match store.budget_bytes() {
                Some(b) => format!(", budget {b} bytes"),
                None => String::new(),
            },
            st.hits,
            st.loads,
            st.evictions,
            st.peak_resident_bytes,
        );
    }
}

fn fit(args: &Args, resume: bool) -> Result<(), CliError> {
    args.ensure_known(&[
        "input", "valid", "plan", "label", "gamma", "alpha", "theta",
        "iterations", "multiplier", "seed", "full-ops", "audit",
        "threads", "selection", "checkpoint-dir", "checkpoint-every",
        "chunk-rows", "spill-dir", "resident-chunks",
        "trace-jsonl", "report-json", "report",
        "metrics-prom", "trace-chrome", "flame-folded",
    ])
    .map_err(CliError::Usage)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    let plan_path = args.require("plan").map_err(CliError::Usage)?;
    let label = args.get("label").unwrap_or("label");
    if resume && args.get("checkpoint-dir").is_none() {
        return Err(CliError::Usage("resume requires --checkpoint-dir".into()));
    }

    // Worker budget for the parallel stages; rejected up front so an
    // absurd request is a usage error, not a pipeline failure.
    let threads = args.get_or("threads", 0usize).map_err(CliError::Usage)?;
    safe_stats::par::Parallelism::new(threads)
        .validate()
        .map_err(|e| CliError::Usage(format!("flag --threads: {e}")))?;

    let chunking = chunk_options(args)?;
    let (train, valid) = read_inputs(input, args.get("valid"), label, chunking.as_ref())?;

    // Telemetry: warnings always stream to stderr; --trace-jsonl adds a
    // machine-readable event stream. The profiling exports (--metrics-prom,
    // --trace-chrome, --flame-folded) replay the full event stream after
    // the fit, so they share one in-memory sink.
    let mut sinks: Vec<Arc<dyn EventSink>> = vec![Arc::new(StderrWarnSink)];
    if let Some(path) = args.get("trace-jsonl") {
        let jsonl =
            JsonlSink::to_file(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        sinks.push(Arc::new(jsonl));
    }
    let wants_exports = ["metrics-prom", "trace-chrome", "flame-folded"]
        .iter()
        .any(|f| args.get(f).is_some());
    let mem_sink = if wants_exports {
        let mem = Arc::new(MemorySink::new());
        sinks.push(mem.clone());
        Some(mem)
    } else {
        None
    };
    let fan: Arc<dyn EventSink> = Arc::new(FanoutSink::new(sinks));

    let mut builder = SafeConfig::builder()
        .sink(SinkHandle::new(fan.clone()))
        .gamma(args.get_or("gamma", 30usize).map_err(CliError::Usage)?)
        .alpha(args.get_or("alpha", 0.1f64).map_err(CliError::Usage)?)
        .theta(args.get_or("theta", 0.8f64).map_err(CliError::Usage)?)
        .n_iterations(args.get_or("iterations", 1usize).map_err(CliError::Usage)?)
        .output_multiplier(args.get_or("multiplier", 2usize).map_err(CliError::Usage)?)
        .seed(args.get_or("seed", 0u64).map_err(CliError::Usage)?)
        .operators(registry(args))
        .audit(audit_config(args)?)
        .selection(selection_mode(args)?)
        .threads(threads)
        .checkpoint_every(args.get_or("checkpoint-every", 1usize).map_err(CliError::Usage)?);
    if let Some(dir) = args.get("checkpoint-dir") {
        builder = builder.checkpoint_dir(dir);
    }
    let config = builder.build().map_err(CliError::Usage)?;

    eprintln!(
        "{} SAFE on {} ({} rows x {} features)...",
        if resume { "resuming" } else { "fitting" },
        input,
        train.n_rows(),
        train.n_cols()
    );
    let start = Instant::now();
    let safe = Safe::new(config);
    let outcome = if resume {
        safe.fit_resumed(&train, valid.as_ref())?
    } else {
        safe.fit(&train, valid.as_ref())?
    };
    fan.flush();
    eprintln!(
        "done in {:.2}s: {} features selected ({} generated)",
        start.elapsed().as_secs_f64(),
        outcome.plan.outputs.len(),
        outcome.plan.n_generated_outputs()
    );
    if train.has_chunked_columns() {
        report_chunk_stats(&train);
    }
    for r in &outcome.history {
        match &r.status {
            IterationStatus::Completed => eprintln!(
                "  iter {}: {} combos -> {} generated -> {} after IV -> {} after redundancy -> {} selected",
                r.iteration, r.n_combinations_kept, r.n_generated, r.n_after_iv,
                r.n_after_redundancy, r.n_selected
            ),
            IterationStatus::Degraded { stage, reason } => eprintln!(
                "  iter {}: DEGRADED at {stage} ({reason}); kept {} features",
                r.iteration, r.n_selected
            ),
            IterationStatus::Skipped { reason } => {
                eprintln!("  iter {}: skipped ({reason})", r.iteration)
            }
        }
    }
    if args.switch("report") || args.get("report-json").is_some() {
        eprint!("{}", outcome.report.render_table());
    }
    if let Some(path) = args.get("report-json") {
        std::fs::write(path, outcome.report.to_json())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        eprintln!("run report written to {path}");
    }
    if let Some(mem) = &mem_sink {
        let events = mem.events();
        if let Some(path) = args.get("metrics-prom") {
            // Builder-side histograms (stage_us, iteration_us) live in the
            // report; sink-only observations (gbm_round_us, ckpt_write_us,
            // ...) only exist in the event stream. The exposition carries
            // both — the name sets are disjoint by construction.
            let snapshot = outcome
                .report
                .metrics
                .merge(&safe_obs::MetricsSnapshot::from_events(&events));
            std::fs::write(path, safe_obs::render_prometheus(&snapshot))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            eprintln!("prometheus metrics written to {path}");
        }
        if let Some(path) = args.get("trace-chrome") {
            std::fs::write(path, safe_obs::chrome_trace_json(&events))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            eprintln!("chrome trace written to {path} (open at ui.perfetto.dev)");
        }
        if let Some(path) = args.get("flame-folded") {
            std::fs::write(path, safe_obs::folded_stacks(&events))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            eprintln!("folded stacks written to {path}");
        }
    }
    std::fs::write(plan_path, outcome.plan.to_text())
        .map_err(|e| CliError::Io(format!("{plan_path}: {e}")))?;
    eprintln!("plan written to {plan_path}");
    Ok(())
}

/// Validate a telemetry export. The default (`--format jsonl`) checks a
/// `--trace-jsonl` file: every non-empty line must parse as a JSON object
/// carrying `ts_us`, `event` (a known kind), and `stage`. With
/// `--format chrome` the input is a `--trace-chrome` JSON document instead,
/// validated structurally (Perfetto-loadable trace-event array).
fn trace_check(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["input", "format"]).map_err(CliError::Usage)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    match args.get("format") {
        None | Some("jsonl") => {}
        Some("chrome") => {
            let text = std::fs::read_to_string(input)
                .map_err(|e| CliError::Io(format!("{input}: {e}")))?;
            let summary = safe_obs::validate_chrome_trace(&text)
                .map_err(|e| CliError::Data(format!("{input}: {e}")))?;
            println!(
                "{input}: {} trace events OK ({} spans, {} counter samples, {} instants)",
                summary.events, summary.spans, summary.counters, summary.instants
            );
            return Ok(());
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "flag --format: expected jsonl|chrome, got '{other}'"
            )))
        }
    }
    let text =
        std::fs::read_to_string(input).map_err(|e| CliError::Io(format!("{input}: {e}")))?;
    let mut n_events = 0usize;
    let mut n_warns = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let value = safe_obs::json::parse(line)
            .map_err(|e| CliError::Data(format!("{input}:{lineno}: invalid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| CliError::Data(format!("{input}:{lineno}: not a JSON object")))?;
        for key in ["ts_us", "event", "stage"] {
            if !obj.iter().any(|(k, _)| k == key) {
                return Err(CliError::Data(format!(
                    "{input}:{lineno}: missing required key '{key}'"
                )));
            }
        }
        if value.get("ts_us").and_then(|v| v.as_u64()).is_none() {
            return Err(CliError::Data(format!("{input}:{lineno}: ts_us is not an integer")));
        }
        let kind = value
            .get("event")
            .and_then(|v| v.as_str())
            .and_then(EventKind::parse)
            .ok_or_else(|| {
                CliError::Data(format!("{input}:{lineno}: unknown event kind"))
            })?;
        if kind == EventKind::Warn {
            n_warns += 1;
        }
        n_events += 1;
    }
    if n_events == 0 {
        return Err(CliError::Data(format!("{input}: no events")));
    }
    println!("{input}: {n_events} events OK ({n_warns} warnings)");
    Ok(())
}

/// `bench-diff old.json new.json [--fail-over pct]` — the bench regression
/// gate over two `BENCH_pipeline.json` documents (see [`crate::benchdiff`]).
fn bench_diff(args: &Args) -> Result<(), CliError> {
    args.ensure_known_with_positionals(&["fail-over"], 2)
        .map_err(|e| CliError::Usage(format!("bench-diff: {e} (want: old.json new.json)")))?;
    let fail_over = args
        .get_or("fail-over", crate::benchdiff::DEFAULT_FAIL_OVER_PCT)
        .map_err(CliError::Usage)?;
    if fail_over.is_nan() || fail_over < 0.0 {
        return Err(CliError::Usage("flag --fail-over: must be >= 0".into()));
    }
    crate::benchdiff::run(&args.positionals()[0], &args.positionals()[1], fail_over)
}

fn load_plan(path: &str) -> Result<FeaturePlan, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    FeaturePlan::from_text(&text).map_err(|e| CliError::Plan(format!("{path}: {e}")))
}

fn apply(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["plan", "input", "output", "label", "full-ops"])
        .map_err(CliError::Usage)?;
    let plan = load_plan(args.require("plan").map_err(CliError::Usage)?)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    let output = args.require("output").map_err(CliError::Usage)?;
    let label = args.get("label").unwrap_or("label");

    // Label column optional at apply time (inference data is unlabeled).
    let ds = read_csv(input, Some(label))
        .or_else(|_| read_csv(input, None))
        .map_err(|e| CliError::Data(e.to_string()))?;
    let compiled = plan
        .compile(&OperatorRegistry::standard())
        .map_err(|e| CliError::Plan(e.to_string()))?;
    let out = compiled.apply(&ds).map_err(|e| CliError::Plan(e.to_string()))?;
    write_csv(&out, output).map_err(|e| CliError::Io(format!("{output}: {e}")))?;
    eprintln!(
        "{}: {} rows x {} engineered features -> {}",
        input,
        out.n_rows(),
        out.n_cols(),
        output
    );
    Ok(())
}

fn explain(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["plan", "input", "label"]).map_err(CliError::Usage)?;
    let plan = load_plan(args.require("plan").map_err(CliError::Usage)?)?;
    let reference = match args.get("input") {
        Some(path) => {
            let label = args.get("label").unwrap_or("label");
            Some(read_csv(path, Some(label)).map_err(|e| CliError::Data(e.to_string()))?)
        }
        None => None,
    };
    let explanations = explain_plan(&plan, reference.as_ref());
    print!("{}", explanation_report(&explanations));
    Ok(())
}

/// Train the scoring booster over a fitted plan's features and save a
/// versioned, checksummed [`SafeArtifact`] (plan + booster + schema).
fn save_artifact(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "plan", "input", "valid", "artifact", "label", "rounds", "seed", "threads", "full-ops",
        "chunk-rows", "spill-dir", "resident-chunks",
    ])
    .map_err(CliError::Usage)?;
    let plan_path = args.require("plan").map_err(CliError::Usage)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    let artifact_path = args.require("artifact").map_err(CliError::Usage)?;
    let label = args.get("label").unwrap_or("label");

    // Flags are validated before any file is touched, so a bad command line
    // is always a usage error regardless of what exists on disk.
    let threads = args.get_or("threads", 0usize).map_err(CliError::Usage)?;
    safe_stats::par::Parallelism::new(threads)
        .validate()
        .map_err(|e| CliError::Usage(format!("flag --threads: {e}")))?;

    let plan = load_plan(plan_path)?;
    let chunking = chunk_options(args)?;
    let (train, valid) = read_inputs(input, args.get("valid"), label, chunking.as_ref())?;

    let defaults = GbmConfig::classifier();
    let config = GbmConfig {
        n_rounds: args.get_or("rounds", defaults.n_rounds).map_err(CliError::Usage)?,
        seed: args.get_or("seed", defaults.seed).map_err(CliError::Usage)?,
        parallelism: safe_stats::par::Parallelism::new(threads),
        ..defaults
    };

    eprintln!(
        "training scoring booster on {} ({} rows, {} plan outputs)...",
        input,
        train.n_rows(),
        plan.outputs.len()
    );
    let start = Instant::now();
    let artifact = SafeArtifact::train(&plan, &registry(args), &train, valid.as_ref(), &config)?;
    artifact.save(artifact_path)?;
    eprintln!(
        "artifact written to {} in {:.2}s ({} rounds)",
        artifact_path,
        start.elapsed().as_secs_f64(),
        config.n_rounds
    );
    if let Some(auc) = artifact.val_auc {
        // Full precision so downstream `score` runs can be checked
        // bit-for-bit against the value recorded here.
        println!("validation AUC {auc:.17}");
    }
    Ok(())
}

/// Batch-score a CSV with a saved artifact. Prints the AUC (full precision)
/// when a label column is present; `--output` writes one `score` column.
fn score_artifact(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["artifact", "input", "label", "threads", "batch-size", "output"])
        .map_err(CliError::Usage)?;
    let artifact_path = args.require("artifact").map_err(CliError::Usage)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    let label = args.get("label").unwrap_or("label");

    let threads = args.get_or("threads", 0usize).map_err(CliError::Usage)?;
    safe_stats::par::Parallelism::new(threads)
        .validate()
        .map_err(|e| CliError::Usage(format!("flag --threads: {e}")))?;
    let batch_size = args
        .get_positive("batch-size", safe_serve::DEFAULT_BATCH_SIZE)
        .map_err(CliError::Usage)?;

    let artifact = SafeArtifact::load(artifact_path)?;
    // Label column optional at scoring time (production data is unlabeled).
    let ds = read_csv(input, Some(label))
        .or_else(|_| read_csv(input, None))
        .map_err(|e| CliError::Data(e.to_string()))?;

    let scorer = ScorerHandle::new(&artifact, &OperatorRegistry::standard())?
        .with_threads(threads)
        .with_batch_size(batch_size);
    let (scores, report) = scorer.score_dataset(&ds)?;
    eprintln!(
        "{input}: {} rows in {} batches of {} on {} thread(s), {:.0} rows/s",
        report.rows, report.batches, report.batch_size, report.threads, report.rows_per_sec
    );

    if let Some(labels) = ds.labels() {
        let auc = safe_stats::auc::auc(&scores, labels);
        // Full precision: must reproduce the artifact's recorded validation
        // AUC bit-for-bit when scoring the same validation file.
        println!("AUC {auc:.17}");
    }
    if let Some(out_path) = args.get("output") {
        let out = safe_data::dataset::Dataset::from_columns(
            vec!["score".to_string()],
            vec![scores],
            None,
        )
        .map_err(|e| CliError::Data(e.to_string()))?;
        write_csv(&out, out_path).map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
        eprintln!("scores written to {out_path}");
    }
    Ok(())
}

fn score(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["input", "label"]).map_err(CliError::Usage)?;
    let input = args.require("input").map_err(CliError::Usage)?;
    let label = args.get("label").unwrap_or("label");
    let ds = read_csv(input, Some(label)).map_err(|e| CliError::Data(e.to_string()))?;
    let labels = ds
        .labels()
        .ok_or_else(|| CliError::Data("score requires a label column".to_string()))?;
    let mut rows: Vec<(String, f64)> = ds
        .meta()
        .iter()
        .zip(ds.columns())
        .map(|(meta, col)| {
            let iv = safe_stats::iv::information_value(col, labels, 10).unwrap_or(0.0);
            (meta.name.clone(), iv)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(7).max(7);
    println!("{:<name_w$}  {:>8}  band", "feature", "IV");
    for (name, iv) in rows {
        println!(
            "{name:<name_w$}  {iv:>8.4}  {}",
            safe_stats::iv::IvBand::of(iv).description()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("safe_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_training_csv(path: &std::path::Path) {
        // Label depends on a*b: SAFE should find an (a,b) feature.
        let mut text = String::from("a,b,noise,label\n");
        for i in 0..400 {
            let a = ((i * 37) % 100) as f64 / 50.0 - 1.0;
            let b = ((i * 61) % 100) as f64 / 50.0 - 1.0;
            let noise = ((i * 17) % 100) as f64;
            let y = (a * b > 0.0) as u8;
            text.push_str(&format!("{a},{b},{noise},{y}\n"));
        }
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn fit_apply_explain_round_trip() {
        let train = tmp("train.csv");
        let plan = tmp("plan.safeplan");
        let out = tmp("out.csv");
        write_training_csv(&train);

        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        assert!(plan.exists());

        run(&argv(&format!(
            "apply --plan {} --input {} --output {}",
            plan.display(),
            train.display(),
            out.display()
        )))
        .unwrap();
        let transformed = read_csv(&out, Some("label")).unwrap();
        assert!(transformed.n_cols() >= 1);
        assert_eq!(transformed.n_rows(), 400);

        run(&argv(&format!("explain --plan {}", plan.display()))).unwrap();
    }

    #[test]
    fn fit_with_repair_policy_runs() {
        let train = tmp("train_repair.csv");
        let plan = tmp("plan_repair.safeplan");
        // Add a constant column the audit should repair away.
        let mut text = String::from("a,b,konst,label\n");
        for i in 0..300 {
            let a = ((i * 37) % 100) as f64 / 50.0 - 1.0;
            let b = ((i * 61) % 100) as f64 / 50.0 - 1.0;
            let y = (a * b > 0.0) as u8;
            text.push_str(&format!("{a},{b},7,{y}\n"));
        }
        std::fs::write(&train, text).unwrap();
        run(&argv(&format!(
            "fit --input {} --plan {} --audit repair",
            train.display(),
            plan.display()
        )))
        .unwrap();
        let plan_text = std::fs::read_to_string(&plan).unwrap();
        assert!(!plan_text.contains("konst"), "repaired column must not appear");
    }

    #[test]
    fn train_alias_with_telemetry_flags() {
        let train = tmp("train_telemetry.csv");
        let plan = tmp("plan_telemetry.safeplan");
        let trace = tmp("trace.jsonl");
        let report = tmp("report.json");
        write_training_csv(&train);

        run(&argv(&format!(
            "train --input {} --plan {} --seed 3 --trace-jsonl {} --report-json {} --report",
            train.display(),
            plan.display(),
            trace.display(),
            report.display()
        )))
        .unwrap();

        // The trace validates under its own checker.
        run(&argv(&format!("trace-check --input {}", trace.display()))).unwrap();

        // The report parses and carries at least one completed iteration
        // with the full core stage set.
        let text = std::fs::read_to_string(&report).unwrap();
        let v = safe_obs::json::parse(&text).unwrap();
        let iterations = v.get("iterations").and_then(|x| x.as_array().map(<[_]>::to_vec)).unwrap();
        assert!(!iterations.is_empty());
        let it0 = &iterations[0];
        assert_eq!(it0.get("status").and_then(|s| s.as_str()), Some("completed"));
        let stages: Vec<String> = it0
            .get("stages")
            .and_then(|s| s.as_array().map(<[_]>::to_vec))
            .unwrap()
            .iter()
            .filter_map(|s| s.get("stage").and_then(|n| n.as_str()).map(String::from))
            .collect();
        for want in safe_obs::stages::CORE {
            assert!(stages.contains(&want.to_string()), "missing stage {want}: {stages:?}");
        }
    }

    #[test]
    fn threads_flag_is_deterministic_and_one_falls_back_to_serial() {
        let train = tmp("train_threads.csv");
        write_training_csv(&train);
        // threads=1 (explicit serial), threads=4 (parallel), and the
        // auto default must all emit byte-identical plans.
        let mut plans = Vec::new();
        for (name, flag) in
            [("t1.safeplan", "--threads 1"), ("t4.safeplan", "--threads 4"), ("t0.safeplan", "")]
        {
            let plan = tmp(name);
            run(&argv(&format!(
                "fit --input {} --plan {} --seed 3 {flag}",
                train.display(),
                plan.display()
            )))
            .unwrap();
            plans.push(std::fs::read_to_string(&plan).unwrap());
        }
        assert_eq!(plans[0], plans[1], "threads=1 and threads=4 plans differ");
        assert_eq!(plans[0], plans[2], "explicit and auto plans differ");
    }

    #[test]
    fn threads_flag_rejects_absurd_values() {
        let train = tmp("train_threads_bad.csv");
        write_training_csv(&train);
        let plan = tmp("never_written.safeplan");
        for bad in ["100000", "1000000000", "-2", "four"] {
            let err = run(&argv(&format!(
                "fit --input {} --plan {} --threads {bad}",
                train.display(),
                plan.display()
            )))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "--threads {bad} must be a usage error");
        }
        assert!(!plan.exists(), "rejected run must not write a plan");
    }

    #[test]
    fn trace_check_rejects_garbage() {
        let bad = tmp("bad_trace.jsonl");
        std::fs::write(&bad, "{\"ts_us\":1}\n").unwrap();
        let err = run(&argv(&format!("trace-check --input {}", bad.display()))).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(run(&argv(&format!("trace-check --input {}", bad.display()))).is_err());
    }

    /// The profiling exports: one fit emits a Perfetto-loadable Chrome
    /// trace (validated by `trace-check --format chrome`), a Prometheus
    /// exposition with stage latency histograms, and folded flamegraph
    /// stacks — and none of it changes the fitted plan.
    #[test]
    fn fit_with_profiling_exports() {
        let train = tmp("train_profiling.csv");
        let plan = tmp("plan_profiling.safeplan");
        let plan_plain = tmp("plan_plain.safeplan");
        let chrome = tmp("trace_chrome.json");
        let prom = tmp("metrics.prom");
        let folded = tmp("stacks.folded");
        write_training_csv(&train);

        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3 --trace-chrome {} --metrics-prom {} --flame-folded {}",
            train.display(),
            plan.display(),
            chrome.display(),
            prom.display(),
            folded.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan_plain.display()
        )))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&plan).unwrap(),
            std::fs::read_to_string(&plan_plain).unwrap(),
            "profiling exports must not change the fit"
        );

        // Chrome trace validates under the chrome checker and fails the
        // jsonl checker (it is one JSON document, not JSONL events).
        run(&argv(&format!(
            "trace-check --input {} --format chrome",
            chrome.display()
        )))
        .unwrap();
        assert!(run(&argv(&format!("trace-check --input {}", chrome.display()))).is_err());

        // Prometheus exposition carries the stage latency histograms with
        // TYPE metadata and the mandatory +Inf bucket.
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("# TYPE safe_stage_us histogram"), "{prom_text}");
        assert!(prom_text.contains("safe_stage_us_bucket{"), "{prom_text}");
        assert!(prom_text.contains("le=\"+Inf\""), "{prom_text}");
        assert!(prom_text.contains("safe_gbm_round_us"), "sink-only observations must export");

        // Folded stacks nest stages under the iteration frame.
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert!(
            folded_text.lines().any(|l| l.starts_with("iteration;") && l.contains("gbm-train")),
            "{folded_text}"
        );
    }

    #[test]
    fn trace_check_format_flag_validates() {
        let bad = tmp("bad_chrome.json");
        std::fs::write(&bad, "{\"traceEvents\": [{\"ph\":\"X\"}]}").unwrap();
        let err = run(&argv(&format!(
            "trace-check --input {} --format chrome",
            bad.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert_eq!(
            run(&argv(&format!("trace-check --input {} --format yaml", bad.display())))
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    /// The bench regression gate: self-compare passes, an injected 50%
    /// slowdown fails with exit code 8.
    #[test]
    fn bench_diff_gates_regressions() {
        let old = tmp("bench_old.json");
        let new_ok = tmp("bench_new_ok.json");
        let new_bad = tmp("bench_new_bad.json");
        let baseline = r#"{"schema_version": 2,
            "stages": [{"dataset":"toy","iteration":0,"stage":"gbm-train","millis":100.0,"features_in":4,"features_out":4}],
            "parallel": [{"dataset":"toy","threads":4,"secs":2.0,"speedup_vs_serial":2.0}]}"#;
        std::fs::write(&old, baseline).unwrap();
        std::fs::write(&new_ok, baseline).unwrap();
        std::fs::write(&new_bad, baseline.replace("\"millis\":100.0", "\"millis\":150.0")).unwrap();

        // Self-compare: clean exit.
        run(&argv(&format!("bench-diff {} {}", old.display(), new_ok.display()))).unwrap();

        // +50% on a metric above the noise floor: exit 8.
        let err = run(&argv(&format!("bench-diff {} {}", old.display(), new_bad.display())))
            .unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
        assert!(matches!(err, CliError::BenchRegression(_)));
        assert!(err.to_string().contains("gbm-train"), "{err}");

        // A looser threshold waves the same change through.
        run(&argv(&format!(
            "bench-diff {} {} --fail-over 75",
            old.display(),
            new_bad.display()
        )))
        .unwrap();

        // Wrong operand count is a usage error.
        assert_eq!(
            run(&argv(&format!("bench-diff {}", old.display()))).unwrap_err().exit_code(),
            2
        );
        // Missing file is io.
        assert_eq!(
            run(&argv(&format!("bench-diff {} /nonexistent.json", old.display())))
                .unwrap_err()
                .exit_code(),
            3
        );
    }

    /// PR 2-era JSONL traces (no `observe` events) must still validate —
    /// the checker accepts new event kinds without rejecting old streams.
    #[test]
    fn trace_check_accepts_pr2_era_jsonl() {
        let old_trace = tmp("pr2_trace.jsonl");
        std::fs::write(
            &old_trace,
            concat!(
                "{\"ts_us\":1,\"event\":\"stage_start\",\"stage\":\"gbm-train\",\"iteration\":0}\n",
                "{\"ts_us\":9,\"event\":\"counter\",\"stage\":\"gbm-train\",\"iteration\":0,\"name\":\"trees\",\"value\":3}\n",
                "{\"ts_us\":12,\"event\":\"stage_end\",\"stage\":\"gbm-train\",\"iteration\":0,\"value\":11}\n",
                "{\"ts_us\":14,\"event\":\"warn\",\"stage\":\"audit\",\"name\":\"konst\",\"message\":\"constant column\"}\n",
            ),
        )
        .unwrap();
        run(&argv(&format!("trace-check --input {}", old_trace.display()))).unwrap();

        // And the modern stream with observe events also validates.
        let new_trace = tmp("pr7_trace.jsonl");
        std::fs::write(
            &new_trace,
            "{\"ts_us\":3,\"event\":\"observe\",\"stage\":\"gbm-train\",\"iteration\":0,\"name\":\"gbm_round_us\",\"value\":812}\n",
        )
        .unwrap();
        run(&argv(&format!("trace-check --input {}", new_trace.display()))).unwrap();
    }

    #[test]
    fn score_runs() {
        let train = tmp("score.csv");
        write_training_csv(&train);
        run(&argv(&format!("score --input {}", train.display()))).unwrap();
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("fit --bogus 1")).is_err());
        assert!(run(&argv("fit")).unwrap_err().to_string().contains("--input"));
    }

    #[test]
    fn errors_classify_to_distinct_exit_codes() {
        // usage (2)
        assert_eq!(run(&argv("fit")).unwrap_err().exit_code(), 2);
        assert_eq!(run(&argv("frobnicate")).unwrap_err().exit_code(), 2);
        let train = tmp("codes.csv");
        write_training_csv(&train);
        assert_eq!(
            run(&argv(&format!(
                "fit --input {} --plan p --audit sometimes",
                train.display()
            )))
            .unwrap_err()
            .exit_code(),
            2
        );
        // io (3): plan file absent
        assert_eq!(
            run(&argv("apply --plan /nonexistent --input x --output y"))
                .unwrap_err()
                .exit_code(),
            3
        );
        // data (4): input csv absent
        assert_eq!(
            run(&argv("fit --input /nonexistent.csv --plan p")).unwrap_err().exit_code(),
            4
        );
        // plan (5): malformed plan file
        let bad_plan = tmp("bad.safeplan");
        std::fs::write(&bad_plan, "NOTAPLAN\t9\n").unwrap();
        assert_eq!(
            run(&argv(&format!(
                "apply --plan {} --input {} --output /tmp/x.csv",
                bad_plan.display(),
                train.display()
            )))
            .unwrap_err()
            .exit_code(),
            5
        );
        // pipeline (6): single-class labels are rejected by the audit
        let one_class = tmp("one_class.csv");
        let mut text = String::from("a,label\n");
        for i in 0..50 {
            text.push_str(&format!("{i},0\n"));
        }
        std::fs::write(&one_class, text).unwrap();
        let err = run(&argv(&format!(
            "fit --input {} --plan /tmp/p.safeplan",
            one_class.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(matches!(err, CliError::Safe(_)));
    }

    fn write_valid_csv(path: &std::path::Path) {
        // Same schema and generating process as write_training_csv, but a
        // disjoint index range so it acts as a held-out validation split.
        let mut text = String::from("a,b,noise,label\n");
        for i in 400..600 {
            let a = ((i * 37) % 100) as f64 / 50.0 - 1.0;
            let b = ((i * 61) % 100) as f64 / 50.0 - 1.0;
            let noise = ((i * 17) % 100) as f64;
            let y = (a * b > 0.0) as u8;
            text.push_str(&format!("{a},{b},{noise},{y}\n"));
        }
        std::fs::write(path, text).unwrap();
    }

    /// End-to-end serving path: fit a plan, bundle it into an artifact, then
    /// batch-score the validation CSV through the CLI and check the scores
    /// reproduce the AUC recorded inside the artifact bit-for-bit — at more
    /// than one thread count and batch size.
    #[test]
    fn save_artifact_then_score_reproduces_validation_auc_bitwise() {
        let train = tmp("serve_train.csv");
        let valid = tmp("serve_valid.csv");
        let plan = tmp("serve_plan.safeplan");
        let artifact = tmp("serve_model.safeartifact");
        write_training_csv(&train);
        write_valid_csv(&valid);

        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "save-artifact --plan {} --input {} --valid {} --artifact {} --rounds 25",
            plan.display(),
            train.display(),
            valid.display(),
            artifact.display()
        )))
        .unwrap();

        // The artifact records the validation AUC as hex f64 bits.
        let text = std::fs::read_to_string(&artifact).unwrap();
        let recorded = text
            .lines()
            .find_map(|l| l.strip_prefix("VAL_AUC\t"))
            .expect("artifact must record VAL_AUC");
        let recorded_bits = u64::from_str_radix(recorded.trim(), 16).unwrap();

        for (threads, batch) in [(1usize, 64usize), (4, 7), (2, 1024)] {
            let scores_path = tmp(&format!("serve_scores_{threads}_{batch}.csv"));
            run(&argv(&format!(
                "score --artifact {} --input {} --output {} --threads {threads} --batch-size {batch}",
                artifact.display(),
                valid.display(),
                scores_path.display()
            )))
            .unwrap();

            // CSV cells use shortest round-trippable float formatting, so
            // reading them back recovers the exact score bits.
            let scored = read_csv(&scores_path, None).unwrap();
            let labeled = read_csv(&valid, Some("label")).unwrap();
            let auc = safe_stats::auc::auc(scored.column(0).unwrap(), labeled.labels().unwrap());
            assert_eq!(
                auc.to_bits(),
                recorded_bits,
                "threads={threads} batch={batch}: CLI score AUC diverged from the artifact's"
            );
        }
    }

    #[test]
    fn serving_commands_classify_errors() {
        // Missing artifact file: io (3).
        assert_eq!(
            run(&argv("score --artifact /nonexistent.safeartifact --input x"))
                .unwrap_err()
                .exit_code(),
            3
        );
        // Tampered artifact: plan-file class (5).
        let train = tmp("serve_err_train.csv");
        let plan = tmp("serve_err_plan.safeplan");
        let artifact = tmp("serve_err.safeartifact");
        write_training_csv(&train);
        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "save-artifact --plan {} --input {} --artifact {} --rounds 5",
            plan.display(),
            train.display(),
            artifact.display()
        )))
        .unwrap();
        let mut text = std::fs::read_to_string(&artifact).unwrap();
        text.push_str("TRAILING GARBAGE\n");
        std::fs::write(&artifact, &text).unwrap();
        let err = run(&argv(&format!(
            "score --artifact {} --input {}",
            artifact.display(),
            train.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "tampering must fail checksum: {err}");
        // Bad flags are usage errors (2).
        assert_eq!(
            run(&argv("score --artifact a --input b --batch-size 0")).unwrap_err().exit_code(),
            2
        );
        assert_eq!(
            run(&argv("save-artifact --plan p --input i --artifact a --threads 9999999"))
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    /// Every count-like knob on the daemon commands goes through the same
    /// positive-arg validation as `score --batch-size`: zero is exit 2.
    #[test]
    fn daemon_commands_reject_nonpositive_tuning_flags() {
        for cmd in [
            "serve --artifact a --max-batch 0",
            "serve --artifact a --queue-capacity 0",
            "serve --artifact a --workers 9999999",
            "serve --artifact a --follow", // --follow needs --input
            "bench-serve --requests 0",
            "bench-serve --max-batch 0",
            "bench-serve --workers 0,2",
            "bench-serve --workers banana",
        ] {
            let err = run(&argv(cmd)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "'{cmd}' must be a usage error, got: {err}");
        }
        // A missing artifact with valid flags is io (3), not usage.
        assert_eq!(
            run(&argv("serve --artifact /nonexistent.safeartifact --input reqs"))
                .unwrap_err()
                .exit_code(),
            3
        );
    }

    /// End-to-end daemon session through the CLI: JSONL rows stream through
    /// `serve`, an artifact hot-swap happens mid-stream, and every response
    /// carries the bits of the artifact version stamped on it.
    #[test]
    fn serve_daemon_scores_jsonl_and_hot_swaps_mid_stream() {
        let train = tmp("daemon_train.csv");
        let plan = tmp("daemon_plan.safeplan");
        let artifact_a = tmp("daemon_a.safeartifact");
        let artifact_b = tmp("daemon_b.safeartifact");
        let requests = tmp("daemon_requests.jsonl");
        let responses = tmp("daemon_responses.jsonl");
        write_training_csv(&train);
        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        // Same plan/schema, different boosters -> different score bits.
        for (artifact, rounds) in [(&artifact_a, 25), (&artifact_b, 10)] {
            run(&argv(&format!(
                "save-artifact --plan {} --input {} --artifact {} --rounds {rounds}",
                plan.display(),
                train.display(),
                artifact.display()
            )))
            .unwrap();
        }

        // Three rows under A, swap, three rows under B, one malformed line
        // (must produce an error response, not kill the daemon), shutdown.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![i as f64 / 7.0 - 0.4, 0.3 - i as f64 / 11.0, i as f64])
            .collect();
        let mut req_text = String::new();
        for row in &rows[..3] {
            req_text.push_str(&format!(
                "{{\"values\":[{},{},{}]}}\n",
                row[0], row[1], row[2]
            ));
        }
        req_text.push_str(&format!("{{\"swap\":\"{}\"}}\n", artifact_b.display()));
        for row in &rows[3..] {
            req_text.push_str(&format!(
                "{{\"values\":[{},{},{}]}}\n",
                row[0], row[1], row[2]
            ));
        }
        req_text.push_str("this is not json\n{\"shutdown\":true}\n");
        std::fs::write(&requests, req_text).unwrap();

        run(&argv(&format!(
            "serve --artifact {} --input {} --output {} --workers 2 --max-batch 2",
            artifact_a.display(),
            requests.display(),
            responses.display()
        )))
        .unwrap();

        // Offline replay under each artifact gives the expected bits.
        let registry = safe_ops::registry::OperatorRegistry::standard();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let expect = |path: &std::path::Path| -> Vec<u64> {
            let a = SafeArtifact::load(path).unwrap();
            let scorer = ScorerHandle::new(&a, &registry).unwrap();
            let (scores, _) = scorer.score_rows(&flat, 3).unwrap();
            scores.iter().map(|s| s.to_bits()).collect()
        };
        let bits_a = expect(&artifact_a);
        let bits_b = expect(&artifact_b);

        let text = std::fs::read_to_string(&responses).unwrap();
        let lines: Vec<safe_obs::json::Value> =
            text.lines().map(|l| safe_obs::json::parse(l).unwrap()).collect();
        // 3 responses + swap event + 3 responses + 1 parse error = 8 lines.
        assert_eq!(lines.len(), 8, "unexpected response stream:\n{text}");
        let bits_of = |v: &safe_obs::json::Value| {
            u64::from_str_radix(v.get("score_bits").unwrap().as_str().unwrap(), 16).unwrap()
        };
        for (i, line) in lines[..3].iter().enumerate() {
            assert_eq!(line.get("id").unwrap().as_u64(), Some(i as u64));
            assert_eq!(line.get("version").unwrap().as_u64(), Some(1));
            assert_eq!(bits_of(line), bits_a[i], "pre-swap row {i} bits");
        }
        assert_eq!(lines[3].get("event").unwrap().as_str(), Some("swap"));
        assert_eq!(lines[3].get("version").unwrap().as_u64(), Some(2));
        // The malformed line's error is emitted as soon as it is read —
        // before the still-pending post-swap responses drain at shutdown.
        assert!(
            lines[4].get("error").unwrap().as_str().unwrap().contains("invalid JSON"),
            "malformed line must yield an error response"
        );
        for (i, line) in lines[5..8].iter().enumerate() {
            assert_eq!(line.get("id").unwrap().as_u64(), Some(3 + i as u64));
            assert_eq!(line.get("version").unwrap().as_u64(), Some(2));
            assert_eq!(bits_of(line), bits_b[3 + i], "post-swap row {} bits", 3 + i);
        }
    }

    /// `bench-serve` records the serving_daemon section (one row per worker
    /// count) and passes every other section of the document through.
    #[test]
    fn bench_serve_writes_daemon_section_preserving_others() {
        let train = tmp("bserve_train.csv");
        let plan = tmp("bserve_plan.safeplan");
        let artifact = tmp("bserve.safeartifact");
        let pipeline = tmp("bserve_pipeline.json");
        write_training_csv(&train);
        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        run(&argv(&format!(
            "save-artifact --plan {} --input {} --artifact {} --rounds 5",
            plan.display(),
            train.display(),
            artifact.display()
        )))
        .unwrap();
        std::fs::write(
            &pipeline,
            r#"{"schema_version":2,"parallel":[{"dataset":"toy","threads":1,"secs":1.5,"speedup_vs_serial":1.0}]}"#,
        )
        .unwrap();

        run(&argv(&format!(
            "bench-serve --artifact {} --requests 64 --workers 1,2 --max-batch 8 \
             --dataset cli-test --pipeline-out {}",
            artifact.display(),
            pipeline.display()
        )))
        .unwrap();

        let doc = safe_obs::json::parse(&std::fs::read_to_string(&pipeline).unwrap()).unwrap();
        let rows = doc.get("serving_daemon").unwrap().as_array().unwrap().to_vec();
        assert_eq!(rows.len(), 2);
        for (row, workers) in rows.iter().zip([1u64, 2]) {
            assert_eq!(row.get("dataset").unwrap().as_str(), Some("cli-test"));
            assert_eq!(row.get("workers").unwrap().as_u64(), Some(workers));
            assert_eq!(row.get("max_batch").unwrap().as_u64(), Some(8));
            assert_eq!(row.get("requests").unwrap().as_u64(), Some(64));
            assert!(row.get("secs").unwrap().as_f64().unwrap() > 0.0);
        }
        // The pre-existing parallel section survived the rewrite.
        let parallel = doc.get("parallel").unwrap().as_array().unwrap().to_vec();
        assert_eq!(parallel[0].get("secs").unwrap().as_f64(), Some(1.5));
    }

    /// Crash-safe training through the CLI: a checkpointed fit leaves
    /// snapshots behind; deleting the later ones simulates a crash and
    /// `resume` must rebuild the byte-identical plan.
    #[test]
    fn checkpointed_fit_then_resume_reproduces_the_plan() {
        let train = tmp("ckpt_train.csv");
        let plan = tmp("ckpt_plan.safeplan");
        let ckpt_dir = tmp("ckpt_dir");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        write_training_csv(&train);

        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3 --iterations 2 --checkpoint-dir {}",
            train.display(),
            plan.display(),
            ckpt_dir.display()
        )))
        .unwrap();
        let baseline = std::fs::read_to_string(&plan).unwrap();
        let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&ckpt_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        snapshots.sort();
        assert!(!snapshots.is_empty(), "fit must write checkpoints");

        // Crash simulation: only the first snapshot survives.
        for late in &snapshots[1..] {
            std::fs::remove_file(late).unwrap();
        }
        let resumed_plan = tmp("ckpt_plan_resumed.safeplan");
        run(&argv(&format!(
            "resume --input {} --plan {} --seed 3 --iterations 2 --checkpoint-dir {}",
            train.display(),
            resumed_plan.display(),
            ckpt_dir.display()
        )))
        .unwrap();
        assert_eq!(
            baseline,
            std::fs::read_to_string(&resumed_plan).unwrap(),
            "resumed plan must be byte-identical"
        );
    }

    #[test]
    fn resume_classifies_checkpoint_failures() {
        let train = tmp("ckpt_err_train.csv");
        let plan = tmp("ckpt_err_plan.safeplan");
        write_training_csv(&train);
        // Missing --checkpoint-dir: usage (2).
        assert_eq!(
            run(&argv(&format!(
                "resume --input {} --plan {}",
                train.display(),
                plan.display()
            )))
            .unwrap_err()
            .exit_code(),
            2
        );
        // Nonexistent directory: checkpoint class (7).
        assert_eq!(
            run(&argv(&format!(
                "resume --input {} --plan {} --checkpoint-dir /nonexistent/ckpts",
                train.display(),
                plan.display()
            )))
            .unwrap_err()
            .exit_code(),
            7
        );
        // A directory whose only candidate is corrupt: quarantined, then
        // unrecoverable (7).
        let bad_dir = tmp("ckpt_err_dir");
        let _ = std::fs::remove_dir_all(&bad_dir);
        std::fs::create_dir_all(&bad_dir).unwrap();
        std::fs::write(bad_dir.join("ckpt-000001.safeckpt"), "SAFECKPT\t1\ngarbage\n").unwrap();
        let err = run(&argv(&format!(
            "resume --input {} --plan {} --checkpoint-dir {}",
            train.display(),
            plan.display(),
            bad_dir.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
        assert!(
            bad_dir.join("ckpt-000001.safeckpt.corrupt").exists(),
            "corrupt candidate must be quarantined"
        );
    }

    #[test]
    fn help_prints() {
        run(&argv("help")).unwrap();
        run(&[]).unwrap();
    }

    #[test]
    fn apply_with_missing_plan_errors() {
        assert!(run(&argv("apply --plan /nonexistent --input x --output y")).is_err());
    }
}
