//! Subcommand implementations.

use std::time::Instant;

use safe_core::explain::{explain_plan, explanation_report};
use safe_core::plan::FeaturePlan;
use safe_core::{Safe, SafeConfig};
use safe_data::csv::{read_csv, write_csv};
use safe_ops::registry::OperatorRegistry;

use crate::args::Args;

const USAGE: &str = "\
safe-cli — SAFE automatic feature engineering (ICDE 2020 reproduction)

USAGE:
  safe-cli fit     --input train.csv [--valid valid.csv] --plan out.safeplan
                   [--label label] [--gamma 30] [--alpha 0.1] [--theta 0.8]
                   [--iterations 1] [--multiplier 2] [--seed 0] [--full-ops]
  safe-cli apply   --plan plan.safeplan --input data.csv --output out.csv
                   [--label label]
  safe-cli explain --plan plan.safeplan [--input data.csv] [--label label]
  safe-cli score   --input data.csv [--label label]
";

/// Dispatch the parsed command line.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_deref() {
        Some("fit") => fit(&args),
        Some("apply") => apply(&args),
        Some("explain") => explain(&args),
        Some("score") => score(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

fn registry(args: &Args) -> OperatorRegistry {
    if args.switch("full-ops") {
        OperatorRegistry::standard()
    } else {
        OperatorRegistry::arithmetic()
    }
}

fn fit(args: &Args) -> Result<(), String> {
    args.ensure_known(&[
        "input", "valid", "plan", "label", "gamma", "alpha", "theta",
        "iterations", "multiplier", "seed", "full-ops",
    ])?;
    let input = args.require("input")?;
    let plan_path = args.require("plan")?;
    let label = args.get("label").unwrap_or("label");

    let train = read_csv(input, Some(label)).map_err(|e| e.to_string())?;
    let valid = match args.get("valid") {
        Some(path) => Some(read_csv(path, Some(label)).map_err(|e| e.to_string())?),
        None => None,
    };
    let config = SafeConfig {
        gamma: args.get_or("gamma", 30usize)?,
        alpha: args.get_or("alpha", 0.1f64)?,
        theta: args.get_or("theta", 0.8f64)?,
        n_iterations: args.get_or("iterations", 1usize)?,
        output_multiplier: args.get_or("multiplier", 2usize)?,
        seed: args.get_or("seed", 0u64)?,
        operators: registry(args),
        ..SafeConfig::paper()
    };

    eprintln!(
        "fitting SAFE on {} ({} rows x {} features)...",
        input,
        train.n_rows(),
        train.n_cols()
    );
    let start = Instant::now();
    let outcome = Safe::new(config)
        .fit(&train, valid.as_ref())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "done in {:.2}s: {} features selected ({} generated)",
        start.elapsed().as_secs_f64(),
        outcome.plan.outputs.len(),
        outcome.plan.n_generated_outputs()
    );
    for r in &outcome.history {
        eprintln!(
            "  iter {}: {} combos -> {} generated -> {} after IV -> {} after redundancy -> {} selected",
            r.iteration, r.n_combinations_kept, r.n_generated, r.n_after_iv,
            r.n_after_redundancy, r.n_selected
        );
    }
    std::fs::write(plan_path, outcome.plan.to_text()).map_err(|e| e.to_string())?;
    eprintln!("plan written to {plan_path}");
    Ok(())
}

fn load_plan(path: &str) -> Result<FeaturePlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    FeaturePlan::from_text(&text).map_err(|e| e.to_string())
}

fn apply(args: &Args) -> Result<(), String> {
    args.ensure_known(&["plan", "input", "output", "label", "full-ops"])?;
    let plan = load_plan(args.require("plan")?)?;
    let input = args.require("input")?;
    let output = args.require("output")?;
    let label = args.get("label").unwrap_or("label");

    // Label column optional at apply time (inference data is unlabeled).
    let ds = read_csv(input, Some(label))
        .or_else(|_| read_csv(input, None))
        .map_err(|e| e.to_string())?;
    let compiled = plan
        .compile(&OperatorRegistry::standard())
        .map_err(|e| e.to_string())?;
    let out = compiled.apply(&ds).map_err(|e| e.to_string())?;
    write_csv(&out, output).map_err(|e| e.to_string())?;
    eprintln!(
        "{}: {} rows x {} engineered features -> {}",
        input,
        out.n_rows(),
        out.n_cols(),
        output
    );
    Ok(())
}

fn explain(args: &Args) -> Result<(), String> {
    args.ensure_known(&["plan", "input", "label"])?;
    let plan = load_plan(args.require("plan")?)?;
    let reference = match args.get("input") {
        Some(path) => {
            let label = args.get("label").unwrap_or("label");
            Some(read_csv(path, Some(label)).map_err(|e| e.to_string())?)
        }
        None => None,
    };
    let explanations = explain_plan(&plan, reference.as_ref());
    print!("{}", explanation_report(&explanations));
    Ok(())
}

fn score(args: &Args) -> Result<(), String> {
    args.ensure_known(&["input", "label"])?;
    let input = args.require("input")?;
    let label = args.get("label").unwrap_or("label");
    let ds = read_csv(input, Some(label)).map_err(|e| e.to_string())?;
    let labels = ds
        .labels()
        .ok_or_else(|| "score requires a label column".to_string())?;
    let mut rows: Vec<(String, f64)> = (0..ds.n_cols())
        .map(|f| {
            let iv = safe_stats::iv::information_value(
                ds.column(f).expect("in range"),
                labels,
                10,
            )
            .unwrap_or(0.0);
            (ds.meta()[f].name.clone(), iv)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(7).max(7);
    println!("{:<name_w$}  {:>8}  band", "feature", "IV");
    for (name, iv) in rows {
        println!(
            "{name:<name_w$}  {iv:>8.4}  {}",
            safe_stats::iv::IvBand::of(iv).description()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("safe_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_training_csv(path: &std::path::Path) {
        // Label depends on a*b: SAFE should find an (a,b) feature.
        let mut text = String::from("a,b,noise,label\n");
        for i in 0..400 {
            let a = ((i * 37) % 100) as f64 / 50.0 - 1.0;
            let b = ((i * 61) % 100) as f64 / 50.0 - 1.0;
            let noise = ((i * 17) % 100) as f64;
            let y = (a * b > 0.0) as u8;
            text.push_str(&format!("{a},{b},{noise},{y}\n"));
        }
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn fit_apply_explain_round_trip() {
        let train = tmp("train.csv");
        let plan = tmp("plan.safeplan");
        let out = tmp("out.csv");
        write_training_csv(&train);

        run(&argv(&format!(
            "fit --input {} --plan {} --seed 3",
            train.display(),
            plan.display()
        )))
        .unwrap();
        assert!(plan.exists());

        run(&argv(&format!(
            "apply --plan {} --input {} --output {}",
            plan.display(),
            train.display(),
            out.display()
        )))
        .unwrap();
        let transformed = read_csv(&out, Some("label")).unwrap();
        assert!(transformed.n_cols() >= 1);
        assert_eq!(transformed.n_rows(), 400);

        run(&argv(&format!("explain --plan {}", plan.display()))).unwrap();
    }

    #[test]
    fn score_runs() {
        let train = tmp("score.csv");
        write_training_csv(&train);
        run(&argv(&format!("score --input {}", train.display()))).unwrap();
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("fit --bogus 1")).is_err());
        assert!(run(&argv("fit")).unwrap_err().contains("--input"));
    }

    #[test]
    fn help_prints() {
        run(&argv("help")).unwrap();
        run(&[]).unwrap();
    }

    #[test]
    fn apply_with_missing_plan_errors() {
        assert!(run(&argv("apply --plan /nonexistent --input x --output y")).is_err());
    }
}
