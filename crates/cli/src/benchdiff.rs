//! `safe-cli bench-diff old.json new.json` — the bench regression gate.
//!
//! Compares two `BENCH_pipeline.json` documents section by section and
//! fails (exit code 8) when any timing metric regressed by more than the
//! `--fail-over` percentage. Each known section contributes one timing
//! metric per row, keyed by the row's identity columns:
//!
//! | section      | row key                                  | metric        |
//! |--------------|------------------------------------------|---------------|
//! | `stages`     | dataset, iteration, stage                | `millis`      |
//! | `parallel`   | dataset, threads                         | `secs`        |
//! | `serving`    | dataset, method, threads, batch_size     | `secs`        |
//! | `serving_daemon` | dataset, workers, max_batch          | `secs`        |
//! | `cache`      | dataset, iteration                       | `warm_micros` |
//! | `resilience` | dataset, iteration                      | `ckpt_micros` |
//! | `selection`  | dataset, mode                            | `combined_millis` |
//!
//! Rows present in only one document are reported but never fail the gate
//! (benchmarks grow sections over time). Unknown sections are ignored, so
//! the gate keeps working against documents written by a newer harness
//! (`schema_version` forward compatibility). Tiny absolute timings sit
//! below a per-section noise floor and never fail the gate either: a 0.2ms
//! stage doubling to 0.4ms is scheduler jitter, not a regression.

use safe_obs::json::{self, Value};

use crate::error::CliError;

/// Default `--fail-over` threshold: a metric may grow by up to this many
/// percent before the gate trips.
pub const DEFAULT_FAIL_OVER_PCT: f64 = 20.0;

/// One compared metric: the same row key in both documents.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Section the row came from.
    pub section: &'static str,
    /// Rendered row key, e.g. `dataset=toy iteration=0 stage=gbm-train`.
    pub key: String,
    /// Metric field name (`millis`, `secs`, `warm_micros`, `ckpt_micros`).
    pub metric: &'static str,
    /// Value in the old (baseline) document.
    pub old: f64,
    /// Value in the new (candidate) document.
    pub new: f64,
    /// `100 · (new − old) / old`; `0` when old is zero.
    pub delta_pct: f64,
    /// True when this row trips the gate.
    pub regressed: bool,
}

/// The full comparison: every matched row plus bookkeeping about rows that
/// could not be matched.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Matched rows, in section then key order.
    pub rows: Vec<DiffRow>,
    /// Row keys present only in the old document.
    pub only_old: usize,
    /// Row keys present only in the new document.
    pub only_new: usize,
}

impl DiffReport {
    /// Rows that tripped the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regressed)
    }
}

/// Per-section comparison recipe: identity columns, the timing metric, and
/// the absolute noise floor below which growth never counts (in the
/// metric's own unit).
struct SectionSpec {
    section: &'static str,
    key_fields: &'static [&'static str],
    metric: &'static str,
    noise_floor: f64,
}

const SECTIONS: &[SectionSpec] = &[
    SectionSpec {
        section: "stages",
        key_fields: &["dataset", "iteration", "stage"],
        metric: "millis",
        noise_floor: 5.0,
    },
    SectionSpec {
        section: "parallel",
        key_fields: &["dataset", "threads"],
        metric: "secs",
        noise_floor: 0.05,
    },
    SectionSpec {
        section: "serving",
        key_fields: &["dataset", "method", "threads", "batch_size"],
        metric: "secs",
        noise_floor: 0.05,
    },
    SectionSpec {
        // Gated on wall secs: the row also carries log2-bucketed latency
        // quantiles, but bucket upper bounds jump 2x between buckets and
        // would trip (or hide behind) any percentage threshold.
        section: "serving_daemon",
        key_fields: &["dataset", "workers", "max_batch"],
        metric: "secs",
        noise_floor: 0.05,
    },
    SectionSpec {
        section: "cache",
        key_fields: &["dataset", "iteration"],
        metric: "warm_micros",
        noise_floor: 5_000.0,
    },
    SectionSpec {
        section: "resilience",
        key_fields: &["dataset", "iteration"],
        metric: "ckpt_micros",
        noise_floor: 5_000.0,
    },
    SectionSpec {
        section: "selection",
        key_fields: &["dataset", "mode"],
        metric: "combined_millis",
        noise_floor: 5.0,
    },
];

/// Render a row's identity columns as a stable `k=v` key.
fn row_key(row: &Value, fields: &[&str]) -> Option<String> {
    let mut parts = Vec::with_capacity(fields.len());
    for field in fields {
        let v = row.get(field)?;
        let rendered = match v.as_str() {
            Some(s) => s.to_string(),
            None => {
                let n = v.as_f64()?;
                if n.fract() == 0.0 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
        };
        parts.push(format!("{field}={rendered}"));
    }
    Some(parts.join(" "))
}

/// Extract `(key, metric)` pairs for one section of one document. A
/// missing or garbled section yields no pairs (the gate only compares what
/// both documents actually carry).
fn section_metrics(doc: &Value, spec: &SectionSpec) -> Vec<(String, f64)> {
    let Some(rows) = doc.get(spec.section).and_then(Value::as_array) else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let key = row_key(row, spec.key_fields)?;
            let value = row.get(spec.metric)?.as_f64()?;
            Some((key, value))
        })
        .collect()
}

/// Compare two parsed `BENCH_pipeline.json` documents. `fail_over_pct` is
/// the allowed growth; a matched metric regresses when it grows past the
/// threshold AND its new value clears the section's absolute noise floor.
pub fn diff_documents(old: &Value, new: &Value, fail_over_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for spec in SECTIONS {
        let old_rows = section_metrics(old, spec);
        let new_rows = section_metrics(new, spec);
        for (key, old_v) in &old_rows {
            let Some((_, new_v)) = new_rows.iter().find(|(k, _)| k == key) else {
                report.only_old += 1;
                continue;
            };
            let delta_pct = if *old_v > 0.0 {
                100.0 * (new_v - old_v) / old_v
            } else {
                0.0
            };
            let regressed = delta_pct > fail_over_pct && *new_v > spec.noise_floor;
            report.rows.push(DiffRow {
                section: spec.section,
                key: key.clone(),
                metric: spec.metric,
                old: *old_v,
                new: *new_v,
                delta_pct,
                regressed,
            });
        }
        report.only_new += new_rows
            .iter()
            .filter(|(k, _)| !old_rows.iter().any(|(ok, _)| ok == k))
            .count();
    }
    report
}

/// Load, compare, print, and gate. Returns `CliError::BenchRegression`
/// (exit 8) when any metric tripped the gate.
pub fn run(old_path: &str, new_path: &str, fail_over_pct: f64) -> Result<(), CliError> {
    let load = |path: &str| -> Result<Value, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        json::parse(&text).map_err(|e| CliError::Data(format!("{path}: invalid JSON: {e}")))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let report = diff_documents(&old, &new, fail_over_pct);

    for row in &report.rows {
        let mark = if row.regressed { " REGRESSED" } else { "" };
        println!(
            "{:<10} {:<55} {:>12} {:>12.3} -> {:>12.3} ({:+.1}%){mark}",
            row.section, row.key, row.metric, row.old, row.new, row.delta_pct
        );
    }
    if report.only_old > 0 || report.only_new > 0 {
        eprintln!(
            "note: {} row(s) only in {old_path}, {} only in {new_path} (not compared)",
            report.only_old, report.only_new
        );
    }
    let regressions: Vec<&DiffRow> = report.regressions().collect();
    if regressions.is_empty() {
        println!(
            "bench-diff: {} metric(s) compared, none regressed past {fail_over_pct}%",
            report.rows.len()
        );
        return Ok(());
    }
    let detail: Vec<String> = regressions
        .iter()
        .map(|r| {
            format!(
                "{} [{}] {}: {:.3} -> {:.3} ({:+.1}% > {fail_over_pct}%)",
                r.section, r.key, r.metric, r.old, r.new, r.delta_pct
            )
        })
        .collect();
    Err(CliError::BenchRegression(format!(
        "{} of {} metric(s) regressed past {fail_over_pct}%:\n  {}",
        regressions.len(),
        report.rows.len(),
        detail.join("\n  ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Value {
        json::parse(text).unwrap()
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let text = r#"{"stages":[{"dataset":"toy","iteration":0,"stage":"gbm-train","millis":120.0}],
                       "parallel":[{"dataset":"toy","threads":4,"secs":2.5}]}"#;
        let report = diff_documents(&doc(text), &doc(text), 20.0);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.regressions().count(), 0);
        assert_eq!(report.only_old + report.only_new, 0);
    }

    #[test]
    fn regression_past_threshold_is_flagged() {
        let old = doc(r#"{"stages":[{"dataset":"toy","iteration":0,"stage":"gbm-train","millis":100.0}]}"#);
        let new = doc(r#"{"stages":[{"dataset":"toy","iteration":0,"stage":"gbm-train","millis":150.0}]}"#);
        let report = diff_documents(&old, &new, 20.0);
        let regs: Vec<&DiffRow> = report.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert!((regs[0].delta_pct - 50.0).abs() < 1e-9);
        // A looser threshold lets the same growth through.
        assert_eq!(diff_documents(&old, &new, 60.0).regressions().count(), 0);
    }

    #[test]
    fn noise_floor_suppresses_tiny_timings() {
        // 0.2ms -> 0.6ms is a 200% jump but far below the 5ms stage floor.
        let old = doc(r#"{"stages":[{"dataset":"toy","iteration":0,"stage":"iv-filter","millis":0.2}]}"#);
        let new = doc(r#"{"stages":[{"dataset":"toy","iteration":0,"stage":"iv-filter","millis":0.6}]}"#);
        assert_eq!(diff_documents(&old, &new, 20.0).regressions().count(), 0);
    }

    #[test]
    fn unmatched_rows_and_unknown_sections_never_fail() {
        let old = doc(r#"{"stages":[{"dataset":"a","iteration":0,"stage":"s","millis":50.0}],
                          "future_section":[{"x":1}]}"#);
        let new = doc(r#"{"stages":[{"dataset":"b","iteration":0,"stage":"s","millis":5000.0}],
                          "other_future":[{"y":2}]}"#);
        let report = diff_documents(&old, &new, 20.0);
        assert_eq!(report.rows.len(), 0);
        assert_eq!(report.only_old, 1);
        assert_eq!(report.only_new, 1);
        assert_eq!(report.regressions().count(), 0);
    }

    #[test]
    fn serving_daemon_section_is_gated_on_secs() {
        // secs regressed 50% -> trips; the p99 column regressing alone
        // would not (quantiles are informational, not gated).
        let old = doc(
            r#"{"serving_daemon":[{"dataset":"synth-daemon","workers":2,"max_batch":256,
                "secs":2.0,"request_p99_us":512}]}"#,
        );
        let new = doc(
            r#"{"serving_daemon":[{"dataset":"synth-daemon","workers":2,"max_batch":256,
                "secs":3.0,"request_p99_us":4096}]}"#,
        );
        let report = diff_documents(&old, &new, 20.0);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].metric, "secs");
        assert_eq!(report.regressions().count(), 1);
        // Same quantile blow-up with flat secs: nothing trips.
        let flat = doc(
            r#"{"serving_daemon":[{"dataset":"synth-daemon","workers":2,"max_batch":256,
                "secs":2.0,"request_p99_us":4096}]}"#,
        );
        assert_eq!(diff_documents(&old, &flat, 20.0).regressions().count(), 0);
    }

    #[test]
    fn selection_section_is_gated() {
        let old = doc(r#"{"selection":[{"dataset":"gina","mode":"staged","combined_millis":500.0}]}"#);
        let new = doc(r#"{"selection":[{"dataset":"gina","mode":"staged","combined_millis":900.0}]}"#);
        let report = diff_documents(&old, &new, 20.0);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.regressions().count(), 1);
    }

    #[test]
    fn improvement_never_trips_the_gate() {
        let old = doc(r#"{"parallel":[{"dataset":"toy","threads":1,"secs":10.0}]}"#);
        let new = doc(r#"{"parallel":[{"dataset":"toy","threads":1,"secs":3.0}]}"#);
        let report = diff_documents(&old, &new, 20.0);
        assert_eq!(report.regressions().count(), 0);
        assert!(report.rows[0].delta_pct < 0.0);
    }
}
