//! `safe-cli serve` and `safe-cli bench-serve` — the long-lived scoring
//! daemon from the command line.
//!
//! `serve` wraps [`safe_serve::ScoreService`] in a JSONL request loop:
//! one JSON object per input line, one JSON object per output line, in
//! submission order. Three record shapes are accepted:
//!
//! ```text
//! {"values":[0.1,-0.2,0.3]}            score one row (optional "id")
//! {"swap":"model-v2.safeartifact"}     hot-swap the artifact, zero downtime
//! {"shutdown":true}                    stop reading and drain
//! ```
//!
//! Responses carry the score both as a JSON number and as the exact
//! IEEE-754 bit pattern (`score_bits`, hex), plus the artifact `version`
//! that produced it — the differential suites compare bits, never decimal
//! renderings. Before a swap is applied every pending response is drained,
//! so the emitted stream is cleanly partitioned: every response before a
//! `{"event":"swap",...}` line was scored by the pre-swap artifact.
//!
//! `bench-serve` drives a service configuration sweep (worker counts ×
//! one coalescing cap) with single-row submissions, asserts the streamed
//! bits match the offline [`ScorerHandle`] exactly, and records one
//! `serving_daemon` row per configuration into `BENCH_pipeline.json`
//! (other sections pass through untouched).

use std::collections::VecDeque;
use std::io::{BufRead, Read, Write};
use std::time::Instant;

use safe_bench::{
    bench_pipeline_path, pipeline_json, read_pipeline_document, PipelineDocument,
    ServingDaemonRow, TablePrinter,
};
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::dataset::Dataset;
use safe_gbm::GbmConfig;
use safe_obs::json::{self, escape, Value};
use safe_ops::registry::OperatorRegistry;
use safe_serve::{
    SafeArtifact, ScoreService, ScorerHandle, ServiceConfig, Ticket, DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_CAPACITY,
};
use safe_stats::par::Parallelism;

use crate::args::Args;
use crate::error::CliError;

/// Drain-and-print bound: when this many responses are pending, the oldest
/// is forced out before another submission is accepted. Keeps memory flat
/// on unbounded streams while preserving submission-order output.
const PENDING_FLUSH_BOUND: usize = 1024;

/// Poll interval for `--follow` mode, milliseconds.
const FOLLOW_POLL_MS: u64 = 50;

/// `safe-cli serve --artifact model.safeartifact [--input req.jsonl]
/// [--output resp.jsonl] [--follow] [--workers N] [--max-batch N]
/// [--queue-capacity N]`
pub fn serve(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "artifact",
        "input",
        "output",
        "follow",
        "workers",
        "max-batch",
        "queue-capacity",
    ])
    .map_err(CliError::Usage)?;
    let artifact_path = args.require("artifact").map_err(CliError::Usage)?;
    let workers = args.get_or("workers", 0usize).map_err(CliError::Usage)?;
    Parallelism::new(workers)
        .validate()
        .map_err(CliError::Usage)?;
    let max_batch = args
        .get_positive("max-batch", DEFAULT_MAX_BATCH)
        .map_err(CliError::Usage)?;
    let queue_capacity = args
        .get_positive("queue-capacity", DEFAULT_QUEUE_CAPACITY)
        .map_err(CliError::Usage)?;
    if args.switch("follow") && args.get("input").is_none() {
        return Err(CliError::Usage(
            "flag --follow requires --input FILE (stdin cannot be re-polled)".into(),
        ));
    }

    let registry = OperatorRegistry::standard();
    let artifact = SafeArtifact::load(artifact_path)?;
    let service = ScoreService::start(
        &artifact,
        &registry,
        ServiceConfig {
            workers,
            max_batch,
            queue_capacity,
            ..ServiceConfig::default()
        },
    )?;

    let out: Box<dyn Write> = match args.get("output") {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut session = ServeSession {
        service: &service,
        registry: &registry,
        out,
        pending: VecDeque::new(),
        next_auto_id: 0,
    };

    if args.switch("follow") {
        // Tail the request file: poll for appended bytes, carry partial
        // lines across polls, stop only on a shutdown record.
        let path = args.require("input").map_err(CliError::Usage)?;
        let mut offset = 0u64;
        let mut remainder = String::new();
        'follow: loop {
            let chunk = read_from(path, offset)?;
            if chunk.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(FOLLOW_POLL_MS));
                continue;
            }
            offset += chunk.len() as u64;
            remainder.push_str(&chunk);
            while let Some(nl) = remainder.find('\n') {
                let line: String = remainder.drain(..=nl).collect();
                if !session.handle_line(line.trim())? {
                    break 'follow;
                }
            }
        }
    } else {
        let reader: Box<dyn BufRead> = match args.get("input") {
            Some(path) => Box::new(std::io::BufReader::new(
                std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?,
            )),
            None => Box::new(std::io::BufReader::new(std::io::stdin())),
        };
        for line in reader.lines() {
            let line = line.map_err(|e| CliError::Io(format!("reading requests: {e}")))?;
            if !session.handle_line(line.trim())? {
                break;
            }
        }
    }

    session.drain_pending()?;
    drop(session);
    let report = service.shutdown();
    eprintln!(
        "serve: {} scored, {} failed, {} batches ({} workers, max-batch {}), \
         {} swap(s), final version {}, p50/p99 request latency {}/{} us, {:.0} rows/s",
        report.completed,
        report.failed,
        report.batches,
        report.workers,
        report.max_batch,
        report.swaps,
        report.version,
        report.request_p50_us,
        report.request_p99_us,
        report.rows_per_sec,
    );
    Ok(())
}

/// Read whatever `path` holds past `offset` (possibly nothing).
fn read_from(path: &str, offset: u64) -> Result<String, CliError> {
    let mut f =
        std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    std::io::Seek::seek(&mut f, std::io::SeekFrom::Start(offset))
        .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let mut buf = String::new();
    f.read_to_string(&mut buf)
        .map_err(|e| CliError::Data(format!("{path}: request stream is not UTF-8: {e}")))?;
    Ok(buf)
}

/// One parsed request line.
#[derive(Debug)]
enum Request {
    Row { id: Option<u64>, values: Vec<f64> },
    Swap(String),
    Shutdown,
}

fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request must be a JSON object".into());
    }
    if matches!(v.get("shutdown"), Some(Value::Bool(true))) {
        return Ok(Request::Shutdown);
    }
    if let Some(swap) = v.get("swap") {
        let path = swap
            .as_str()
            .ok_or("'swap' must be a string artifact path")?;
        return Ok(Request::Swap(path.to_string()));
    }
    let values = v
        .get("values")
        .ok_or("missing 'values' (or 'swap'/'shutdown')")?
        .as_array()
        .ok_or("'values' must be an array of numbers")?
        .iter()
        .map(|x| x.as_f64().ok_or("'values' must contain only numbers"))
        .collect::<Result<Vec<f64>, &str>>()?;
    let id = v.get("id").and_then(Value::as_u64);
    Ok(Request::Row { id, values })
}

/// The request-loop state: the service, the in-order pending responses,
/// and the output stream.
struct ServeSession<'a, W: Write> {
    service: &'a ScoreService,
    registry: &'a OperatorRegistry,
    out: W,
    /// `(display id, ticket)` in submission order.
    pending: VecDeque<(u64, Ticket)>,
    /// Assigned to requests that carry no `"id"` field: the 0-based line
    /// ordinal among row requests.
    next_auto_id: u64,
}

impl<W: Write> ServeSession<'_, W> {
    /// Process one request line. Returns `false` when the stream should
    /// stop (shutdown record). Malformed lines and per-request failures
    /// produce an `{"error":...}` response line, never a process exit —
    /// a daemon does not die because one client sent garbage.
    fn handle_line(&mut self, line: &str) -> Result<bool, CliError> {
        if line.is_empty() {
            return Ok(true);
        }
        match parse_request(line) {
            Err(msg) => self.emit(&format!("{{\"error\":{}}}", escape(&msg)))?,
            Ok(Request::Shutdown) => return Ok(false),
            Ok(Request::Swap(path)) => {
                // Drain first: every already-accepted request is scored
                // (and printed) under the pre-swap artifact, so the output
                // stream is partitioned by the swap event line.
                self.drain_pending()?;
                match SafeArtifact::load(&path)
                    .and_then(|next| self.service.swap_artifact(&next, self.registry))
                {
                    Ok(version) => self.emit(&format!(
                        "{{\"event\":\"swap\",\"artifact\":{},\"version\":{version}}}",
                        escape(&path)
                    ))?,
                    Err(e) => self.emit(&format!(
                        "{{\"event\":\"swap-failed\",\"artifact\":{},\"error\":{}}}",
                        escape(&path),
                        escape(&e.to_string())
                    ))?,
                }
            }
            Ok(Request::Row { id, values }) => {
                let id = id.unwrap_or(self.next_auto_id);
                self.next_auto_id += 1;
                while self.pending.len() >= PENDING_FLUSH_BOUND {
                    self.flush_one()?;
                }
                match self.service.submit(values) {
                    Ok(ticket) => self.pending.push_back((id, ticket)),
                    Err(e) => self.emit(&format!(
                        "{{\"id\":{id},\"error\":{}}}",
                        escape(&e.to_string())
                    ))?,
                }
            }
        }
        Ok(true)
    }

    /// Wait for the oldest pending response and print it.
    fn flush_one(&mut self) -> Result<(), CliError> {
        let Some((id, ticket)) = self.pending.pop_front() else {
            return Ok(());
        };
        let line = match ticket.wait() {
            Ok(r) => format!(
                "{{\"id\":{id},\"score\":{},\"score_bits\":\"{:016x}\",\"version\":{},\
                 \"queue_wait_us\":{},\"total_us\":{}}}",
                fmt_score(r.score),
                r.score.to_bits(),
                r.version,
                r.queue_wait_us,
                r.total_us
            ),
            Err(e) => format!("{{\"id\":{id},\"error\":{}}}", escape(&e.to_string())),
        };
        self.emit(&line)
    }

    fn drain_pending(&mut self) -> Result<(), CliError> {
        while !self.pending.is_empty() {
            self.flush_one()?;
        }
        Ok(())
    }

    /// Write one response line and flush: a consumer tailing the response
    /// stream (the point of a daemon) must see each line as it lands.
    fn emit(&mut self, line: &str) -> Result<(), CliError> {
        writeln!(self.out, "{line}")
            .and_then(|()| self.out.flush())
            .map_err(|e| CliError::Io(format!("writing response: {e}")))
    }
}

/// Render a score as a JSON number. `score_bits` is the authoritative
/// value; this rendering uses Rust's shortest-roundtrip formatting, and
/// non-finite scores (impossible from a trained booster, but the format
/// must stay valid JSON) fall back to `null`.
fn fmt_score(score: f64) -> String {
    if score.is_finite() {
        format!("{score}")
    } else {
        "null".into()
    }
}

/// `safe-cli bench-serve [--artifact model.safeartifact] [--requests N]
/// [--workers 1,2,4] [--max-batch N] [--seed N] [--dataset NAME]
/// [--pipeline-out PATH]`
pub fn bench_serve(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "artifact",
        "requests",
        "workers",
        "max-batch",
        "seed",
        "dataset",
        "pipeline-out",
    ])
    .map_err(CliError::Usage)?;
    let requests: u64 = args
        .get_positive("requests", 20_000u64)
        .map_err(CliError::Usage)?;
    let max_batch = args
        .get_positive("max-batch", DEFAULT_MAX_BATCH)
        .map_err(CliError::Usage)?;
    let seed: u64 = args.get_or("seed", 42).map_err(CliError::Usage)?;
    let dataset = args.get("dataset").unwrap_or("synth-daemon");
    let worker_counts: Vec<usize> = args
        .get("workers")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|tok| match tok.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(CliError::Usage(format!(
                "flag --workers: '{tok}' is not a positive worker count"
            ))),
        })
        .collect::<Result<_, _>>()?;

    let registry = OperatorRegistry::standard();
    let artifact = match args.get("artifact") {
        Some(path) => SafeArtifact::load(path)?,
        None => synth_artifact(seed)?,
    };
    let n_inputs = artifact.input_schema.len();
    let rows = scoring_rows(seed, requests as usize, n_inputs);

    // Offline reference under the same artifact: the daemon must reproduce
    // these bits at every worker count and coalescing pattern.
    let offline = ScorerHandle::new(&artifact, &registry)?;
    let (reference, _) = offline.score_rows(&rows, n_inputs)?;

    println!(
        "bench-serve: {requests} single-row requests x {n_inputs} inputs, \
         max-batch {max_batch}, dataset '{dataset}'\n"
    );
    let table = TablePrinter::new(
        &["workers", "secs", "rows/s", "coalesce", "q-p99 us", "req-p99 us", "bits"],
        &[7, 8, 10, 8, 9, 10, 9],
    );

    let mut section = Vec::with_capacity(worker_counts.len());
    for &workers in &worker_counts {
        let service = ScoreService::start(
            &artifact,
            &registry,
            ServiceConfig {
                workers,
                max_batch,
                ..ServiceConfig::default()
            },
        )?;
        let start = Instant::now();
        let mut tickets = Vec::with_capacity(requests as usize);
        for row in rows.chunks_exact(n_inputs) {
            tickets.push(service.submit(row.to_vec())?);
        }
        let mut mismatches = 0usize;
        for (ticket, expected) in tickets.into_iter().zip(&reference) {
            let response = ticket.wait()?;
            if response.score.to_bits() != expected.to_bits() {
                mismatches += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let report = service.shutdown();
        if mismatches > 0 {
            return Err(CliError::Data(format!(
                "bench-serve differential failed: {mismatches} of {requests} streamed \
                 scores diverged from the offline scorer at workers={workers}"
            )));
        }
        let rows_per_sec = requests as f64 / secs;
        let coalesce = report.completed as f64 / report.batches.max(1) as f64;
        table.row(&[
            &workers.to_string(),
            &format!("{secs:.3}"),
            &format!("{rows_per_sec:.0}"),
            &format!("{coalesce:.1}"),
            &report.queue_p99_us.to_string(),
            &report.request_p99_us.to_string(),
            "identical",
        ]);
        section.push(ServingDaemonRow {
            dataset: dataset.into(),
            // The configured count, not the resolved pool size: row keys
            // must be stable across machines for bench-diff to match them.
            workers,
            max_batch,
            requests,
            secs,
            rows_per_sec,
            queue_p50_us: report.queue_p50_us,
            queue_p99_us: report.queue_p99_us,
            request_p50_us: report.request_p50_us,
            request_p99_us: report.request_p99_us,
        });
    }

    let out_path = args
        .get("pipeline-out")
        .map(str::to_string)
        .unwrap_or_else(bench_pipeline_path);
    // This command owns `serving_daemon`; every other section (and unknown
    // future ones) passes through untouched.
    let existing = read_pipeline_document(&out_path);
    std::fs::write(
        &out_path,
        pipeline_json(&PipelineDocument { serving_daemon: section, ..existing }),
    )
    .map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
    println!("\nserving_daemon rows -> {out_path}");
    Ok(())
}

const SYNTH_INPUTS: usize = 6;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// Deterministic request stream: `n` rows of `n_inputs` values each.
fn scoring_rows(seed: u64, n: usize, n_inputs: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x51afd36d) | 1;
    (0..n * n_inputs).map(|_| lcg(&mut state)).collect()
}

/// The default bench artifact: six raw inputs through one step of every
/// arithmetic operator (10 scoring features), boosted on 2 000 synthetic
/// rows — the same shape the `serving_throughput` harness measures.
fn synth_artifact(seed: u64) -> Result<SafeArtifact, CliError> {
    let input_names: Vec<String> = (0..SYNTH_INPUTS).map(|i| format!("x{i}")).collect();
    let step = |name: &str, op: &str, a: usize, b: usize| PlanStep {
        name: name.into(),
        op: op.into(),
        parents: vec![format!("x{a}"), format!("x{b}")],
        params: vec![],
    };
    let steps = vec![
        step("mul(x0,x1)", "mul", 0, 1),
        step("div(x2,x3)", "div", 2, 3),
        step("add(x4,x5)", "add", 4, 5),
        step("sub(x0,x2)", "sub", 0, 2),
    ];
    let mut outputs = input_names.clone();
    outputs.extend(steps.iter().map(|s| s.name.clone()));
    let plan = FeaturePlan { input_names, steps, outputs };

    let n = 2_000;
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut cols = vec![Vec::with_capacity(n); SYNTH_INPUTS];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..SYNTH_INPUTS).map(|_| lcg(&mut state)).collect();
        let signal = row[0] * row[1] - 0.5 * row[2] + 0.3 * (row[4] + row[5]);
        for (col, v) in cols.iter_mut().zip(&row) {
            col.push(*v);
        }
        labels.push(u8::from(signal > 0.0));
    }
    let names = (0..SYNTH_INPUTS).map(|i| format!("x{i}")).collect();
    let train = Dataset::from_columns(names, cols, Some(labels))
        .map_err(|e| CliError::Data(format!("synthetic training data: {e}")))?;
    Ok(SafeArtifact::train(
        &plan,
        &OperatorRegistry::standard(),
        &train,
        None,
        &GbmConfig::classifier(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_classifies_record_shapes() {
        match parse_request(r#"{"id":7,"values":[1.0,-2.5]}"#).unwrap() {
            Request::Row { id, values } => {
                assert_eq!(id, Some(7));
                assert_eq!(values, vec![1.0, -2.5]);
            }
            _ => panic!("expected a row request"),
        }
        match parse_request(r#"{"values":[0.5]}"#).unwrap() {
            Request::Row { id, .. } => assert_eq!(id, None),
            _ => panic!("expected a row request"),
        }
        assert!(matches!(
            parse_request(r#"{"swap":"m.safeartifact"}"#).unwrap(),
            Request::Swap(p) if p == "m.safeartifact"
        ));
        assert!(matches!(
            parse_request(r#"{"shutdown":true}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn parse_request_rejects_garbage_with_reasons() {
        assert!(parse_request("not json").unwrap_err().contains("invalid JSON"));
        assert!(parse_request("[1,2]").unwrap_err().contains("object"));
        assert!(parse_request("{}").unwrap_err().contains("values"));
        assert!(parse_request(r#"{"values":"x"}"#).unwrap_err().contains("array"));
        assert!(parse_request(r#"{"values":[1,"x"]}"#)
            .unwrap_err()
            .contains("numbers"));
        assert!(parse_request(r#"{"swap":3}"#).unwrap_err().contains("string"));
        // shutdown:false is not a shutdown — and has no values either.
        assert!(parse_request(r#"{"shutdown":false}"#).is_err());
    }

    #[test]
    fn score_rendering_is_valid_json() {
        assert_eq!(fmt_score(0.5), "0.5");
        assert_eq!(fmt_score(f64::NAN), "null");
        assert_eq!(fmt_score(f64::INFINITY), "null");
    }
}
