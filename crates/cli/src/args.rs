//! Dependency-free `--flag value` argument parsing with typed accessors and
//! unknown-flag detection.

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--name value` pairs, and any extra
/// positional operands (most commands take none; `bench-diff` takes two).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: Option<String>,
    flags: HashMap<String, String>,
    /// Bare `--flag` switches with no value.
    switches: Vec<String>,
    /// Positional operands after the subcommand. Commands that take none
    /// reject them in [`Args::ensure_known`]; commands that do take them
    /// declare the count via [`Args::ensure_known_with_positionals`].
    positionals: Vec<String>,
}

impl Args {
    /// Parse an argv slice (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(name) = token.strip_prefix("--") {
                // A flag followed by a value, unless the next token is
                // another flag or absent (then it is a switch).
                match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        out.flags.insert(name.to_string(), v.clone());
                        i += 2;
                    }
                    _ => {
                        out.switches.push(name.to_string());
                        i += 1;
                    }
                }
            } else if out.command.is_none() {
                out.command = Some(token.clone());
                i += 1;
            } else {
                out.positionals.push(token.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional operands after the subcommand.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Typed flag with default that must be strictly positive. The shared
    /// validation path for every count-like tuning knob (`--batch-size`,
    /// `--max-batch`, `--queue-capacity`, `--requests`…): `0` is a usage
    /// error, phrased identically everywhere.
    pub fn get_positive<T>(&self, name: &str, default: T) -> Result<T, String>
    where
        T: std::str::FromStr + Default + PartialOrd,
    {
        let v = self.get_or(name, default)?;
        if v > T::default() {
            Ok(v)
        } else {
            Err(format!("flag --{name}: must be positive"))
        }
    }

    /// True when the bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Reject flags outside the allowed set (catches typos early) and any
    /// positional operand — the common case: most commands take none.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), String> {
        self.ensure_known_with_positionals(allowed, 0)
    }

    /// Like [`Args::ensure_known`], but the command takes exactly
    /// `n_positionals` operands after the subcommand.
    pub fn ensure_known_with_positionals(
        &self,
        allowed: &[&str],
        n_positionals: usize,
    ) -> Result<(), String> {
        for name in self.flags.keys().chain(self.switches.iter()) {
            if !allowed.contains(&name.as_str()) {
                return Err(format!("unknown flag --{name}"));
            }
        }
        if self.positionals.len() != n_positionals {
            return Err(match (n_positionals, self.positionals.first()) {
                (0, Some(extra)) => format!("unexpected positional argument '{extra}'"),
                _ => format!(
                    "expected {n_positionals} positional argument(s), got {}",
                    self.positionals.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = Args::parse(&argv("fit --input x.csv --seed 7 --full-ops")).unwrap();
        assert_eq!(a.command.as_deref(), Some("fit"));
        assert_eq!(a.get("input"), Some("x.csv"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.switch("full-ops"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn required_and_typed_errors() {
        let a = Args::parse(&argv("fit --gamma banana")).unwrap();
        assert!(a.require("input").unwrap_err().contains("--input"));
        assert!(a.get_or("gamma", 30usize).is_err());
    }

    #[test]
    fn positive_flags_reject_zero() {
        let a = Args::parse(&argv("serve --max-batch 0 --queue-capacity 7")).unwrap();
        let err = a.get_positive("max-batch", 256usize).unwrap_err();
        assert!(err.contains("--max-batch"), "{err}");
        assert!(err.contains("must be positive"), "{err}");
        assert_eq!(a.get_positive("queue-capacity", 4096usize).unwrap(), 7);
        // Absent flag falls back to the default without complaint.
        assert_eq!(a.get_positive("batch-size", 1024usize).unwrap(), 1024);
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&argv("fit --inptu x.csv")).unwrap();
        assert!(a.ensure_known(&["input"]).unwrap_err().contains("inptu"));
    }

    #[test]
    fn stray_positionals_rejected() {
        // Parsing collects operands; validation rejects them for commands
        // that take none and enforces the count for commands that do.
        let a = Args::parse(&argv("fit extra")).unwrap();
        assert_eq!(a.positionals(), ["extra"]);
        assert!(a.ensure_known(&[]).unwrap_err().contains("extra"));

        let d = Args::parse(&argv("bench-diff old.json new.json --fail-over 20")).unwrap();
        assert_eq!(d.positionals(), ["old.json", "new.json"]);
        d.ensure_known_with_positionals(&["fail-over"], 2).unwrap();
        assert!(d.ensure_known_with_positionals(&["fail-over"], 1).is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(&argv("explain --plan p --verbose")).unwrap();
        assert_eq!(a.get("plan"), Some("p"));
        assert!(a.switch("verbose"));
    }
}
