//! Binary operators: the four basic arithmetic operations used throughout
//! the paper's experiments, order statistics, and the logical family.
//!
//! Logical operators "act on two boolean features" (Section III); numeric
//! inputs are coerced with `x != 0` truthiness, NaN operands yield NaN.

use crate::stateless_op;

// --- arithmetic -----------------------------------------------------------

stateless_op!(Add, "add", 2, commutative: true, |v| v[0] + v[1]);
stateless_op!(Sub, "sub", 2, commutative: false, |v| v[0] - v[1]);
stateless_op!(Mul, "mul", 2, commutative: true, |v| v[0] * v[1]);
stateless_op!(Div, "div", 2, commutative: false, |v| {
    if v[1] == 0.0 { f64::NAN } else { v[0] / v[1] }
});

// --- order statistics -----------------------------------------------------

stateless_op!(Min2, "min", 2, commutative: true, |v| v[0].min(v[1]));
stateless_op!(Max2, "max", 2, commutative: true, |v| v[0].max(v[1]));
stateless_op!(Mean2, "mean", 2, commutative: true, |v| 0.5 * (v[0] + v[1]));

// --- logical --------------------------------------------------------------

#[inline]
fn logic(v: &[f64], f: impl Fn(bool, bool) -> bool) -> f64 {
    if v[0].is_nan() || v[1].is_nan() {
        return f64::NAN;
    }
    f(v[0] != 0.0, v[1] != 0.0) as u8 as f64
}

stateless_op!(And, "and", 2, commutative: true, |v| logic(v, |a, b| a && b));
stateless_op!(Or, "or", 2, commutative: true, |v| logic(v, |a, b| a || b));
stateless_op!(Nand, "nand", 2, commutative: true, |v| logic(v, |a, b| !(a && b)));
stateless_op!(Nor, "nor", 2, commutative: true, |v| logic(v, |a, b| !(a || b)));
stateless_op!(Implies, "implies", 2, commutative: false, |v| logic(v, |a, b| !a || b));
stateless_op!(ConverseImplies, "converse_implies", 2, commutative: false, |v| logic(v, |a, b| a || !b));
stateless_op!(Xnor, "xnor", 2, commutative: true, |v| logic(v, |a, b| a == b));
stateless_op!(Xor, "xor", 2, commutative: true, |v| logic(v, |a, b| a != b));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operator;

    fn apply2(op: &dyn Operator, a: f64, b: f64) -> f64 {
        let ca = [a];
        let cb = [b];
        op.fit(&[&ca, &cb], None).unwrap().apply_row(&[a, b])
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(apply2(&Add, 2.0, 3.0), 5.0);
        assert_eq!(apply2(&Sub, 2.0, 3.0), -1.0);
        assert_eq!(apply2(&Mul, 2.0, 3.0), 6.0);
        assert_eq!(apply2(&Div, 6.0, 3.0), 2.0);
    }

    #[test]
    fn division_by_zero_is_missing() {
        assert!(apply2(&Div, 1.0, 0.0).is_nan());
        assert!(apply2(&Div, 0.0, 0.0).is_nan());
    }

    #[test]
    fn commutativity_flags_match_math() {
        assert!(Add.commutative());
        assert!(Mul.commutative());
        assert!(!Sub.commutative());
        assert!(!Div.commutative());
        assert!(!Implies.commutative());
        assert!(Xor.commutative());
    }

    #[test]
    fn order_stats() {
        assert_eq!(apply2(&Min2, 2.0, -3.0), -3.0);
        assert_eq!(apply2(&Max2, 2.0, -3.0), 2.0);
        assert_eq!(apply2(&Mean2, 2.0, 4.0), 3.0);
    }

    #[test]
    fn logical_truth_tables() {
        // (a, b, and, or, nand, nor, implies, converse, xnor, xor)
        let rows = [
            (0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0),
            (0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0),
            (1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0),
            (1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0),
        ];
        for (a, b, and, or, nand, nor, imp, conv, xnor, xor) in rows {
            assert_eq!(apply2(&And, a, b), and);
            assert_eq!(apply2(&Or, a, b), or);
            assert_eq!(apply2(&Nand, a, b), nand);
            assert_eq!(apply2(&Nor, a, b), nor);
            assert_eq!(apply2(&Implies, a, b), imp);
            assert_eq!(apply2(&ConverseImplies, a, b), conv);
            assert_eq!(apply2(&Xnor, a, b), xnor);
            assert_eq!(apply2(&Xor, a, b), xor);
        }
    }

    #[test]
    fn logical_coerces_nonzero_to_true() {
        assert_eq!(apply2(&And, 5.0, -2.0), 1.0);
        assert_eq!(apply2(&Or, 0.0, 0.01), 1.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(apply2(&Add, f64::NAN, 1.0).is_nan());
        assert!(apply2(&And, f64::NAN, 1.0).is_nan());
        assert!(apply2(&Xor, 1.0, f64::NAN).is_nan());
    }

    #[test]
    fn batch_apply_matches_rowwise() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.0, -1.0];
        let fitted = Div.fit(&[&a, &b], None).unwrap();
        let batch = fitted.apply(&[&a, &b]);
        assert_eq!(batch[0], 0.25);
        assert!(batch[1].is_nan());
        assert_eq!(batch[2], -3.0);
    }
}
