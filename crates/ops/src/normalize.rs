//! Stateful unary normalization: min-max and z-score (Section III's
//! "normalization" family). Statistics are fit on the *training* column and
//! frozen, so applying the plan to validation/test/online data cannot leak.

use crate::op::{FittedOperator, OpError, Operator};
use safe_stats::describe::describe;

/// Min-max normalization to `[0, 1]` using training min/max.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMaxNorm;

/// Frozen min-max parameters.
#[derive(Debug, Clone)]
pub struct FittedMinMax {
    min: f64,
    range: f64,
}

impl Operator for MinMaxNorm {
    fn name(&self) -> &'static str {
        "minmax"
    }
    fn arity(&self) -> usize {
        1
    }
    fn commutative(&self) -> bool {
        false
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        _labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        let s = describe(inputs[0]);
        let (min, range) = if s.n == 0 || s.max == s.min {
            (0.0, 0.0)
        } else {
            (s.min, s.max - s.min)
        };
        Ok(Box::new(FittedMinMax { min, range }))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        if params.len() != 2 {
            return Err(OpError::BadParams(format!(
                "minmax expects 2 params, got {}",
                params.len()
            )));
        }
        Ok(Box::new(FittedMinMax {
            min: params[0],
            range: params[1],
        }))
    }
}

impl FittedOperator for FittedMinMax {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let x = inputs[0];
        if x.is_nan() {
            return f64::NAN;
        }
        if self.range == 0.0 {
            // Degenerate training column: everything maps to the midpoint.
            return 0.5;
        }
        (x - self.min) / self.range
    }
    fn params(&self) -> Vec<f64> {
        vec![self.min, self.range]
    }
}

/// Z-score standardization using training mean/std.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZScore;

/// Frozen z-score parameters.
#[derive(Debug, Clone)]
pub struct FittedZScore {
    mean: f64,
    std: f64,
}

impl Operator for ZScore {
    fn name(&self) -> &'static str {
        "zscore"
    }
    fn arity(&self) -> usize {
        1
    }
    fn commutative(&self) -> bool {
        false
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        _labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        let s = describe(inputs[0]);
        Ok(Box::new(FittedZScore {
            mean: s.mean,
            std: s.std,
        }))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        if params.len() != 2 {
            return Err(OpError::BadParams(format!(
                "zscore expects 2 params, got {}",
                params.len()
            )));
        }
        Ok(Box::new(FittedZScore {
            mean: params[0],
            std: params[1],
        }))
    }
}

impl FittedOperator for FittedZScore {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let x = inputs[0];
        if x.is_nan() {
            return f64::NAN;
        }
        if self.std == 0.0 {
            return 0.0;
        }
        (x - self.mean) / self.std
    }
    fn params(&self) -> Vec<f64> {
        vec![self.mean, self.std]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_training_range_to_unit() {
        let col = [2.0, 4.0, 6.0, 10.0];
        let f = MinMaxNorm.fit(&[&col], None).unwrap();
        let out = f.apply(&[&col]);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[3], 1.0);
        assert!((out[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn minmax_extrapolates_outside_training_range() {
        // Test data beyond the training range must extrapolate, not clamp —
        // the frozen transform is affine.
        let col = [0.0, 10.0];
        let f = MinMaxNorm.fit(&[&col], None).unwrap();
        assert_eq!(f.apply_row(&[20.0]), 2.0);
        assert_eq!(f.apply_row(&[-10.0]), -1.0);
    }

    #[test]
    fn minmax_constant_column_is_midpoint() {
        let col = [7.0; 5];
        let f = MinMaxNorm.fit(&[&col], None).unwrap();
        assert_eq!(f.apply_row(&[7.0]), 0.5);
        assert_eq!(f.apply_row(&[100.0]), 0.5);
    }

    #[test]
    fn zscore_standardizes() {
        let col = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = ZScore.fit(&[&col], None).unwrap();
        let out = f.apply(&[&col]);
        let mean: f64 = out.iter().sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-12);
        assert!((out[4] - (5.0 - 3.0) / (2.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn zscore_constant_column_is_zero() {
        let col = [3.0; 4];
        let f = ZScore.fit(&[&col], None).unwrap();
        assert_eq!(f.apply_row(&[3.0]), 0.0);
    }

    #[test]
    fn params_round_trip() {
        let col = [1.0, 5.0, 9.0];
        for op in [&MinMaxNorm as &dyn Operator, &ZScore] {
            let fitted = op.fit(&[&col], None).unwrap();
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            for x in [-3.0, 0.0, 5.0, 42.0] {
                assert_eq!(fitted.apply_row(&[x]), rebuilt.apply_row(&[x]), "{}", op.name());
            }
        }
    }

    #[test]
    fn nan_propagates() {
        let col = [1.0, 2.0];
        assert!(MinMaxNorm.fit(&[&col], None).unwrap().apply_row(&[f64::NAN]).is_nan());
        assert!(ZScore.fit(&[&col], None).unwrap().apply_row(&[f64::NAN]).is_nan());
    }

    #[test]
    fn fit_ignores_missing_values() {
        let col = [1.0, f64::NAN, 3.0];
        let f = MinMaxNorm.fit(&[&col], None).unwrap();
        assert_eq!(f.apply_row(&[3.0]), 1.0);
    }

    #[test]
    fn bad_params_rejected() {
        assert!(MinMaxNorm.rehydrate(&[1.0]).is_err());
        assert!(ZScore.rehydrate(&[1.0, 2.0, 3.0]).is_err());
    }
}
