//! Ternary and 3-ary operators (Section III): the conditional `a ? b : c`
//! and the multi-input MAX / MIN / MEAN reductions at arity 3.

use crate::stateless_op;

stateless_op!(Conditional, "cond", 3, commutative: false, |v| {
    if v[0].is_nan() {
        f64::NAN
    } else if v[0] != 0.0 {
        v[1]
    } else {
        v[2]
    }
});

stateless_op!(Max3, "max3", 3, commutative: true, |v| {
    if v.iter().any(|x| x.is_nan()) { f64::NAN } else { v[0].max(v[1]).max(v[2]) }
});
stateless_op!(Min3, "min3", 3, commutative: true, |v| {
    if v.iter().any(|x| x.is_nan()) { f64::NAN } else { v[0].min(v[1]).min(v[2]) }
});
stateless_op!(Mean3, "mean3", 3, commutative: true, |v| (v[0] + v[1] + v[2]) / 3.0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operator;

    fn apply3(op: &dyn Operator, a: f64, b: f64, c: f64) -> f64 {
        let (ca, cb, cc) = ([a], [b], [c]);
        op.fit(&[&ca, &cb, &cc], None).unwrap().apply_row(&[a, b, c])
    }

    #[test]
    fn conditional_selects_branch() {
        assert_eq!(apply3(&Conditional, 1.0, 10.0, 20.0), 10.0);
        assert_eq!(apply3(&Conditional, 0.0, 10.0, 20.0), 20.0);
        assert_eq!(apply3(&Conditional, -3.0, 10.0, 20.0), 10.0, "nonzero is truthy");
    }

    #[test]
    fn conditional_nan_condition_is_missing() {
        assert!(apply3(&Conditional, f64::NAN, 1.0, 2.0).is_nan());
        // NaN in the *taken* branch flows through; untaken branch irrelevant.
        assert!(apply3(&Conditional, 1.0, f64::NAN, 2.0).is_nan());
        assert_eq!(apply3(&Conditional, 0.0, f64::NAN, 2.0), 2.0);
    }

    #[test]
    fn three_way_reductions() {
        assert_eq!(apply3(&Max3, 1.0, 5.0, 3.0), 5.0);
        assert_eq!(apply3(&Min3, 1.0, 5.0, 3.0), 1.0);
        assert_eq!(apply3(&Mean3, 1.0, 5.0, 3.0), 3.0);
    }

    #[test]
    fn reductions_propagate_nan() {
        assert!(apply3(&Max3, 1.0, f64::NAN, 3.0).is_nan());
        assert!(apply3(&Min3, f64::NAN, 2.0, 3.0).is_nan());
        assert!(apply3(&Mean3, 1.0, 2.0, f64::NAN).is_nan());
    }

    #[test]
    fn arity_is_three() {
        assert_eq!(Conditional.arity(), 3);
        assert_eq!(Max3.arity(), 3);
    }
}
