//! SQL-style binary operators (Section III): GroupByThenMax, GroupByThenMin,
//! GroupByThenAvg, GroupByThenStdev, GroupByThenCount.
//!
//! `group_then_*(key, value)` groups training records by the (discretized)
//! key feature, aggregates the value feature per group, and emits each
//! record's group aggregate. The group table is frozen at fit time, making
//! the operator a pure lookup at inference (real-time safe) and leak-free on
//! test data.
//!
//! Keys are discretized to at most 32 equal-frequency groups (exact groups
//! when the key has ≤ 32 distinct values); NaN keys form their own group.

use crate::op::{FittedOperator, OpError, Operator};
use safe_data::binning::{BinEdges, BinStrategy};

/// Which aggregate a group-by operator computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Maximum of the value feature within the group.
    Max,
    /// Minimum of the value feature within the group.
    Min,
    /// Mean of the value feature within the group.
    Avg,
    /// Population standard deviation within the group.
    Stdev,
    /// Number of records in the group.
    Count,
}

impl Aggregate {
    fn compute(self, values: &[f64]) -> f64 {
        if self == Aggregate::Count {
            return values.len() as f64;
        }
        let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return f64::NAN;
        }
        match self {
            Aggregate::Max => clean.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Min => clean.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Avg => clean.iter().sum::<f64>() / clean.len() as f64,
            Aggregate::Stdev => {
                let mean = clean.iter().sum::<f64>() / clean.len() as f64;
                let var =
                    clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / clean.len() as f64;
                var.sqrt()
            }
            // Handled by the early return above; repeating it here keeps the
            // match exhaustive without an unreachable panic.
            Aggregate::Count => values.len() as f64,
        }
    }
}

/// Maximum number of key groups.
const MAX_GROUPS: usize = 32;

/// A `GroupByThen<aggregate>` operator.
#[derive(Debug, Clone, Copy)]
pub struct GroupByThen {
    aggregate: Aggregate,
    name: &'static str,
}

/// GroupByThenMax.
pub const GROUP_THEN_MAX: GroupByThen = GroupByThen { aggregate: Aggregate::Max, name: "group_then_max" };
/// GroupByThenMin.
pub const GROUP_THEN_MIN: GroupByThen = GroupByThen { aggregate: Aggregate::Min, name: "group_then_min" };
/// GroupByThenAvg.
pub const GROUP_THEN_AVG: GroupByThen = GroupByThen { aggregate: Aggregate::Avg, name: "group_then_avg" };
/// GroupByThenStdev.
pub const GROUP_THEN_STDEV: GroupByThen = GroupByThen { aggregate: Aggregate::Stdev, name: "group_then_stdev" };
/// GroupByThenCount.
pub const GROUP_THEN_COUNT: GroupByThen = GroupByThen { aggregate: Aggregate::Count, name: "group_then_count" };

/// Frozen group table.
#[derive(Debug, Clone)]
pub struct FittedGroupBy {
    /// Interior cut points discretizing the key.
    cuts: Vec<f64>,
    /// Aggregate per key group (`cuts.len() + 1` entries).
    table: Vec<f64>,
    /// Aggregate of the NaN-key group.
    missing: f64,
}

impl FittedGroupBy {
    fn group_of(&self, key: f64) -> Option<usize> {
        if key.is_nan() {
            None
        } else {
            Some(self.cuts.partition_point(|&c| c < key))
        }
    }
}

impl FittedOperator for FittedGroupBy {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        match self.group_of(inputs[0]) {
            Some(g) => self.table[g],
            None => self.missing,
        }
    }
    fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(2 + self.cuts.len() + self.table.len());
        p.push(self.cuts.len() as f64);
        p.extend_from_slice(&self.cuts);
        p.extend_from_slice(&self.table);
        p.push(self.missing);
        p
    }
}

impl Operator for GroupByThen {
    fn name(&self) -> &'static str {
        self.name
    }
    fn arity(&self) -> usize {
        2
    }
    fn commutative(&self) -> bool {
        false // key and value roles differ
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        _labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        let (keys, values) = (inputs[0], inputs[1]);
        let edges = BinEdges::fit(keys, MAX_GROUPS, BinStrategy::EqualFrequency)
            .map_err(|e| OpError::BadParams(e.to_string()))?;
        let cuts = edges.cuts().to_vec();
        let n_groups = cuts.len() + 1;
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
        let mut missing_bucket: Vec<f64> = Vec::new();
        for (&k, &v) in keys.iter().zip(values) {
            if k.is_nan() {
                missing_bucket.push(v);
            } else {
                buckets[cuts.partition_point(|&c| c < k)].push(v);
            }
        }
        let table: Vec<f64> = buckets.iter().map(|b| self.aggregate.compute(b)).collect();
        let missing = self.aggregate.compute(&missing_bucket);
        Ok(Box::new(FittedGroupBy { cuts, table, missing }))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        let bad = || OpError::BadParams(format!("{}: malformed params", self.name));
        let n_cuts = *params.first().ok_or_else(bad)? as usize;
        // layout: [n_cuts, cuts.., table (n_cuts+1).., missing]
        if params.len() != 1 + n_cuts + (n_cuts + 1) + 1 {
            return Err(bad());
        }
        let cuts = params[1..1 + n_cuts].to_vec();
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(OpError::BadParams("cuts must be increasing".into()));
        }
        let table = params[1 + n_cuts..1 + n_cuts + n_cuts + 1].to_vec();
        let missing = params[params.len() - 1];
        Ok(Box::new(FittedGroupBy { cuts, table, missing }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys in {0,1,2}, values chosen so the per-group stats are obvious.
    fn fixture() -> (Vec<f64>, Vec<f64>) {
        let keys = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let values = vec![1.0, 3.0, 10.0, 20.0, 5.0, 5.0];
        (keys, values)
    }

    #[test]
    fn avg_per_group() {
        let (k, v) = fixture();
        let f = GROUP_THEN_AVG.fit(&[&k, &v], None).unwrap();
        assert_eq!(f.apply_row(&[0.0, 999.0]), 2.0);
        assert_eq!(f.apply_row(&[1.0, 999.0]), 15.0);
        assert_eq!(f.apply_row(&[2.0, 999.0]), 5.0);
    }

    #[test]
    fn max_min_count_stdev() {
        let (k, v) = fixture();
        assert_eq!(GROUP_THEN_MAX.fit(&[&k, &v], None).unwrap().apply_row(&[1.0, 0.0]), 20.0);
        assert_eq!(GROUP_THEN_MIN.fit(&[&k, &v], None).unwrap().apply_row(&[1.0, 0.0]), 10.0);
        assert_eq!(GROUP_THEN_COUNT.fit(&[&k, &v], None).unwrap().apply_row(&[1.0, 0.0]), 2.0);
        assert_eq!(GROUP_THEN_STDEV.fit(&[&k, &v], None).unwrap().apply_row(&[1.0, 0.0]), 5.0);
        assert_eq!(GROUP_THEN_STDEV.fit(&[&k, &v], None).unwrap().apply_row(&[2.0, 0.0]), 0.0);
    }

    #[test]
    fn value_argument_is_ignored_at_apply_time() {
        // The aggregate is frozen — the second operand only matters at fit.
        let (k, v) = fixture();
        let f = GROUP_THEN_AVG.fit(&[&k, &v], None).unwrap();
        assert_eq!(f.apply_row(&[0.0, -1e9]), f.apply_row(&[0.0, 1e9]));
    }

    #[test]
    fn nan_keys_get_their_own_group() {
        let keys = vec![0.0, 0.0, f64::NAN, f64::NAN];
        let values = vec![1.0, 1.0, 100.0, 200.0];
        let f = GROUP_THEN_AVG.fit(&[&keys, &values], None).unwrap();
        assert_eq!(f.apply_row(&[f64::NAN, 0.0]), 150.0);
        assert_eq!(f.apply_row(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn missing_values_within_group_are_skipped() {
        let keys = vec![0.0, 0.0, 0.0];
        let values = vec![1.0, f64::NAN, 3.0];
        let f = GROUP_THEN_AVG.fit(&[&keys, &values], None).unwrap();
        assert_eq!(f.apply_row(&[0.0, 0.0]), 2.0);
        // Count still counts the record with the missing value.
        let c = GROUP_THEN_COUNT.fit(&[&keys, &values], None).unwrap();
        assert_eq!(c.apply_row(&[0.0, 0.0]), 3.0);
    }

    #[test]
    fn continuous_keys_are_bucketed() {
        let keys: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let f = GROUP_THEN_AVG.fit(&[&keys, &values], None).unwrap();
        // Close keys share a bucket; far keys do not share the aggregate.
        assert_eq!(f.apply_row(&[3.0, 0.0]), f.apply_row(&[4.0, 0.0]));
        assert!(f.apply_row(&[10.0, 0.0]) < f.apply_row(&[990.0, 0.0]));
    }

    #[test]
    fn params_round_trip() {
        let (k, v) = fixture();
        for op in [
            GROUP_THEN_MAX,
            GROUP_THEN_MIN,
            GROUP_THEN_AVG,
            GROUP_THEN_STDEV,
            GROUP_THEN_COUNT,
        ] {
            let fitted = op.fit(&[&k, &v], None).unwrap();
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            for key in [0.0, 1.0, 2.0, 5.0, f64::NAN] {
                let a = fitted.apply_row(&[key, 0.0]);
                let b = rebuilt.apply_row(&[key, 0.0]);
                assert!(a == b || (a.is_nan() && b.is_nan()), "{} key={key}", op.name());
            }
        }
    }

    #[test]
    fn malformed_params_rejected() {
        assert!(GROUP_THEN_AVG.rehydrate(&[]).is_err());
        assert!(GROUP_THEN_AVG.rehydrate(&[2.0, 1.0]).is_err());
        // Decreasing cuts.
        assert!(GROUP_THEN_AVG
            .rehydrate(&[2.0, 5.0, 1.0, 0.0, 0.0, 0.0, 0.0])
            .is_err());
    }
}
