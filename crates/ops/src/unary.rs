//! Unary mathematical transformations (Section III): log, sigmoid, square,
//! square root, tanh, round, plus abs / reciprocal / negate.
//!
//! Domain conventions (industrial data is signed and dirty, so every
//! operator must be total over finite inputs):
//! - `log` and `sqrt` are applied sign-symmetrically: `sign(x)·ln(1+|x|)` and
//!   `sign(x)·√|x|`. This preserves ordering on negatives instead of
//!   emitting NaN for half the column.
//! - `reciprocal` maps 0 to NaN (missing), matching `÷`'s division-by-zero
//!   convention.
//! - NaN inputs propagate to NaN outputs.

use crate::stateless_op;

#[inline]
fn signed(x: f64, f: impl Fn(f64) -> f64) -> f64 {
    if x.is_nan() {
        f64::NAN
    } else {
        x.signum() * f(x.abs())
    }
}

stateless_op!(Log, "log", 1, commutative: false, |v| signed(v[0], |a| (1.0 + a).ln()));
stateless_op!(Sqrt, "sqrt", 1, commutative: false, |v| signed(v[0], |a| a.sqrt()));
stateless_op!(Square, "square", 1, commutative: false, |v| v[0] * v[0]);
stateless_op!(Sigmoid, "sigmoid", 1, commutative: false, |v| {
    let x = v[0];
    if x >= 0.0 { 1.0 / (1.0 + (-x).exp()) } else { let e = x.exp(); e / (1.0 + e) }
});
stateless_op!(Tanh, "tanh", 1, commutative: false, |v| v[0].tanh());
stateless_op!(Round, "round", 1, commutative: false, |v| v[0].round());
stateless_op!(Abs, "abs", 1, commutative: false, |v| v[0].abs());
stateless_op!(Reciprocal, "reciprocal", 1, commutative: false, |v| {
    if v[0] == 0.0 { f64::NAN } else { 1.0 / v[0] }
});
stateless_op!(Negate, "negate", 1, commutative: false, |v| -v[0]);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operator;

    fn apply_one(op: &dyn Operator, x: f64) -> f64 {
        let col = [x];
        op.fit(&[&col], None).unwrap().apply_row(&[x])
    }

    #[test]
    fn log_is_sign_symmetric_and_monotone() {
        assert_eq!(apply_one(&Log, 0.0), 0.0);
        let pos = apply_one(&Log, std::f64::consts::E - 1.0);
        assert!((pos - 1.0).abs() < 1e-12);
        assert!((apply_one(&Log, -5.0) + apply_one(&Log, 5.0)).abs() < 1e-12);
        assert!(apply_one(&Log, 10.0) < apply_one(&Log, 100.0));
    }

    #[test]
    fn sqrt_handles_negatives() {
        assert_eq!(apply_one(&Sqrt, 9.0), 3.0);
        assert_eq!(apply_one(&Sqrt, -9.0), -3.0);
        assert_eq!(apply_one(&Sqrt, 0.0), 0.0);
    }

    #[test]
    fn square_and_round() {
        assert_eq!(apply_one(&Square, -3.0), 9.0);
        assert_eq!(apply_one(&Round, 2.5), 3.0);
        assert_eq!(apply_one(&Round, -1.2), -1.0);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!((apply_one(&Sigmoid, 0.0) - 0.5).abs() < 1e-15);
        assert!(apply_one(&Sigmoid, 100.0) <= 1.0);
        assert!(apply_one(&Sigmoid, -100.0) >= 0.0);
    }

    #[test]
    fn tanh_abs_negate() {
        assert!((apply_one(&Tanh, 0.0)).abs() < 1e-15);
        assert_eq!(apply_one(&Abs, -4.0), 4.0);
        assert_eq!(apply_one(&Negate, 4.0), -4.0);
    }

    #[test]
    fn reciprocal_zero_is_missing() {
        assert!(apply_one(&Reciprocal, 0.0).is_nan());
        assert_eq!(apply_one(&Reciprocal, 4.0), 0.25);
    }

    #[test]
    fn nan_propagates_through_all() {
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(Log),
            Box::new(Sqrt),
            Box::new(Square),
            Box::new(Sigmoid),
            Box::new(Tanh),
            Box::new(Round),
            Box::new(Abs),
            Box::new(Reciprocal),
            Box::new(Negate),
        ];
        for op in &ops {
            assert!(apply_one(op.as_ref(), f64::NAN).is_nan(), "{}", op.name());
        }
    }

    #[test]
    fn all_unary_have_arity_one() {
        assert_eq!(Log.arity(), 1);
        assert_eq!(Reciprocal.arity(), 1);
    }
}
