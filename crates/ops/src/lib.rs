//! # safe-ops — the operator set `O` of the paper (Section III)
//!
//! SAFE generates features by applying *operators* to combinations of parent
//! features. The paper's framework requirement is explicit: "an applicable
//! automatic feature engineering algorithm framework should not limit
//! operators and new operators should be easily added" — so this crate is an
//! open registry around two traits:
//!
//! - [`Operator`] — a named, fixed-arity feature constructor that can **fit**
//!   state on training columns (normalization statistics, discretization
//!   edges, group-by tables…),
//! - [`FittedOperator`] — the frozen result, applying to whole columns
//!   (batch generation) or single rows (the paper's *real-time inference*
//!   requirement), and serializing its parameters so a feature plan can be
//!   stored and replayed.
//!
//! Implemented operator families, mirroring Section III:
//!
//! | family | operators |
//! |---|---|
//! | unary math | log, sqrt, square, sigmoid, tanh, round, abs, reciprocal, negate |
//! | unary normalization | min-max, z-score |
//! | unary discretization | equal-width, equal-frequency, ChiMerge |
//! | unary supervised encoding | WoE (Weight of Evidence) |
//! | binary arithmetic | `+`, `−`, `×`, `÷` (the four used in all experiments) |
//! | binary order stats | min, max, mean |
//! | binary logical | ∧, ∨, ↑ (NAND), ↓ (NOR), → , ← , ↔ (XNOR), ⊕ (XOR) |
//! | binary SQL | GroupByThenMax/Min/Avg/Stdev/Count |
//! | binary regression | ridge_pred, ridge_res (AutoLearn-style, \[24\]) |
//! | ternary | conditional `a ? b : c`, 3-ary max/min/mean |
//!
//! Missing values propagate: any NaN operand yields NaN (except the logical
//! family, which treats NaN as false-with-NaN-output, and group-by, which
//! routes NaN keys to a dedicated group).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod binary;
pub mod discretize;
pub mod groupby;
pub mod normalize;
pub mod op;
pub mod regression;
pub mod registry;
pub mod ternary;
pub mod unary;
pub mod woe;

pub use op::{FittedOperator, OpError, Operator, StatelessFitted};
pub use registry::OperatorRegistry;
