//! Supervised Weight-of-Evidence encoding — the scorecard-industry unary
//! operator that SAFE's IV machinery implies: replace each raw value with
//! the WoE of its (equal-frequency) bin. Fraud/credit models feed WoE
//! features to logistic regression almost universally, so this operator
//! rounds out the Section III "discretization + normalization" family with
//! the supervised member used in the paper's domain.

use crate::op::{FittedOperator, OpError, Operator};
use safe_stats::iv::woe_bins;

/// Bin budget for the encoder.
const WOE_BINS: usize = 10;

/// WoE encoder: `x → WoE(bin(x))`, bins and WoE table frozen at fit time.
#[derive(Debug, Clone, Copy, Default)]
pub struct WoeEncode;

/// Frozen WoE table.
#[derive(Debug, Clone)]
pub struct FittedWoe {
    /// Interior cut points (finite-value bins).
    cuts: Vec<f64>,
    /// WoE per bin; the last entry is the missing-value bin's WoE (always
    /// present — a neutral 0.0 when training saw no missing values).
    table: Vec<f64>,
}

impl Operator for WoeEncode {
    fn name(&self) -> &'static str {
        "woe"
    }
    fn arity(&self) -> usize {
        1
    }
    fn commutative(&self) -> bool {
        false
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        let labels = labels.ok_or_else(|| OpError::NeedsLabels(self.name().to_string()))?;
        if labels.len() != inputs[0].len() {
            return Err(OpError::LengthMismatch);
        }
        let edges = safe_data::binning::BinEdges::fit(
            inputs[0],
            WOE_BINS,
            safe_data::binning::BinStrategy::EqualFrequency,
        )
        .map_err(|e| OpError::BadParams(e.to_string()))?;
        let cuts = edges.cuts().to_vec();
        let bins = woe_bins(inputs[0], labels, WOE_BINS)
            .map_err(|e| OpError::BadParams(e.to_string()))?;
        // woe_bins yields value bins (+ missing bin only when one occurred);
        // normalize to cuts.len()+1 value entries plus one missing entry.
        let n_value_bins = cuts.len() + 1;
        let mut table: Vec<f64> = bins.iter().map(|b| b.woe).collect();
        match table.len().cmp(&(n_value_bins + 1)) {
            std::cmp::Ordering::Less => table.resize(n_value_bins + 1, 0.0),
            std::cmp::Ordering::Greater => table.truncate(n_value_bins + 1),
            std::cmp::Ordering::Equal => {}
        }
        Ok(Box::new(FittedWoe { cuts, table }))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        let bad = || OpError::BadParams("woe: malformed params".into());
        let n_cuts = *params.first().ok_or_else(bad)? as usize;
        // layout: [n_cuts, cuts.., table (n_cuts + 2)]
        if params.len() != 1 + n_cuts + n_cuts + 2 {
            return Err(bad());
        }
        let cuts = params[1..1 + n_cuts].to_vec();
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(OpError::BadParams("woe: cuts must be increasing".into()));
        }
        let table = params[1 + n_cuts..].to_vec();
        Ok(Box::new(FittedWoe { cuts, table }))
    }
}

impl FittedOperator for FittedWoe {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let x = inputs[0];
        let idx = if x.is_nan() {
            self.table.len() - 1 // missing bin
        } else {
            self.cuts.partition_point(|&c| c < x)
        };
        self.table[idx]
    }
    fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(1 + self.cuts.len() + self.table.len());
        p.push(self.cuts.len() as f64);
        p.extend_from_slice(&self.cuts);
        p.extend_from_slice(&self.table);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone_data(n: usize) -> (Vec<f64>, Vec<u8>) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        (values, labels)
    }

    #[test]
    fn requires_labels() {
        let col = [1.0, 2.0];
        assert!(matches!(
            WoeEncode.fit(&[&col], None).unwrap_err(),
            OpError::NeedsLabels(_)
        ));
    }

    #[test]
    fn encoding_is_monotone_for_monotone_risk() {
        let (v, y) = monotone_data(1_000);
        let f = WoeEncode.fit(&[&v], Some(&y)).unwrap();
        let encoded = f.apply(&[&v]);
        // Low values (all-negative bins) get negative WoE, high values
        // positive, and the encoding is non-decreasing.
        assert!(encoded[0] < 0.0);
        assert!(encoded[999] > 0.0);
        for w in encoded.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn missing_values_get_their_learned_woe() {
        // Missingness concentrated on positives → missing WoE strongly
        // positive.
        let n = 500;
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let values: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l == 1 { f64::NAN } else { i as f64 })
            .collect();
        let f = WoeEncode.fit(&[&values], Some(&labels)).unwrap();
        assert!(f.apply_row(&[f64::NAN]) > 1.0);
    }

    #[test]
    fn unseen_missing_is_neutral() {
        let (v, y) = monotone_data(100);
        let f = WoeEncode.fit(&[&v], Some(&y)).unwrap();
        // No NaN at train time → missing encodes to the neutral 0.
        assert_eq!(f.apply_row(&[f64::NAN]), 0.0);
    }

    #[test]
    fn params_round_trip() {
        let (v, y) = monotone_data(300);
        let fitted = WoeEncode.fit(&[&v], Some(&y)).unwrap();
        let rebuilt = WoeEncode.rehydrate(&fitted.params()).unwrap();
        for probe in [-5.0, 0.0, 150.0, 299.0, 1e6, f64::NAN] {
            let a = fitted.apply_row(&[probe]);
            let b = rebuilt.apply_row(&[probe]);
            assert!(a == b || (a.is_nan() && b.is_nan()), "probe {probe}");
        }
    }

    #[test]
    fn malformed_params_rejected() {
        assert!(WoeEncode.rehydrate(&[]).is_err());
        assert!(WoeEncode.rehydrate(&[1.0, 5.0]).is_err());
        assert!(WoeEncode.rehydrate(&[2.0, 5.0, 1.0, 0.0, 0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn woe_feature_linearizes_risk_for_lr() {
        // WoE encoding makes a U-shaped risk pattern linear-separable: the
        // raw feature has near-zero linear signal, the encoded one is strong.
        let n = 2_000;
        let values: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 * 2.0 - 1.0).collect();
        let labels: Vec<u8> = values.iter().map(|&v| (v.abs() > 0.5) as u8).collect();
        let f = WoeEncode.fit(&[&values], Some(&labels)).unwrap();
        let encoded = f.apply(&[&values]);
        let raw_corr = safe_stats::pearson::pearson(&values, &labels.iter().map(|&l| l as f64).collect::<Vec<_>>()).abs();
        let enc_corr = safe_stats::pearson::pearson(&encoded, &labels.iter().map(|&l| l as f64).collect::<Vec<_>>()).abs();
        assert!(raw_corr < 0.1, "raw linear signal should be weak: {raw_corr}");
        assert!(enc_corr > 0.8, "WoE should linearize: {enc_corr}");
    }
}
