//! Regression-based binary operators (Section III): "Ridge regression …
//! in \[24\] can also be considered as binary operators".
//!
//! Following AutoLearn (Kaul et al., ICDM 2017): for a feature pair `(a, b)`
//! fit a 1-D ridge regression `b ≈ w·a + c` on the training data and emit
//! either the **prediction** (the part of `b` explained by `a`) or the
//! **residual** (the part of `b` that `a` cannot explain — often the more
//! informative signal). The closed forms are
//!
//! `w = cov(a, b) / (var(a) + λ)`, `c = mean(b) − w · mean(a)`,
//!
//! with λ = 0.1. Rows with a missing operand are skipped at fit time and
//! yield NaN at apply time.

use crate::op::{FittedOperator, OpError, Operator};

/// Ridge regularization strength.
const LAMBDA: f64 = 0.1;

/// Which output a ridge operator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RidgeOutput {
    Prediction,
    Residual,
}

/// `ridge_pred(a, b) = w·a + c` — the explained component of `b`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RidgePrediction;

/// `ridge_res(a, b) = b − (w·a + c)` — the unexplained component of `b`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RidgeResidual;

/// Frozen 1-D ridge fit.
#[derive(Debug, Clone)]
pub struct FittedRidge {
    slope: f64,
    intercept: f64,
    output: RidgeOutput,
}

fn fit_ridge(a: &[f64], b: &[f64]) -> (f64, f64) {
    let mut n = 0usize;
    let (mut sa, mut sb) = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            n += 1;
            sa += x;
            sb += y;
        }
    }
    if n < 2 {
        return (0.0, 0.0);
    }
    let ma = sa / n as f64;
    let mb = sb / n as f64;
    let (mut cov, mut var) = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            cov += (x - ma) * (y - mb);
            var += (x - ma) * (x - ma);
        }
    }
    let slope = cov / (var + LAMBDA);
    (slope, mb - slope * ma)
}

impl FittedOperator for FittedRidge {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let (a, b) = (inputs[0], inputs[1]);
        if a.is_nan() || (self.output == RidgeOutput::Residual && b.is_nan()) {
            return f64::NAN;
        }
        let pred = self.slope * a + self.intercept;
        match self.output {
            RidgeOutput::Prediction => pred,
            RidgeOutput::Residual => b - pred,
        }
    }
    fn params(&self) -> Vec<f64> {
        vec![self.slope, self.intercept]
    }
}

macro_rules! ridge_operator {
    ($ty:ident, $name:literal, $output:expr) => {
        impl Operator for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn arity(&self) -> usize {
                2
            }
            fn commutative(&self) -> bool {
                false // regressing b on a differs from a on b
            }
            fn fit(
                &self,
                inputs: &[&[f64]],
                _labels: Option<&[u8]>,
            ) -> Result<Box<dyn FittedOperator>, OpError> {
                self.check_arity(inputs)?;
                let (slope, intercept) = fit_ridge(inputs[0], inputs[1]);
                Ok(Box::new(FittedRidge {
                    slope,
                    intercept,
                    output: $output,
                }))
            }
            fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
                if params.len() != 2 {
                    return Err(OpError::BadParams(format!(
                        "{} expects 2 params, got {}",
                        $name,
                        params.len()
                    )));
                }
                Ok(Box::new(FittedRidge {
                    slope: params[0],
                    intercept: params[1],
                    output: $output,
                }))
            }
        }
    };
}

ridge_operator!(RidgePrediction, "ridge_pred", RidgeOutput::Prediction);
ridge_operator!(RidgeResidual, "ridge_res", RidgeOutput::Residual);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_linear_relationship() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 7.0).collect();
        let f = RidgePrediction.fit(&[&a, &b], None).unwrap();
        let p = f.params();
        assert!((p[0] - 3.0).abs() < 0.01, "slope {}", p[0]);
        assert!((p[1] - 7.0).abs() < 0.5, "intercept {}", p[1]);
        // Prediction tracks b closely.
        assert!((f.apply_row(&[50.0, 0.0]) - 157.0).abs() < 0.5);
    }

    #[test]
    fn residual_removes_the_linear_component() {
        // b = 2a + sine wiggle: the residual should isolate the wiggle.
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + (x * 3.0).sin()).collect();
        let f = RidgeResidual.fit(&[&a, &b], None).unwrap();
        let residuals: Vec<f64> = f.apply(&[&a, &b]);
        let max_abs = residuals.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        assert!(max_abs < 1.5, "residual bounded by the wiggle, got {max_abs}");
        // The residual retains structure (not constant).
        assert!(residuals.iter().any(|&r| r.abs() > 0.3));
    }

    #[test]
    fn regularization_shrinks_degenerate_fits() {
        // Constant a → var = 0 → slope = 0 via the ridge term, no NaN.
        let a = vec![5.0; 10];
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let f = RidgePrediction.fit(&[&a, &b], None).unwrap();
        assert_eq!(f.params()[0], 0.0);
        assert!((f.apply_row(&[5.0, 0.0]) - 4.5).abs() < 1e-9, "predicts mean(b)");
    }

    #[test]
    fn missing_values_skipped_at_fit_and_propagated_at_apply() {
        let a = vec![1.0, 2.0, f64::NAN, 4.0];
        let b = vec![2.0, 4.0, 100.0, 8.0];
        let f = RidgePrediction.fit(&[&a, &b], None).unwrap();
        assert!((f.params()[0] - 2.0).abs() < 0.2, "NaN row excluded from fit");
        assert!(f.apply_row(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn prediction_ignores_b_at_apply_time() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let f = RidgePrediction.fit(&[&a, &b], None).unwrap();
        assert_eq!(f.apply_row(&[10.0, -999.0]), f.apply_row(&[10.0, 999.0]));
        // Residual does depend on b.
        let r = RidgeResidual.fit(&[&a, &b], None).unwrap();
        assert_ne!(r.apply_row(&[10.0, 0.0]), r.apply_row(&[10.0, 5.0]));
    }

    #[test]
    fn params_round_trip() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| -0.5 * x + 2.0).collect();
        for op in [&RidgePrediction as &dyn Operator, &RidgeResidual] {
            let fitted = op.fit(&[&a, &b], None).unwrap();
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            for probe in [[0.0, 1.0], [7.5, -2.0], [100.0, 0.0]] {
                assert_eq!(fitted.apply_row(&probe), rebuilt.apply_row(&probe));
            }
        }
        assert!(RidgePrediction.rehydrate(&[1.0]).is_err());
    }
}

// --- quadratic (kernel-ridge stand-in) -------------------------------------

/// `ridge2_pred(a, b)` — prediction of `b` from the quadratic basis
/// `[a, a²]`, a closed-form stand-in for AutoLearn's kernel ridge
/// regression (captures the monotone-nonlinear pair relationships kernel
/// ridge is used for, without an O(N³) solve).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadRidgePrediction;

/// `ridge2_res(a, b) = b − ridge2_pred(a, b)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadRidgeResidual;

/// Frozen quadratic ridge fit: `b ≈ w1·a + w2·a² + c`.
#[derive(Debug, Clone)]
pub struct FittedQuadRidge {
    w1: f64,
    w2: f64,
    intercept: f64,
    output: RidgeOutput,
}

fn fit_quad_ridge(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
    // Ridge-regularized normal equations on the centred design [a, a²].
    let mut n = 0usize;
    let (mut sa, mut sq, mut sb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            n += 1;
            sa += x;
            sq += x * x;
            sb += y;
        }
    }
    if n < 3 {
        return (0.0, 0.0, if n > 0 { sb / n as f64 } else { 0.0 });
    }
    let (ma, mq, mb) = (sa / n as f64, sq / n as f64, sb / n as f64);
    // Centred second-moment matrix entries.
    let (mut s11, mut s12, mut s22, mut s1y, mut s2y) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            let u = x - ma;
            let v = x * x - mq;
            let w = y - mb;
            s11 += u * u;
            s12 += u * v;
            s22 += v * v;
            s1y += u * w;
            s2y += v * w;
        }
    }
    s11 += LAMBDA;
    s22 += LAMBDA;
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 {
        return (0.0, 0.0, mb);
    }
    let w1 = (s22 * s1y - s12 * s2y) / det;
    let w2 = (s11 * s2y - s12 * s1y) / det;
    (w1, w2, mb - w1 * ma - w2 * mq)
}

impl FittedOperator for FittedQuadRidge {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let (a, b) = (inputs[0], inputs[1]);
        if a.is_nan() || (self.output == RidgeOutput::Residual && b.is_nan()) {
            return f64::NAN;
        }
        let pred = self.w1 * a + self.w2 * a * a + self.intercept;
        match self.output {
            RidgeOutput::Prediction => pred,
            RidgeOutput::Residual => b - pred,
        }
    }
    fn params(&self) -> Vec<f64> {
        vec![self.w1, self.w2, self.intercept]
    }
}

macro_rules! quad_ridge_operator {
    ($ty:ident, $name:literal, $output:expr) => {
        impl Operator for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn arity(&self) -> usize {
                2
            }
            fn commutative(&self) -> bool {
                false
            }
            fn fit(
                &self,
                inputs: &[&[f64]],
                _labels: Option<&[u8]>,
            ) -> Result<Box<dyn FittedOperator>, OpError> {
                self.check_arity(inputs)?;
                let (w1, w2, intercept) = fit_quad_ridge(inputs[0], inputs[1]);
                Ok(Box::new(FittedQuadRidge { w1, w2, intercept, output: $output }))
            }
            fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
                if params.len() != 3 {
                    return Err(OpError::BadParams(format!(
                        "{} expects 3 params, got {}",
                        $name,
                        params.len()
                    )));
                }
                Ok(Box::new(FittedQuadRidge {
                    w1: params[0],
                    w2: params[1],
                    intercept: params[2],
                    output: $output,
                }))
            }
        }
    };
}

quad_ridge_operator!(QuadRidgePrediction, "ridge2_pred", RidgeOutput::Prediction);
quad_ridge_operator!(QuadRidgeResidual, "ridge2_res", RidgeOutput::Residual);

#[cfg(test)]
mod quad_tests {
    use super::*;

    #[test]
    fn recovers_a_quadratic_relationship() {
        let a: Vec<f64> = (-50..50).map(|i| i as f64 / 10.0).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x * x - x + 3.0).collect();
        let f = QuadRidgePrediction.fit(&[&a, &b], None).unwrap();
        let p = f.params();
        assert!((p[0] + 1.0).abs() < 0.05, "w1 = {}", p[0]);
        assert!((p[1] - 2.0).abs() < 0.05, "w2 = {}", p[1]);
        // Residual vanishes on exact quadratic data.
        let r = QuadRidgeResidual.fit(&[&a, &b], None).unwrap();
        let residuals = r.apply(&[&a, &b]);
        assert!(residuals.iter().all(|v| v.abs() < 0.5), "{residuals:?}");
    }

    #[test]
    fn beats_linear_ridge_on_curved_data() {
        let a: Vec<f64> = (-40..40).map(|i| i as f64 / 8.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x * x).collect();
        let lin = RidgeResidual.fit(&[&a, &b], None).unwrap();
        let quad = QuadRidgeResidual.fit(&[&a, &b], None).unwrap();
        let rms = |v: Vec<f64>| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        let rms_lin = rms(lin.apply(&[&a, &b]));
        let rms_quad = rms(quad.apply(&[&a, &b]));
        assert!(rms_quad < rms_lin / 5.0, "quad {rms_quad} vs lin {rms_lin}");
    }

    #[test]
    fn degenerate_inputs_fall_back_to_mean() {
        let a = vec![2.0; 10];
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let f = QuadRidgePrediction.fit(&[&a, &b], None).unwrap();
        assert!((f.apply_row(&[2.0, 0.0]) - 4.5).abs() < 1e-6);
    }

    #[test]
    fn quad_params_round_trip() {
        let a: Vec<f64> = (0..30).map(|i| i as f64 / 3.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x * x + 1.0).collect();
        for op in [&QuadRidgePrediction as &dyn Operator, &QuadRidgeResidual] {
            let fitted = op.fit(&[&a, &b], None).unwrap();
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            assert_eq!(fitted.apply_row(&[3.0, 4.0]), rebuilt.apply_row(&[3.0, 4.0]));
        }
        assert!(QuadRidgePrediction.rehydrate(&[1.0]).is_err());
    }
}
