//! Operator traits: fit-on-train, apply-anywhere.

use std::fmt;
use std::sync::Arc;

/// Errors from operator fitting/rehydration.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// Wrong number of parent columns.
    ArityMismatch {
        /// Operator name.
        op: String,
        /// Declared arity.
        expected: usize,
        /// Inputs supplied.
        actual: usize,
    },
    /// Parent columns have different lengths.
    LengthMismatch,
    /// Stored parameters do not decode for this operator.
    BadParams(String),
    /// A supervised operator was fit without labels.
    NeedsLabels(String),
    /// A fault-injection point fired (tests only; see the `failpoints`
    /// feature of `safe-data`). Carries the failpoint name.
    Injected(&'static str),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::ArityMismatch { op, expected, actual } => {
                write!(f, "operator '{op}' takes {expected} inputs, got {actual}")
            }
            OpError::LengthMismatch => write!(f, "parent columns differ in length"),
            OpError::BadParams(msg) => write!(f, "bad operator parameters: {msg}"),
            OpError::NeedsLabels(op) => write!(f, "operator '{op}' requires labels to fit"),
            OpError::Injected(name) => write!(f, "injected fault at '{name}'"),
        }
    }
}

impl std::error::Error for OpError {}

/// A named feature constructor of fixed arity.
///
/// `fit` learns any state from *training* columns and returns the frozen
/// applier; `rehydrate` rebuilds the applier from stored parameters so a
/// serialized feature plan can run at inference time without the training
/// data.
pub trait Operator: Send + Sync {
    /// Registry name, e.g. `"add"`, `"group_then_avg"`.
    fn name(&self) -> &'static str;

    /// Number of parent features consumed.
    fn arity(&self) -> usize;

    /// Whether argument order is irrelevant. Non-commutative operators are
    /// "treated as multiple different operators" (Section III) — the
    /// generation stage enumerates ordered pairs for them.
    fn commutative(&self) -> bool;

    /// Fit on training columns and freeze. Supervised operators (e.g.
    /// ChiMerge discretization) require `labels`; unsupervised ones ignore
    /// them.
    fn fit(
        &self,
        inputs: &[&[f64]],
        labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError>;

    /// Rebuild a fitted instance from stored parameters.
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError>;

    /// Check input count; shared by implementations. Every operator `fit`
    /// funnels through here, which also makes it the natural fault-injection
    /// point for "operator failed to fit" degradation tests.
    fn check_arity(&self, inputs: &[&[f64]]) -> Result<(), OpError> {
        safe_data::failpoint!("ops/fit", OpError::Injected("ops/fit"));
        if inputs.len() != self.arity() {
            return Err(OpError::ArityMismatch {
                op: self.name().to_string(),
                expected: self.arity(),
                actual: inputs.len(),
            });
        }
        if inputs
            .windows(2)
            .any(|w| w[0].len() != w[1].len())
        {
            return Err(OpError::LengthMismatch);
        }
        Ok(())
    }
}

/// A frozen operator ready to produce feature values.
pub trait FittedOperator: Send + Sync {
    /// Apply to whole columns (batch feature generation).
    fn apply(&self, inputs: &[&[f64]]) -> Vec<f64> {
        let n = inputs.first().map(|c| c.len()).unwrap_or(0);
        (0..n)
            .map(|i| {
                let row: Vec<f64> = inputs.iter().map(|c| c[i]).collect();
                self.apply_row(&row)
            })
            .collect()
    }

    /// Apply to a single record (real-time inference).
    fn apply_row(&self, inputs: &[f64]) -> f64;

    /// Learned parameters, empty for stateless operators. Must round-trip
    /// through [`Operator::rehydrate`].
    fn params(&self) -> Vec<f64> {
        Vec::new()
    }
}

impl fmt::Debug for dyn FittedOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FittedOperator(params={:?})", self.params())
    }
}

/// Boxed pure row function.
type RowFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// Adapter turning a plain `fn(&[f64]) -> f64` into a [`FittedOperator`] —
/// the common case for the arithmetic/logical/math families.
#[derive(Clone)]
pub struct StatelessFitted {
    f: RowFn,
}

impl StatelessFitted {
    /// Wrap a pure row function.
    pub fn new(f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        StatelessFitted { f: Arc::new(f) }
    }
}

impl FittedOperator for StatelessFitted {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        (self.f)(inputs)
    }
}

/// Declare a stateless operator type in one line.
///
/// `stateless_op!(Add, "add", 2, commutative: true, |v| v[0] + v[1]);`
#[macro_export]
macro_rules! stateless_op {
    ($ty:ident, $name:literal, $arity:literal, commutative: $comm:literal, $f:expr) => {
        /// Stateless operator (see module docs for semantics).
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl $crate::op::Operator for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn arity(&self) -> usize {
                $arity
            }
            fn commutative(&self) -> bool {
                $comm
            }
            fn fit(
                &self,
                inputs: &[&[f64]],
                _labels: Option<&[u8]>,
            ) -> Result<Box<dyn $crate::op::FittedOperator>, $crate::op::OpError> {
                self.check_arity(inputs)?;
                Ok(Box::new($crate::op::StatelessFitted::new($f)))
            }
            fn rehydrate(
                &self,
                params: &[f64],
            ) -> Result<Box<dyn $crate::op::FittedOperator>, $crate::op::OpError> {
                if !params.is_empty() {
                    return Err($crate::op::OpError::BadParams(format!(
                        "{} is stateless but got {} params",
                        $name,
                        params.len()
                    )));
                }
                Ok(Box::new($crate::op::StatelessFitted::new($f)))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    stateless_op!(TestAdd, "test_add", 2, commutative: true, |v| v[0] + v[1]);

    #[test]
    fn stateless_round_trip() {
        let op = TestAdd;
        assert_eq!(op.name(), "test_add");
        assert_eq!(op.arity(), 2);
        assert!(op.commutative());
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let fitted = op.fit(&[&a, &b], None).unwrap();
        assert_eq!(fitted.apply(&[&a, &b]), vec![11.0, 22.0]);
        assert_eq!(fitted.apply_row(&[3.0, 4.0]), 7.0);
        assert!(fitted.params().is_empty());
        let rehydrated = op.rehydrate(&[]).unwrap();
        assert_eq!(rehydrated.apply_row(&[3.0, 4.0]), 7.0);
    }

    #[test]
    fn arity_is_enforced() {
        let op = TestAdd;
        let a = [1.0];
        let err = op.fit(&[&a], None).unwrap_err();
        assert!(matches!(err, OpError::ArityMismatch { expected: 2, actual: 1, .. }));
    }

    #[test]
    fn length_mismatch_rejected() {
        let op = TestAdd;
        let a = [1.0, 2.0];
        let b = [1.0];
        assert_eq!(op.fit(&[&a, &b], None).unwrap_err(), OpError::LengthMismatch);
    }

    #[test]
    fn stateless_rejects_params() {
        let op = TestAdd;
        assert!(matches!(op.rehydrate(&[1.0]).unwrap_err(), OpError::BadParams(_)));
    }
}
