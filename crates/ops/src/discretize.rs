//! Unary discretization operators (Section III): equal-width binning,
//! equal-frequency binning, and supervised ChiMerge.
//!
//! All three freeze a set of interior cut points at fit time; applying maps
//! a value to its (f64-encoded) bin index. NaN inputs stay NaN so the
//! missingness signal survives discretization.

use crate::op::{FittedOperator, OpError, Operator};
use safe_data::binning::{BinEdges, BinStrategy};
use safe_stats::chi::chi_square_pair;

/// Default bin budget for the discretizers.
const DEFAULT_BINS: usize = 10;

/// Frozen discretizer: value → bin index by stored cut points.
#[derive(Debug, Clone)]
pub struct FittedDiscretizer {
    cuts: Vec<f64>,
}

impl FittedOperator for FittedDiscretizer {
    fn apply_row(&self, inputs: &[f64]) -> f64 {
        let x = inputs[0];
        if x.is_nan() {
            return f64::NAN;
        }
        self.cuts.partition_point(|&c| c < x) as f64
    }
    fn params(&self) -> Vec<f64> {
        self.cuts.clone()
    }
}

fn rehydrate_cuts(params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
    if params.windows(2).any(|w| w[0] >= w[1]) {
        return Err(OpError::BadParams("cut points must be strictly increasing".into()));
    }
    Ok(Box::new(FittedDiscretizer {
        cuts: params.to_vec(),
    }))
}

macro_rules! unsupervised_discretizer {
    ($ty:ident, $name:literal, $strategy:expr) => {
        /// Unsupervised discretizer; see module docs.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl Operator for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn arity(&self) -> usize {
                1
            }
            fn commutative(&self) -> bool {
                false
            }
            fn fit(
                &self,
                inputs: &[&[f64]],
                _labels: Option<&[u8]>,
            ) -> Result<Box<dyn FittedOperator>, OpError> {
                self.check_arity(inputs)?;
                let edges = BinEdges::fit(inputs[0], DEFAULT_BINS, $strategy)
                    .map_err(|e| OpError::BadParams(e.to_string()))?;
                Ok(Box::new(FittedDiscretizer {
                    cuts: edges.cuts().to_vec(),
                }))
            }
            fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
                rehydrate_cuts(params)
            }
        }
    };
}

unsupervised_discretizer!(EqualWidthDiscretize, "disc_width", BinStrategy::EqualWidth);
unsupervised_discretizer!(EqualFreqDiscretize, "disc_freq", BinStrategy::EqualFrequency);

/// Supervised ChiMerge discretization: start from fine equal-frequency
/// intervals and repeatedly merge the adjacent pair with the lowest
/// chi-square against the label until `DEFAULT_BINS` intervals remain or
/// every remaining pair is significant at the 95% level.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChiMergeDiscretize;

impl Operator for ChiMergeDiscretize {
    fn name(&self) -> &'static str {
        "disc_chimerge"
    }
    fn arity(&self) -> usize {
        1
    }
    fn commutative(&self) -> bool {
        false
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        let labels = labels.ok_or_else(|| OpError::NeedsLabels(self.name().to_string()))?;
        if labels.len() != inputs[0].len() {
            return Err(OpError::LengthMismatch);
        }
        // Initial fine partition: up to 64 equal-frequency intervals.
        let edges = BinEdges::fit(inputs[0], 64, BinStrategy::EqualFrequency)
            .map_err(|e| OpError::BadParams(e.to_string()))?;
        let mut cuts: Vec<f64> = edges.cuts().to_vec();
        // Class counts per interval.
        let mut counts: Vec<(usize, usize)> = vec![(0, 0); cuts.len() + 1];
        for (&v, &y) in inputs[0].iter().zip(labels) {
            if !v.is_finite() {
                continue;
            }
            let b = cuts.partition_point(|&c| c < v);
            if y == 1 {
                counts[b].0 += 1;
            } else {
                counts[b].1 += 1;
            }
        }
        let threshold = safe_stats::chi::chi2_critical_1df(0.05);
        while counts.len() > 2 {
            // Find the least-significant adjacent pair. The loop guard
            // guarantees at least one window, but degrade to the current
            // cuts rather than panic if that ever stops holding.
            let Some((best_i, best_chi)) = counts
                .windows(2)
                .enumerate()
                .map(|(i, w)| (i, chi_square_pair(w[0], w[1])))
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                break;
            };
            let at_budget = counts.len() <= DEFAULT_BINS;
            if at_budget && best_chi > threshold {
                break;
            }
            counts[best_i].0 += counts[best_i + 1].0;
            counts[best_i].1 += counts[best_i + 1].1;
            counts.remove(best_i + 1);
            cuts.remove(best_i);
        }
        Ok(Box::new(FittedDiscretizer { cuts }))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        rehydrate_cuts(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_uniform_data() {
        let col: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f = EqualWidthDiscretize.fit(&[&col], None).unwrap();
        let out = f.apply(&[&col]);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[99], (DEFAULT_BINS - 1) as f64);
        // Bin index is monotone in the value.
        for w in out.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn equal_freq_balances_counts() {
        let col: Vec<f64> = (0..100).map(|i| (i as f64).exp2().min(1e300)).collect();
        let f = EqualFreqDiscretize.fit(&[&col], None).unwrap();
        let out = f.apply(&[&col]);
        let mut histogram = std::collections::HashMap::new();
        for &b in &out {
            *histogram.entry(b as usize).or_insert(0usize) += 1;
        }
        let max = histogram.values().max().unwrap();
        let min = histogram.values().min().unwrap();
        assert!(max - min <= 1, "equal frequency bins: {histogram:?}");
    }

    #[test]
    fn chimerge_requires_labels() {
        let col = [1.0, 2.0, 3.0];
        assert!(matches!(
            ChiMergeDiscretize.fit(&[&col], None).unwrap_err(),
            OpError::NeedsLabels(_)
        ));
    }

    #[test]
    fn chimerge_finds_the_class_boundary() {
        // Labels flip exactly at value 50: ChiMerge must keep a cut near 50.
        let col: Vec<f64> = (0..200).map(|i| (i / 2) as f64).collect();
        let labels: Vec<u8> = col.iter().map(|&v| (v >= 50.0) as u8).collect();
        let f = ChiMergeDiscretize.fit(&[&col], Some(&labels)).unwrap();
        let cuts = f.params();
        assert!(!cuts.is_empty());
        assert!(
            cuts.iter().any(|&c| (45.0..55.0).contains(&c)),
            "no cut near the boundary: {cuts:?}"
        );
        // The two sides of the boundary land in different bins.
        assert_ne!(f.apply_row(&[40.0]), f.apply_row(&[60.0]));
    }

    #[test]
    fn chimerge_merges_uninformative_intervals() {
        // Labels independent of the value: ChiMerge should collapse to few bins.
        let col: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..400).map(|i| (i % 2) as u8).collect();
        let f = ChiMergeDiscretize.fit(&[&col], Some(&labels)).unwrap();
        assert!(
            f.params().len() < DEFAULT_BINS,
            "uninformative feature kept {} cuts",
            f.params().len()
        );
    }

    #[test]
    fn nan_stays_nan() {
        let col = [1.0, 2.0, 3.0];
        for op in [
            &EqualWidthDiscretize as &dyn Operator,
            &EqualFreqDiscretize,
        ] {
            let f = op.fit(&[&col], None).unwrap();
            assert!(f.apply_row(&[f64::NAN]).is_nan(), "{}", op.name());
        }
    }

    #[test]
    fn params_round_trip() {
        let col: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let labels: Vec<u8> = (0..50).map(|i| (i >= 25) as u8).collect();
        let ops: Vec<&dyn Operator> = vec![
            &EqualWidthDiscretize,
            &EqualFreqDiscretize,
            &ChiMergeDiscretize,
        ];
        for op in ops {
            let fitted = op.fit(&[&col], Some(&labels)).unwrap();
            let rebuilt = op.rehydrate(&fitted.params()).unwrap();
            for x in [-1.0, 0.0, 17.3, 49.0, 100.0] {
                assert_eq!(
                    fitted.apply_row(&[x]),
                    rebuilt.apply_row(&[x]),
                    "{} at {x}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn unsorted_params_rejected() {
        assert!(EqualWidthDiscretize.rehydrate(&[3.0, 1.0]).is_err());
        assert!(ChiMergeDiscretize.rehydrate(&[1.0, 1.0]).is_err());
    }
}
