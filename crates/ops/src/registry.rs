//! The open operator registry.
//!
//! Presets:
//! - [`OperatorRegistry::arithmetic`] — `+ − × ÷`, exactly the set used in
//!   every experiment of Section V ("for simplicity and versatility, we only
//!   select four basic binary operators"),
//! - [`OperatorRegistry::standard`] — everything this crate implements,
//! - [`OperatorRegistry::empty`] + [`register`](OperatorRegistry::register)
//!   — bring your own (the paper's extensibility requirement, including
//!   domain-specific operators such as time-series lags).

use std::collections::HashMap;
use std::sync::Arc;

use crate::op::Operator;
use crate::{binary, discretize, groupby, normalize, regression, ternary, unary};

/// A named collection of operators, queryable by name or arity.
#[derive(Clone, Default)]
pub struct OperatorRegistry {
    ops: Vec<Arc<dyn Operator>>,
    by_name: HashMap<&'static str, usize>,
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorRegistry")
            .field("operators", &self.names())
            .finish()
    }
}

impl OperatorRegistry {
    /// Registry with no operators.
    pub fn empty() -> Self {
        OperatorRegistry::default()
    }

    /// The paper's experimental operator set: `+ − × ÷`.
    pub fn arithmetic() -> Self {
        let mut r = OperatorRegistry::empty();
        r.register(Arc::new(binary::Add));
        r.register(Arc::new(binary::Sub));
        r.register(Arc::new(binary::Mul));
        r.register(Arc::new(binary::Div));
        r
    }

    /// Every operator implemented in this crate.
    pub fn standard() -> Self {
        let mut r = OperatorRegistry::arithmetic();
        // unary math
        r.register(Arc::new(unary::Log));
        r.register(Arc::new(unary::Sqrt));
        r.register(Arc::new(unary::Square));
        r.register(Arc::new(unary::Sigmoid));
        r.register(Arc::new(unary::Tanh));
        r.register(Arc::new(unary::Round));
        r.register(Arc::new(unary::Abs));
        r.register(Arc::new(unary::Reciprocal));
        r.register(Arc::new(unary::Negate));
        // unary normalization & discretization
        r.register(Arc::new(normalize::MinMaxNorm));
        r.register(Arc::new(normalize::ZScore));
        r.register(Arc::new(discretize::EqualWidthDiscretize));
        r.register(Arc::new(discretize::EqualFreqDiscretize));
        r.register(Arc::new(discretize::ChiMergeDiscretize));
        r.register(Arc::new(crate::woe::WoeEncode));
        // binary order stats
        r.register(Arc::new(binary::Min2));
        r.register(Arc::new(binary::Max2));
        r.register(Arc::new(binary::Mean2));
        // binary logical
        r.register(Arc::new(binary::And));
        r.register(Arc::new(binary::Or));
        r.register(Arc::new(binary::Nand));
        r.register(Arc::new(binary::Nor));
        r.register(Arc::new(binary::Implies));
        r.register(Arc::new(binary::ConverseImplies));
        r.register(Arc::new(binary::Xnor));
        r.register(Arc::new(binary::Xor));
        // binary SQL
        r.register(Arc::new(groupby::GROUP_THEN_MAX));
        r.register(Arc::new(groupby::GROUP_THEN_MIN));
        r.register(Arc::new(groupby::GROUP_THEN_AVG));
        r.register(Arc::new(groupby::GROUP_THEN_STDEV));
        r.register(Arc::new(groupby::GROUP_THEN_COUNT));
        // binary regression (AutoLearn-style)
        r.register(Arc::new(regression::RidgePrediction));
        r.register(Arc::new(regression::RidgeResidual));
        r.register(Arc::new(regression::QuadRidgePrediction));
        r.register(Arc::new(regression::QuadRidgeResidual));
        // ternary
        r.register(Arc::new(ternary::Conditional));
        r.register(Arc::new(ternary::Max3));
        r.register(Arc::new(ternary::Min3));
        r.register(Arc::new(ternary::Mean3));
        r
    }

    /// Add an operator. Re-registering a name replaces the previous entry
    /// (last one wins), so callers can override built-ins.
    pub fn register(&mut self, op: Arc<dyn Operator>) {
        let name = op.name();
        match self.by_name.get(name) {
            Some(&i) => self.ops[i] = op,
            None => {
                self.by_name.insert(name, self.ops.len());
                self.ops.push(op);
            }
        }
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Operator>> {
        self.by_name.get(name).map(|&i| &self.ops[i])
    }

    /// All operators of the given arity, in registration order.
    pub fn by_arity(&self, arity: usize) -> Vec<&Arc<dyn Operator>> {
        self.ops.iter().filter(|o| o.arity() == arity).collect()
    }

    /// All operators.
    pub fn all(&self) -> &[Arc<dyn Operator>] {
        &self.ops
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.ops.iter().map(|o| o.name()).collect()
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Highest arity present (0 when empty) — bounds combination size during
    /// generation.
    pub fn max_arity(&self) -> usize {
        self.ops.iter().map(|o| o.arity()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{FittedOperator, OpError};

    #[test]
    fn arithmetic_preset_matches_paper() {
        let r = OperatorRegistry::arithmetic();
        assert_eq!(r.names(), vec!["add", "sub", "mul", "div"]);
        assert_eq!(r.by_arity(2).len(), 4);
        assert!(r.by_arity(1).is_empty());
    }

    #[test]
    fn standard_preset_spans_arities() {
        let r = OperatorRegistry::standard();
        assert!(r.by_arity(1).len() >= 14, "unary family");
        assert!(r.by_arity(2).len() >= 20, "binary family");
        assert!(r.by_arity(3).len() >= 4, "ternary family");
        assert_eq!(r.max_arity(), 3);
    }

    #[test]
    fn lookup_by_name() {
        let r = OperatorRegistry::standard();
        assert!(r.get("group_then_avg").is_some());
        assert!(r.get("no_such_op").is_none());
        assert_eq!(r.get("div").unwrap().arity(), 2);
    }

    #[test]
    fn names_are_unique() {
        let r = OperatorRegistry::standard();
        let mut names = r.names();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn custom_operator_can_be_registered_and_overridden() {
        struct Triple;
        impl Operator for Triple {
            fn name(&self) -> &'static str {
                "triple"
            }
            fn arity(&self) -> usize {
                1
            }
            fn commutative(&self) -> bool {
                false
            }
            fn fit(
                &self,
                inputs: &[&[f64]],
                _labels: Option<&[u8]>,
            ) -> Result<Box<dyn FittedOperator>, OpError> {
                self.check_arity(inputs)?;
                Ok(Box::new(crate::op::StatelessFitted::new(|v| 3.0 * v[0])))
            }
            fn rehydrate(&self, _params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
                Ok(Box::new(crate::op::StatelessFitted::new(|v| 3.0 * v[0])))
            }
        }
        let mut r = OperatorRegistry::arithmetic();
        let before = r.len();
        r.register(Arc::new(Triple));
        assert_eq!(r.len(), before + 1);
        let col = [2.0];
        let f = r.get("triple").unwrap().fit(&[&col], None).unwrap();
        assert_eq!(f.apply_row(&[2.0]), 6.0);

        // Overriding keeps the count stable.
        r.register(Arc::new(Triple));
        assert_eq!(r.len(), before + 1);
    }

    #[test]
    fn empty_registry() {
        let r = OperatorRegistry::empty();
        assert!(r.is_empty());
        assert_eq!(r.max_arity(), 0);
    }
}
