//! Property suite for the metrics layer (ISSUE 7 satellite): the
//! log2-bucketed `LatencyHisto` must merge associatively and
//! deterministically (any sharding of the same observations is
//! bit-identical to serial recording), quantiles must be monotone in `q`
//! and land on bucket upper bounds, and the Prometheus renderer's label
//! escaping must survive hostile label values (backslashes, quotes,
//! newlines) such that every emitted sample line still has the
//! `name{labels} value` shape with balanced quotes.

use proptest::prelude::*;

use safe_obs::metrics::{bucket_index, bucket_upper_bound, escape_label_value};
use safe_obs::{render_prometheus, LatencyHisto, MetricsRegistry};

fn serial(values: &[u64]) -> LatencyHisto {
    let mut h = LatencyHisto::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharding the observation stream across k "threads" and merging in
    /// forward or reverse order is bit-identical to serial recording —
    /// merge is associative, commutative, and exact.
    #[test]
    fn merge_is_associative_and_deterministic(
        values in prop::collection::vec(0u64..5_000_000, 0..200),
        shards in 1usize..8,
    ) {
        let reference = serial(&values);
        let mut parts = vec![LatencyHisto::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut fwd = LatencyHisto::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = LatencyHisto::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        // Tree-shaped merge: ((p0+p1) + (p2+p3) + ...)
        let mut tree = LatencyHisto::new();
        for pair in parts.chunks(2) {
            let mut partial = LatencyHisto::new();
            for p in pair {
                partial.merge(p);
            }
            tree.merge(&partial);
        }
        prop_assert_eq!(&fwd, &reference);
        prop_assert_eq!(&rev, &reference);
        prop_assert_eq!(&tree, &reference);
        prop_assert_eq!(fwd.p50(), reference.p50());
        prop_assert_eq!(fwd.p95(), reference.p95());
        prop_assert_eq!(fwd.p99(), reference.p99());
    }

    /// Quantiles are monotone in q, always land on a bucket upper bound,
    /// and never exceed the bound of the largest observed value's bucket.
    #[test]
    fn quantiles_are_monotone_bucket_bounds(
        values in prop::collection::vec(0u64..10_000_000, 1..150),
    ) {
        let h = serial(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile must be monotone: q={q} gave {v} < {last}");
            last = v;
            prop_assert_eq!(v, bucket_upper_bound(bucket_index(v)), "quantile is a bucket bound");
        }
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(h.quantile(1.0) <= bucket_upper_bound(bucket_index(max)));
        prop_assert!(h.quantile(1.0) >= max, "p100 bound covers the max observation");
    }

    /// count/sum are exact regardless of sharding, and bucket totals always
    /// add up to count.
    #[test]
    fn count_and_sum_are_exact(
        values in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let h = serial(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    /// Escaping is injective on the metacharacters and the renderer always
    /// emits parseable sample lines: `name{key="escaped"} value`, one per
    /// line, with no raw newline or unescaped quote inside the label value.
    #[test]
    fn prometheus_escaping_survives_hostile_label_values(
        pieces in prop::collection::vec(prop_oneof![
            Just("\\".to_string()),
            Just("\"".to_string()),
            Just("\n".to_string()),
            Just("\\n".to_string()),
            "\\PC{1,8}",
        ], 0..6),
    ) {
        let value: String = pieces.concat();
        let escaped = escape_label_value(&value);
        prop_assert!(!escaped.contains('\n'), "raw newlines must be escaped: {escaped:?}");
        // Unescape and require an exact round-trip (escaping is lossless).
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => prop_assert!(false, "dangling escape: {other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        prop_assert_eq!(&unescaped, &value);

        let registry = MetricsRegistry::new();
        registry.counter_add("hostile", &[("tag", value.as_str())], 1);
        registry.observe("hostile_us", &[("tag", value.as_str())], 42);
        let text = render_prometheus(&registry.snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, sample) = line.rsplit_once(' ')
                .ok_or(TestCaseError::fail(format!("no value separator: {line:?}")))?;
            prop_assert!(sample.parse::<f64>().is_ok(), "sample must be numeric: {line:?}");
            if let Some(open) = series.find('{') {
                prop_assert!(series.ends_with('}'), "unbalanced label braces: {line:?}");
                let labels = &series[open + 1..series.len() - 1];
                // Quotes inside the label section must all be either the
                // delimiters or escaped — count unescaped quotes, must be
                // even (balanced pairs).
                let mut unescaped_quotes = 0usize;
                let mut prev_backslashes = 0usize;
                for c in labels.chars() {
                    if c == '"' && prev_backslashes % 2 == 0 {
                        unescaped_quotes += 1;
                    }
                    prev_backslashes = if c == '\\' { prev_backslashes + 1 } else { 0 };
                }
                prop_assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes: {}", line);
            }
        }
    }
}
