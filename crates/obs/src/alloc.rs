//! Feature-gated counting global allocator (`alloc-metrics`).
//!
//! When the `alloc-metrics` feature is enabled, a binary can install
//! [`CountingAllocator`] as its `#[global_allocator]`; every allocation is
//! then tallied into process-wide atomics and [`alloc_snapshot`] reports
//! cumulative allocation count/bytes, currently live bytes, and the peak
//! high-water mark. The report builder samples these around each stage
//! guard, so per-stage deltas land in `RunReport.metrics` as
//! `alloc_allocs{stage=...}` / `alloc_bytes{stage=...}` counters plus an
//! `alloc_peak_bytes` gauge.
//!
//! Without the feature the allocator type is absent and [`alloc_snapshot`]
//! returns zeros, so instrumentation sites can call it unconditionally —
//! the builder skips recording when the feature is compiled out, keeping
//! default-build reports byte-identical to pre-metrics ones.

/// Point-in-time allocation statistics (all zeros when the `alloc-metrics`
/// feature is off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative number of allocations.
    pub allocs: u64,
    /// Cumulative bytes requested by allocations.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub current: u64,
    /// Peak of `current` over the process lifetime.
    pub peak: u64,
}

impl AllocSnapshot {
    /// Delta of cumulative fields relative to an earlier snapshot
    /// (`current`/`peak` keep the later absolute values).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            current: self.current,
            peak: self.peak,
        }
    }
}

#[cfg(feature = "alloc-metrics")]
mod counting {
    use super::AllocSnapshot;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static CURRENT: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size, Ordering::Relaxed);
        let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: u64) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }

    /// A counting wrapper around the system allocator. Install with
    /// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
    /// in the binary (or test) crate root.
    pub struct CountingAllocator;

    // SAFETY: delegates every operation to `System`, which upholds the
    // GlobalAlloc contract; the atomics only observe sizes.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
            current: CURRENT.load(Ordering::Relaxed),
            peak: PEAK.load(Ordering::Relaxed),
        }
    }
}

#[cfg(feature = "alloc-metrics")]
pub use counting::CountingAllocator;

/// Current process-wide allocation statistics. Zeros unless the
/// `alloc-metrics` feature is enabled *and* [`CountingAllocator`] is
/// installed as the global allocator.
pub fn alloc_snapshot() -> AllocSnapshot {
    #[cfg(feature = "alloc-metrics")]
    {
        counting::snapshot()
    }
    #[cfg(not(feature = "alloc-metrics"))]
    {
        AllocSnapshot::default()
    }
}

/// Whether allocation metrics are compiled in.
pub fn alloc_metrics_enabled() -> bool {
    cfg!(feature = "alloc-metrics")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_saturating() {
        let early = AllocSnapshot { allocs: 10, bytes: 100, current: 50, peak: 80 };
        let late = AllocSnapshot { allocs: 15, bytes: 160, current: 40, peak: 90 };
        let d = late.since(&early);
        assert_eq!(d.allocs, 5);
        assert_eq!(d.bytes, 60);
        assert_eq!(d.current, 40);
        assert_eq!(d.peak, 90);
        // Reversed order saturates instead of wrapping.
        let r = early.since(&late);
        assert_eq!(r.allocs, 0);
        assert_eq!(r.bytes, 0);
    }

    #[cfg(not(feature = "alloc-metrics"))]
    #[test]
    fn snapshot_is_zero_without_feature() {
        assert_eq!(alloc_snapshot(), AllocSnapshot::default());
        assert!(!alloc_metrics_enabled());
    }

    #[cfg(feature = "alloc-metrics")]
    #[test]
    fn counting_allocator_observes_allocations() {
        // The allocator only counts when installed globally; these tests run
        // in the obs test binary which installs it below.
        let before = alloc_snapshot();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = alloc_snapshot();
        drop(v);
        assert!(after.allocs > before.allocs, "alloc count should grow");
        assert!(after.bytes >= before.bytes + 4096);
        assert!(after.peak >= 4096);
        assert!(alloc_metrics_enabled());
    }
}

// Install the counting allocator for this crate's own unit-test binary so
// the feature-gated test above observes real counts.
#[cfg(all(test, feature = "alloc-metrics"))]
#[global_allocator]
static TEST_ALLOCATOR: CountingAllocator = CountingAllocator;
