//! # safe-obs — pipeline telemetry: tracing spans, metrics, run reports
//!
//! A zero-dependency observability layer for the SAFE pipeline. Every
//! pipeline stage emits structured [`Event`]s — span boundaries
//! (`stage_start`/`stage_end` with wall time), counters, gauges, and
//! warnings — through an [`EventSink`] threaded through the run
//! configuration:
//!
//! - [`NullSink`] — the default; reports `enabled() == false` so call
//!   sites can skip event construction entirely,
//! - [`JsonlSink`] — one JSON object per line to any writer/file,
//! - [`MemorySink`] — collects events in memory for tests and report
//!   assembly,
//! - [`FanoutSink`] — tee to several sinks at once.
//!
//! From the instrumentation, [`ReportBuilder`] assembles a [`RunReport`]:
//! per-iteration, per-stage timings (integer microseconds), counters, and
//! the feature-count waterfall (generated → post-IV → post-redundancy →
//! post-top-k). The same report can be reassembled offline from collected
//! events via [`RunReport::from_events`].
//!
//! ## Stage-name vocabulary (stable contract)
//!
//! The seven core per-iteration stages, in pipeline order (see
//! [`stages::CORE`]): `gbm-train`, `path-extract`, `rank-combos`,
//! `generate`, `iv-filter`, `redundancy-filter`, `rank-topk`. Framing
//! spans use `iteration`; run-level events use `audit` and `waterfall`.
//! These names are a stable contract for downstream tooling
//! (`BENCH_pipeline.json`, `--trace-jsonl` consumers); renames are
//! breaking changes.
//!
//! ## JSONL schema
//!
//! Every line is one JSON object with at least `ts_us` (microseconds since
//! process telemetry epoch), `event` (one of `stage_start`, `stage_end`,
//! `counter`, `gauge`, `warn`), and `stage`. Optional keys: `iteration`,
//! `name`, `value` (for `stage_end` this is the span duration in
//! microseconds), `message` (warnings only).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod report;
pub mod sink;

pub use report::{
    IterationTelemetry, ReportBuilder, RunReport, StageGuard, StageTelemetry, Waterfall, WarnRecord,
};
pub use sink::{Event, EventKind, EventSink, FanoutSink, JsonlSink, MemorySink, NullSink, SinkHandle};

/// The stable stage-name vocabulary.
pub mod stages {
    /// Miner/booster training on the current feature set.
    pub const GBM_TRAIN: &str = "gbm-train";
    /// Root→leaf-parent path harvesting and combination extraction.
    pub const PATH_EXTRACT: &str = "path-extract";
    /// Information-gain-ratio ranking of combinations (γ truncation).
    pub const RANK_COMBOS: &str = "rank-combos";
    /// Operator application over the kept combinations.
    pub const GENERATE: &str = "generate";
    /// Information-Value filter at α (Algorithm 3).
    pub const IV_FILTER: &str = "iv-filter";
    /// Pairwise Pearson redundancy removal at θ (Algorithm 4).
    pub const REDUNDANCY: &str = "redundancy-filter";
    /// Split-gain ranking and 2M cap (Section IV-C3).
    pub const RANK_TOPK: &str = "rank-topk";
    /// Framing span around one SAFE iteration.
    pub const ITERATION: &str = "iteration";
    /// Pre-fit data audit (run level, before iteration 0).
    pub const AUDIT: &str = "audit";
    /// Feature-count waterfall gauges emitted at iteration end.
    pub const WATERFALL: &str = "waterfall";
    /// Batch scoring through a saved artifact (serving side, `safe-serve`).
    pub const SCORE: &str = "score";
    /// Durable checkpoint write after an iteration closes (crash safety).
    /// Emitted sink-only, outside the iteration framing span, so the
    /// report embedded in the checkpoint matches the uninterrupted run's.
    pub const CHECKPOINT: &str = "checkpoint";

    /// The seven core stages every completed iteration runs, in order.
    pub const CORE: [&str; 7] = [
        GBM_TRAIN,
        PATH_EXTRACT,
        RANK_COMBOS,
        GENERATE,
        IV_FILTER,
        REDUNDANCY,
        RANK_TOPK,
    ];
}
