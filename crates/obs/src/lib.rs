//! # safe-obs — pipeline telemetry: tracing spans, metrics, run reports
//!
//! A zero-dependency observability layer for the SAFE pipeline. Every
//! pipeline stage emits structured [`Event`]s — span boundaries
//! (`stage_start`/`stage_end` with wall time), counters, gauges, and
//! warnings — through an [`EventSink`] threaded through the run
//! configuration:
//!
//! - [`NullSink`] — the default; reports `enabled() == false` so call
//!   sites can skip event construction entirely,
//! - [`JsonlSink`] — one JSON object per line to any writer/file,
//! - [`MemorySink`] — collects events in memory for tests and report
//!   assembly,
//! - [`FanoutSink`] — tee to several sinks at once.
//!
//! From the instrumentation, [`ReportBuilder`] assembles a [`RunReport`]:
//! per-iteration, per-stage timings (integer microseconds), counters, and
//! the feature-count waterfall (generated → post-IV → post-redundancy →
//! post-top-k). The same report can be reassembled offline from collected
//! events via [`RunReport::from_events`].
//!
//! ## Stage-name vocabulary (stable contract)
//!
//! The seven core per-iteration stages, in pipeline order (see
//! [`stages::CORE`]): `gbm-train`, `path-extract`, `rank-combos`,
//! `generate`, `iv-filter`, `redundancy-filter`, `rank-topk`. Framing
//! spans use `iteration`; run-level events use `audit` and `waterfall`.
//! These names are a stable contract for downstream tooling
//! (`BENCH_pipeline.json`, `--trace-jsonl` consumers); renames are
//! breaking changes.
//!
//! ## JSONL schema
//!
//! Every line is one JSON object with at least `ts_us` (microseconds since
//! process telemetry epoch), `event` (one of `stage_start`, `stage_end`,
//! `counter`, `gauge`, `warn`, `observe`), and `stage`. Optional keys:
//! `iteration`, `name`, `value` (for `stage_end` this is the span duration
//! in microseconds; for `observe` the observed amount), `message`
//! (warnings only).
//!
//! ## Metrics and profiling (PR 7)
//!
//! [`metrics`] adds a zero-dependency labelled registry —
//! [`metrics::Counter`], [`metrics::Gauge`], and the deterministic
//! log2-bucketed [`LatencyHisto`] with exact merge and p50/p95/p99 — whose
//! [`MetricsSnapshot`] lands in `RunReport.metrics` and renders to
//! Prometheus text format via [`render_prometheus`]. Hot paths emit
//! sink-only `observe` events (per-round GBM timings, checkpoint writes,
//! scorer batches) replayed by [`MetricsSnapshot::from_events`]. [`trace`]
//! replays any recorded event stream into Chrome trace-event JSON
//! ([`trace::chrome_trace_json`], Perfetto-loadable) and folded-stack
//! flamegraph format ([`trace::folded_stacks`]). The optional
//! `alloc-metrics` feature adds a counting global allocator ([`alloc`]).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod trace;

pub use alloc::{alloc_metrics_enabled, alloc_snapshot, AllocSnapshot};
pub use metrics::{
    escape_label_value, render_prometheus, Counter, Gauge, LatencyHisto, MetricKey,
    MetricsRegistry, MetricsSnapshot,
};
pub use report::{
    IterationTelemetry, ReportBuilder, RunReport, StageGuard, StageTelemetry, Waterfall, WarnRecord,
};
pub use sink::{Event, EventKind, EventSink, FanoutSink, JsonlSink, MemorySink, NullSink, SinkHandle};
pub use trace::{chrome_trace_json, folded_stacks, validate_chrome_trace, ChromeTraceSummary};

/// The stable stage-name vocabulary.
pub mod stages {
    /// Miner/booster training on the current feature set.
    pub const GBM_TRAIN: &str = "gbm-train";
    /// Root→leaf-parent path harvesting and combination extraction.
    pub const PATH_EXTRACT: &str = "path-extract";
    /// Information-gain-ratio ranking of combinations (γ truncation).
    pub const RANK_COMBOS: &str = "rank-combos";
    /// Operator application over the kept combinations.
    pub const GENERATE: &str = "generate";
    /// Information-Value filter at α (Algorithm 3).
    pub const IV_FILTER: &str = "iv-filter";
    /// Pairwise Pearson redundancy removal at θ (Algorithm 4).
    pub const REDUNDANCY: &str = "redundancy-filter";
    /// Split-gain ranking and 2M cap (Section IV-C3).
    pub const RANK_TOPK: &str = "rank-topk";
    /// Successive-halving candidate pruning (staged selection mode only).
    /// Deliberately **not** part of [`CORE`]: exact-mode iterations never
    /// emit it, and staged-mode iterations emit it *in addition to* all
    /// seven core stages (the exact pass still runs on the finalists).
    pub const STAGED_PRUNE: &str = "staged-prune";
    /// Framing span around one SAFE iteration.
    pub const ITERATION: &str = "iteration";
    /// Pre-fit data audit (run level, before iteration 0).
    pub const AUDIT: &str = "audit";
    /// Feature-count waterfall gauges emitted at iteration end.
    pub const WATERFALL: &str = "waterfall";
    /// Batch scoring through a saved artifact (serving side, `safe-serve`).
    pub const SCORE: &str = "score";
    /// Durable checkpoint write after an iteration closes (crash safety).
    /// Emitted sink-only, outside the iteration framing span, so the
    /// report embedded in the checkpoint matches the uninterrupted run's.
    pub const CHECKPOINT: &str = "checkpoint";
    /// Out-of-core dataset backend summary (run level, chunked fits only):
    /// chunk-cache traffic and resident high-water mark. Excluded from
    /// [`crate::RunReport::structural_eq`] — backend placement is an
    /// execution-environment choice, never a computed result.
    pub const OOCORE: &str = "oocore";
    /// Long-lived scoring daemon span (`safe-serve`'s `ScoreService`):
    /// one span per service lifetime, with sink-only per-request
    /// `queue_wait_us` / `request_us` observe events and shutdown
    /// counters (requests, batches, swaps, workers). Not an iteration
    /// stage — never part of [`CORE`] or a `RunReport`.
    pub const SERVE: &str = "serve-daemon";

    /// The seven core stages every completed iteration runs, in order.
    pub const CORE: [&str; 7] = [
        GBM_TRAIN,
        PATH_EXTRACT,
        RANK_COMBOS,
        GENERATE,
        IV_FILTER,
        REDUNDANCY,
        RANK_TOPK,
    ];
}
