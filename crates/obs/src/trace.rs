//! Exporters that replay a recorded [`Event`] stream into external profiler
//! formats:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON (the
//!   `{"traceEvents": [...]}` envelope understood by Perfetto /
//!   `chrome://tracing`): spans become complete (`"X"`) events, counters and
//!   gauges become counter (`"C"`) samples, warnings become instants
//!   (`"i"`).
//! * [`folded_stacks`] — the folded-stack format consumed by
//!   `flamegraph.pl` / `inferno`: one `frame;frame;frame self_us` line per
//!   distinct stack, self time computed as span duration minus child span
//!   durations.
//! * [`validate_chrome_trace`] — structural validator used by
//!   `safe-cli trace-check --format chrome` and the test suite.
//!
//! The exporters are pure functions of the event slice: replaying the same
//! recorded stream always yields byte-identical output.

use crate::json;
use crate::sink::{Event, EventKind};

/// Render an event stream as Chrome trace-event JSON.
///
/// `stage_start` events carry no duration, so spans are emitted at the
/// matching `stage_end` as complete (`"X"`) events with
/// `ts = end.ts_us - duration`. All events share `pid 1`; `tid 1` keeps the
/// single-threaded pipeline timeline on one track. Counter/gauge/observe
/// events become `"C"` samples named after the metric; warnings become
/// global instant (`"i"`) events with the message in `args`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for e in events {
        let name = if e.name.is_empty() { &e.stage } else { &e.name };
        match e.kind {
            EventKind::StageStart => {} // represented by the matching X event
            EventKind::StageEnd => {
                let ts = e.ts_us.saturating_sub(e.value);
                parts.push(format!(
                    "{{\"name\":{},\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1{}}}",
                    json::escape(&e.stage),
                    ts,
                    e.value,
                    iteration_args(e),
                ));
            }
            EventKind::Counter | EventKind::Gauge | EventKind::Observe => {
                parts.push(format!(
                    "{{\"name\":{},\"cat\":\"metric\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{{{}:{}}}}}",
                    json::escape(name),
                    e.ts_us,
                    json::escape(name),
                    e.value,
                ));
            }
            EventKind::Warn => {
                parts.push(format!(
                    "{{\"name\":{},\"cat\":\"warn\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{{\"message\":{}}}}}",
                    json::escape(name),
                    e.ts_us,
                    json::escape(&e.message),
                ));
            }
        }
    }
    format!("{{\"traceEvents\":[{}]}}", parts.join(","))
}

fn iteration_args(e: &Event) -> String {
    match e.iteration {
        Some(i) => format!(",\"args\":{{\"iteration\":{i}}}"),
        None => String::new(),
    }
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total trace events.
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
}

/// Structurally validate Chrome trace-event JSON: the document must be an
/// object with a `traceEvents` array whose members each carry a string
/// `name`, a known `ph` (`X`, `C`, `i`, `B`, `E`, `M`), and a non-negative
/// numeric `ts`; `X` events additionally need a non-negative `dur`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level is not an object".to_string())?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or_else(|| "missing \"traceEvents\" key".to_string())?;
    let events = events
        .as_array()
        .ok_or_else(|| "\"traceEvents\" is not an array".to_string())?;
    let mut summary = ChromeTraceSummary { events: 0, spans: 0, counters: 0, instants: 0 };
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let field = |key: &str| ev.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"ph\""))?;
        if !matches!(ph, "X" | "C" | "i" | "B" | "E" | "M") {
            return Err(format!("traceEvents[{i}] has unknown ph {ph:?}"));
        }
        field("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"name\""))?;
        let ts = field("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("traceEvents[{i}] missing numeric \"ts\""))?;
        if ts < 0.0 {
            return Err(format!("traceEvents[{i}] has negative ts"));
        }
        match ph {
            "X" => {
                let dur = field("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("traceEvents[{i}] (ph=X) missing numeric \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}] has negative dur"));
                }
                summary.spans += 1;
            }
            "C" => summary.counters += 1,
            "i" => summary.instants += 1,
            _ => {}
        }
        summary.events += 1;
    }
    Ok(summary)
}

/// Render an event stream in folded-stack (flamegraph) format.
///
/// Spans are replayed with a LIFO stack: `stage_start` pushes a frame,
/// `stage_end` pops it and credits the frame's *self* time (duration minus
/// the summed durations of its direct children) to the `a;b;c` stack path.
/// Durations come from the `stage_end` value, so truncated streams simply
/// drop their unclosed frames. Lines are sorted lexicographically for
/// deterministic output; values are microseconds.
pub fn folded_stacks(events: &[Event]) -> String {
    struct Frame {
        stage: String,
        child_us: u64,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::StageStart => {
                stack.push(Frame { stage: e.stage.clone(), child_us: 0 });
            }
            EventKind::StageEnd => {
                // Pop until we find the matching frame; unmatched ends on an
                // empty stack are tolerated (truncated or PR 2-era streams).
                let pos = stack.iter().rposition(|f| f.stage == e.stage);
                let Some(pos) = pos else { continue };
                stack.truncate(pos + 1);
                let frame = match stack.pop() {
                    Some(f) => f,
                    None => continue,
                };
                let self_us = e.value.saturating_sub(frame.child_us);
                let mut path: Vec<&str> = stack.iter().map(|f| f.stage.as_str()).collect();
                path.push(&frame.stage);
                *folded.entry(path.join(";")).or_insert(0) += self_us;
                if let Some(parent) = stack.last_mut() {
                    parent.child_us = parent.child_us.saturating_add(e.value);
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{EventSink, MemorySink};

    fn sample_events() -> Vec<Event> {
        let sink = MemorySink::new();
        let s: &dyn EventSink = &sink;
        s.stage_start("iteration", Some(0));
        s.stage_start("gbm-train", Some(0));
        s.counter("gbm-train", Some(0), "gbm_rounds", 8);
        s.observe("gbm-train", Some(0), "gbm_round_us", 120);
        s.stage_end("gbm-train", Some(0), 500);
        s.warn("iteration", Some(0), "degraded", "stage \"x\" fell back");
        s.stage_end("iteration", Some(0), 900);
        sink.events()
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let text = chrome_trace_json(&sample_events());
        let summary = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.counters, 2); // counter + observe
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.events, 5);
    }

    #[test]
    fn chrome_span_ts_is_start_time() {
        let text = chrome_trace_json(&sample_events());
        let doc = json::parse(&text).expect("parses");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("array");
        let span = events
            .iter()
            .find(|e| {
                e.get("name").and_then(|v| v.as_str()) == Some("gbm-train")
                    && e.get("ph").and_then(|v| v.as_str()) == Some("X")
            })
            .expect("gbm-train span present");
        let ts = span.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = span.get("dur").and_then(|v| v.as_f64()).expect("dur");
        assert_eq!(dur, 500.0);
        assert!(ts >= 0.0);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Z\",\"name\":\"x\",\"ts\":0}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"ts\":0}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn folded_stacks_computes_self_time() {
        let text = folded_stacks(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // iteration self time = 900 - 500 (child gbm-train)
        assert!(lines.contains(&"iteration 400"), "got {lines:?}");
        assert!(lines.contains(&"iteration;gbm-train 500"), "got {lines:?}");
    }

    #[test]
    fn folded_stacks_tolerates_truncated_streams() {
        let mut events = sample_events();
        events.remove(0); // drop the opening iteration stage_start
        let text = folded_stacks(&events);
        // The unmatched iteration stage_end is skipped; gbm-train survives.
        assert_eq!(text, "gbm-train 500\n");
    }

    #[test]
    fn exporters_are_deterministic() {
        let events = sample_events();
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
        assert_eq!(folded_stacks(&events), folded_stacks(&events));
    }
}
