//! Minimal JSON support: string escaping for emission and a small
//! recursive-descent parser for validation and tests.
//!
//! The build environment has no registry access, so serde is unavailable;
//! this module covers exactly what the telemetry layer needs — emitting
//! flat event/report objects and validating that emitted lines parse back
//! as JSON with the required keys. It is not a general-purpose JSON
//! library (no `\u` surrogate-pair decoding beyond the BMP escape itself,
//! numbers parse as `f64`).

use std::fmt::Write as _;

/// Escape a string as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order (duplicate keys are kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl Value {
    /// Serialize back to compact JSON text. Object key order is preserved
    /// (parse → to_json round-trips structure exactly; numbers that are
    /// whole and within `u64`/`i64` range re-emit without a decimal point,
    /// so the common integer-valued documents round-trip byte-identically).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/Infinity; emit null rather than
                    // producing an unparseable document.
                    out.push_str("null");
                }
            }
            Value::String(s) => out.push_str(&escape(s)),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so it is valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".into());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "back\\slash", "unicode: γθα", "\u{1}control"] {
            let escaped = escape(s);
            let parsed = parse(&escaped).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{escaped}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-3.0));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12x", "{} trailing", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn to_json_round_trips() {
        for doc in [
            r#"{"a":[1,2,-3],"b":{"c":null,"d":true},"e":"x \"quoted\""}"#,
            r#"{"stages":[{"dataset":"gina","millis":1313}],"schema_version":2}"#,
            "[0.5,1.25,100]",
            "\"plain\"",
        ] {
            let v = parse(doc).unwrap();
            let emitted = v.to_json();
            assert_eq!(parse(&emitted).unwrap(), v, "{doc} -> {emitted}");
        }
        // Integer-valued documents round-trip byte-identically.
        let doc = r#"{"a":[1,2,-3],"b":null,"c":"x"}"#;
        assert_eq!(parse(doc).unwrap().to_json(), doc);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Value::Array(vec![]));
    }
}
