//! Event model and the sink implementations.

use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// Microseconds since the process-wide telemetry epoch (the first call).
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// What kind of telemetry event this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stage began (span open).
    StageStart,
    /// A stage ended; `value` carries the span duration in microseconds.
    StageEnd,
    /// A monotonic count observed during the open stage.
    Counter,
    /// A point-in-time measurement.
    Gauge,
    /// A structured warning (degradation, audit finding, failpoint trip).
    Warn,
    /// One latency/size observation destined for a histogram (`value`
    /// carries the observed amount). Sink-only: never folded into
    /// `RunReport` counters, so instrumented and resumed reports still
    /// compare `==`.
    Observe,
}

impl EventKind {
    /// Wire name used in the JSONL `event` key.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::StageStart => "stage_start",
            EventKind::StageEnd => "stage_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Warn => "warn",
            EventKind::Observe => "observe",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "stage_start" => Some(EventKind::StageStart),
            "stage_end" => Some(EventKind::StageEnd),
            "counter" => Some(EventKind::Counter),
            "gauge" => Some(EventKind::Gauge),
            "warn" => Some(EventKind::Warn),
            "observe" => Some(EventKind::Observe),
            _ => None,
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the telemetry epoch ([`now_us`]).
    pub ts_us: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Stage name from the [`crate::stages`] vocabulary.
    pub stage: String,
    /// Iteration the event belongs to (absent for run-level events).
    pub iteration: Option<usize>,
    /// Counter/gauge name, or a short warning code. Empty for spans.
    pub name: String,
    /// Counter/gauge value; for [`EventKind::StageEnd`] the span duration
    /// in microseconds; 0 otherwise.
    pub value: u64,
    /// Human-readable text (warnings only; empty otherwise).
    pub message: String,
}

impl Event {
    /// Construct with the current timestamp.
    pub fn new(kind: EventKind, stage: &str) -> Event {
        Event {
            ts_us: now_us(),
            kind,
            stage: stage.to_string(),
            iteration: None,
            name: String::new(),
            value: 0,
            message: String::new(),
        }
    }

    /// Serialize as one JSON object (no trailing newline). Key order is
    /// fixed (`ts_us`, `event`, `stage`, then optionals) so output diffs
    /// cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"event\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"stage\":");
        out.push_str(&json::escape(&self.stage));
        if let Some(i) = self.iteration {
            out.push_str(",\"iteration\":");
            out.push_str(&i.to_string());
        }
        if !self.name.is_empty() {
            out.push_str(",\"name\":");
            out.push_str(&json::escape(&self.name));
        }
        if self.value != 0
            || matches!(
                self.kind,
                EventKind::Counter | EventKind::Gauge | EventKind::StageEnd | EventKind::Observe
            )
        {
            out.push_str(",\"value\":");
            out.push_str(&self.value.to_string());
        }
        if !self.message.is_empty() {
            out.push_str(",\"message\":");
            out.push_str(&json::escape(&self.message));
        }
        out.push('}');
        out
    }
}

/// Receiver of telemetry events.
///
/// Implementations must be cheap and must never panic: telemetry is
/// side-effect-free with respect to pipeline results. I/O errors inside a
/// sink are swallowed (dropping telemetry is preferable to failing a fit).
pub trait EventSink: Send + Sync {
    /// Whether events will be observed at all. Call sites may (but need
    /// not) skip event construction when this is `false` — [`NullSink`]
    /// returns `false`, every other bundled sink `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush buffered output, if any.
    fn flush(&self) {}
}

// Helper constructors usable through any `&dyn EventSink`.
impl dyn EventSink + '_ {
    /// Emit a `stage_start` event.
    pub fn stage_start(&self, stage: &str, iteration: Option<usize>) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::StageStart, stage);
        e.iteration = iteration;
        self.record(&e);
    }

    /// Emit a `stage_end` event carrying the span duration in microseconds.
    pub fn stage_end(&self, stage: &str, iteration: Option<usize>, duration_us: u64) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::StageEnd, stage);
        e.iteration = iteration;
        e.value = duration_us;
        self.record(&e);
    }

    /// Emit a counter event.
    pub fn counter(&self, stage: &str, iteration: Option<usize>, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::Counter, stage);
        e.iteration = iteration;
        e.name = name.to_string();
        e.value = value;
        self.record(&e);
    }

    /// Emit a gauge event.
    pub fn gauge(&self, stage: &str, iteration: Option<usize>, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::Gauge, stage);
        e.iteration = iteration;
        e.name = name.to_string();
        e.value = value;
        self.record(&e);
    }

    /// Emit a histogram observation (`observe` event). Sink-only by
    /// contract: replayed into [`crate::metrics::MetricsSnapshot`] via
    /// `from_events`, never absorbed into report counters.
    pub fn observe(&self, stage: &str, iteration: Option<usize>, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::Observe, stage);
        e.iteration = iteration;
        e.name = name.to_string();
        e.value = value;
        self.record(&e);
    }

    /// Emit a structured warning.
    pub fn warn(&self, stage: &str, iteration: Option<usize>, code: &str, message: &str) {
        if !self.enabled() {
            return;
        }
        let mut e = Event::new(EventKind::Warn, stage);
        e.iteration = iteration;
        e.name = code.to_string();
        e.message = message.to_string();
        self.record(&e);
    }
}

/// The default sink: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Writes one JSON object per line to a writer. I/O errors are swallowed
/// after the first (the sink goes quiet rather than failing the run).
pub struct JsonlSink {
    writer: Mutex<Option<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Wrap any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { writer: Mutex::new(Some(writer)) }
    }

    /// Create/truncate a file and stream events to it.
    pub fn to_file(path: &str) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// Stream events to stderr (useful for live tracing).
    pub fn to_stderr() -> JsonlSink {
        JsonlSink::new(Box::new(std::io::stderr()))
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut guard = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(w) = guard.as_mut() {
            let line = event.to_json();
            if writeln!(w, "{line}").is_err() {
                *guard = None; // go quiet on a broken writer
            }
        }
    }

    fn flush(&self) {
        let mut guard = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Collects every event in memory — for tests and offline report assembly.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        let mut guard = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.push(event.clone());
    }
}

/// Tees events to several sinks.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl FanoutSink {
    /// Compose the given sinks.
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: &Event) {
        for s in &self.sinks {
            if s.enabled() {
                s.record(event);
            }
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Cloneable, Debug-friendly handle to a shared sink — the form a sink
/// takes inside a run configuration (`SafeConfig` derives `Clone` and
/// `Debug`; a bare `&dyn EventSink` would infect it with a lifetime).
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn EventSink>);

impl SinkHandle {
    /// Wrap a sink.
    pub fn new(sink: Arc<dyn EventSink>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Handle to the default [`NullSink`].
    pub fn null() -> SinkHandle {
        SinkHandle(Arc::new(NullSink))
    }

    /// Borrow the sink as a trait object.
    pub fn as_dyn(&self) -> &dyn EventSink {
        &*self.0
    }

    /// Whether the underlying sink observes events.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }
}

impl Default for SinkHandle {
    fn default() -> SinkHandle {
        SinkHandle::null()
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SinkHandle(enabled={})", self.0.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        let s: &dyn EventSink = &sink;
        s.counter("iv-filter", Some(0), "kept", 3); // must be a no-op
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        let s: &dyn EventSink = &sink;
        s.stage_start("iv-filter", Some(0));
        s.counter("iv-filter", Some(0), "kept", 7);
        s.stage_end("iv-filter", Some(0), 123);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::StageStart);
        assert_eq!(events[1].name, "kept");
        assert_eq!(events[1].value, 7);
        assert_eq!(events[2].value, 123);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn jsonl_lines_are_valid_json_with_required_keys() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for VecWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(VecWriter(buf.clone())));
        let s: &dyn EventSink = &sink;
        s.stage_start("generate", Some(1));
        s.warn("iteration", Some(1), "degraded", "stage \"mine\" failed\nbadly");
        s.stage_end("generate", Some(1), 42);
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            let obj = v.as_object().unwrap();
            for key in ["ts_us", "event", "stage"] {
                assert!(obj.iter().any(|(k, _)| k == key), "missing {key}: {line}");
            }
        }
    }

    #[test]
    fn fanout_reaches_all_members() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone(), Arc::new(NullSink)]);
        assert!(fan.enabled());
        let s: &dyn EventSink = &fan;
        s.gauge("waterfall", Some(0), "selected", 9);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn event_kind_roundtrip() {
        for kind in [
            EventKind::StageStart,
            EventKind::StageEnd,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Warn,
            EventKind::Observe,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn handle_default_is_null() {
        let h = SinkHandle::default();
        assert!(!h.enabled());
        let h2 = h.clone();
        assert!(format!("{h2:?}").contains("enabled=false"));
    }
}
