//! Zero-dependency metrics primitives: counters, gauges, a deterministic
//! log2-bucketed latency histogram, a labelled registry, and a Prometheus
//! text-exposition renderer.
//!
//! Everything here is exact integer arithmetic — no floating-point
//! accumulation — so snapshots, merges, and quantiles are bit-identical
//! regardless of thread count or merge order. That property is load-bearing:
//! the differential suites assert that instrumented runs produce the same
//! reports as uninstrumented ones, and histogram state must never introduce
//! nondeterminism.
//!
//! Two recording paths exist, mirroring the sink-only contract from the
//! checkpoint layer (DESIGN.md §13/§14):
//!
//! * **Report-side**: [`crate::ReportBuilder`] owns a [`MetricsRegistry`];
//!   stage guards observe their own latency into it and the snapshot lands in
//!   `RunReport.metrics`. The field is excluded from `RunReport`'s `==` so
//!   resumed reports still compare equal.
//! * **Sink-only**: hot paths (per-round GBM timings, checkpoint writes,
//!   per-batch scorer latency) emit [`crate::EventKind::Observe`] events and
//!   never touch the report. [`MetricsSnapshot::from_events`] replays them
//!   into histograms after the fact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sink::{Event, EventKind};

/// Number of histogram buckets: one for zero plus one per power of two up to
/// `u64::MAX` (bucket 64 covers `[2^63, u64::MAX]`).
pub const HISTO_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter, usable from a `static`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero (`const`, so it can back a `static`).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge holding a signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero (`const`, so it can back a `static`).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replace the gauge value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value: 0 holds exactly the value 0, bucket
/// `i >= 1` holds `[2^(i-1), 2^i - 1]`. Pure integer function of the value,
/// so identical on every platform and thread count.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value reported by quantiles that
/// land in the bucket). Bucket 64's bound is `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A deterministic log2-bucketed latency histogram.
///
/// Merging is exact (element-wise bucket addition), so sharding observations
/// across threads and merging in any order yields bit-identical state to a
/// serial recording of the same multiset of values. Quantiles are a pure
/// function of the bucket counts: `quantile(q)` returns the upper bound of
/// the bucket containing the rank-`ceil(q·count)` observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto { buckets: [0; HISTO_BUCKETS], count: 0, sum: 0 }
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (typically microseconds, but unit-agnostic).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Exact merge: element-wise bucket addition. Associative and
    /// commutative, so any merge tree over the same observations is
    /// bit-identical.
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (index via [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; HISTO_BUCKETS] {
        &self.buckets
    }

    /// Quantile estimate: upper bound of the bucket containing the
    /// observation at rank `ceil(q·count)` (1-based, clamped to
    /// `[1, count]`). Returns 0 for an empty histogram. `q` outside
    /// `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without float drift for the common q values:
        // q is a short decimal, count is exact, and the product is far below
        // 2^52, so the f64 ceil is exact for every realistic histogram.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTO_BUCKETS - 1)
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty `(bucket_index, count)` pairs in ascending index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

/// Identity of a metric: name plus sorted label pairs. Ordered, so registry
/// snapshots are deterministic regardless of registration order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (free-form; sanitized only at Prometheus render time).
    pub name: String,
    /// Label pairs, kept sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key, sorting the labels for a canonical ordering.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histos: BTreeMap<MetricKey, LatencyHisto>,
}

/// A thread-safe labelled metrics registry. Snapshots are sorted by metric
/// key, so two registries fed the same observations — in any order, from any
/// number of threads — snapshot identically (counter sums and histogram
/// merges are exact integer arithmetic).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned lock only means another thread panicked mid-update;
        // the integer state is still coherent, so keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to the counter identified by `name` + `labels`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        *self.locked().counters.entry(key).or_insert(0) += delta;
    }

    /// Set the gauge identified by `name` + `labels`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        let key = MetricKey::new(name, labels);
        self.locked().gauges.insert(key, value);
    }

    /// Record one observation into the histogram identified by `name` +
    /// `labels`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = MetricKey::new(name, labels);
        self.locked().histos.entry(key).or_default().record(value);
    }

    /// Merge a whole histogram into the one identified by `name` + `labels`.
    pub fn observe_histo(&self, name: &str, labels: &[(&str, &str)], histo: &LatencyHisto) {
        let key = MetricKey::new(name, labels);
        self.locked().histos.entry(key).or_default().merge(histo);
    }

    /// Deterministic point-in-time copy of every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner
                .histos
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }
}

/// An immutable, sorted snapshot of a [`MetricsRegistry`] (or of a replayed
/// event stream). Embedded in `RunReport.metrics` — write-only with respect
/// to report equality: the field is ignored by `RunReport`'s `==` and not
/// restored from checkpoints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter samples, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge samples, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram samples, sorted by key.
    pub histograms: Vec<(MetricKey, LatencyHisto)>,
}

impl MetricsSnapshot {
    /// True when the snapshot holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Replay an event stream, folding every [`EventKind::Observe`] event
    /// into a histogram keyed by the event's `name` with a `stage` label.
    /// All other event kinds are ignored — they are already represented in
    /// the report. Deterministic: the stream order fixes the state, and
    /// histogram merge is exact, so re-sharding the same events yields the
    /// same snapshot.
    pub fn from_events(events: &[Event]) -> Self {
        let registry = MetricsRegistry::new();
        for e in events {
            if e.kind == EventKind::Observe {
                if e.stage.is_empty() {
                    registry.observe(&e.name, &[], e.value);
                } else {
                    registry.observe(&e.name, &[("stage", e.stage.as_str())], e.value);
                }
            }
        }
        registry.snapshot()
    }

    /// Exact merge of two snapshots: counters add, gauges take `other`'s
    /// value on collision, histograms merge bucket-wise. Result is sorted.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters: BTreeMap<MetricKey, u64> = self.counters.iter().cloned().collect();
        for (k, v) in &other.counters {
            *counters.entry(k.clone()).or_insert(0) += v;
        }
        let mut gauges: BTreeMap<MetricKey, i64> = self.gauges.iter().cloned().collect();
        for (k, v) in &other.gauges {
            gauges.insert(k.clone(), *v);
        }
        let mut histograms: BTreeMap<MetricKey, LatencyHisto> =
            self.histograms.iter().cloned().collect();
        for (k, h) in &other.histograms {
            histograms.entry(k.clone()).or_default().merge(h);
        }
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// Compact JSON rendering, embedded by `RunReport::to_json` under the
    /// `"metrics"` key. Write-only: `RunReport::from_json` ignores the
    /// section (metrics are never restored from checkpoints).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn labels_json(labels: &[(String, String)]) -> String {
            let mut out = String::from("{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&crate::json::escape(k));
                out.push(':');
                out.push_str(&crate::json::escape(v));
            }
            out.push('}');
            out
        }
        let mut out = String::from("{\"counters\":[");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                crate::json::escape(&k.name),
                labels_json(&k.labels),
                v
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                crate::json::escape(&k.name),
                labels_json(&k.labels),
                v
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                crate::json::escape(&k.name),
                labels_json(&k.labels),
                h.count(),
                h.sum(),
                h.p50(),
                h.p95(),
                h.p99(),
            );
            for (j, (idx, n)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Look up a histogram by name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LatencyHisto> {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }
}

/// Sanitize a metric name for Prometheus: `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
/// These three rules are exactly the text-exposition-format spec and are
/// pinned by unit + property tests.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4). Metric names are prefixed with `safe_` and sanitized; histogram
/// buckets are emitted sparsely (only non-empty buckets, cumulative counts)
/// plus the mandatory `+Inf` bucket, `_sum`, and `_count` series.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<(String, &'static str)> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
        let tagged = (name.to_string(), kind);
        if last_typed.as_ref() != Some(&tagged) {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_typed = Some(tagged);
        }
    };
    for (key, value) in &snapshot.counters {
        let name = format!("safe_{}", prom_name(&key.name));
        type_line(&mut out, &name, "counter");
        out.push_str(&format!("{}{} {}\n", name, prom_labels(&key.labels, None), value));
    }
    for (key, value) in &snapshot.gauges {
        let name = format!("safe_{}", prom_name(&key.name));
        type_line(&mut out, &name, "gauge");
        out.push_str(&format!("{}{} {}\n", name, prom_labels(&key.labels, None), value));
    }
    for (key, histo) in &snapshot.histograms {
        let name = format!("safe_{}", prom_name(&key.name));
        type_line(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for (i, n) in histo.nonzero_buckets() {
            cumulative += n;
            let le = bucket_upper_bound(i);
            let le = if i >= 64 {
                "+Inf".to_string()
            } else {
                le.to_string()
            };
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                prom_labels(&key.labels, Some(("le", &le))),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            prom_labels(&key.labels, Some(("le", "+Inf"))),
            histo.count()
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            name,
            prom_labels(&key.labels, None),
            histo.sum()
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            name,
            prom_labels(&key.labels, None),
            histo.count()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHisto::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        // ranks: p50 -> 3rd of 5 -> value 3 -> bucket 2 -> upper 3
        assert_eq!(h.p50(), 3);
        // p99 -> rank 5 -> value 1000 -> bucket 10 -> upper 1023
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = LatencyHisto::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let values: Vec<u64> = (0..1000).map(|i| (i * 37) % 5000).collect();
        let mut serial = LatencyHisto::new();
        for &v in &values {
            serial.record(v);
        }
        // Shard 4 ways, merge in two different orders.
        let mut shards = vec![LatencyHisto::new(); 4];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 4].record(v);
        }
        let mut fwd = LatencyHisto::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = LatencyHisto::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, serial);
        assert_eq!(rev, serial);
        assert_eq!(fwd.p50(), serial.p50());
        assert_eq!(fwd.p95(), serial.p95());
        assert_eq!(fwd.p99(), serial.p99());
    }

    #[test]
    fn registry_snapshot_is_sorted_and_deterministic() {
        let r = MetricsRegistry::new();
        r.observe("z_metric", &[], 5);
        r.counter_add("a_counter", &[("stage", "gbm-train")], 2);
        r.counter_add("a_counter", &[("stage", "gbm-train")], 3);
        r.gauge_set("g", &[], -7);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 5);
        assert_eq!(snap.gauges[0].1, -7);
        assert_eq!(snap.histograms[0].0.name, "z_metric");

        // Same observations, different order -> identical snapshot.
        let r2 = MetricsRegistry::new();
        r2.gauge_set("g", &[], -7);
        r2.counter_add("a_counter", &[("stage", "gbm-train")], 5);
        r2.observe("z_metric", &[], 5);
        assert_eq!(r2.snapshot(), snap);
    }

    #[test]
    fn from_events_replays_only_observe_events() {
        let events = vec![
            Event {
                ts_us: 10,
                kind: EventKind::Observe,
                stage: "gbm-train".to_string(),
                iteration: Some(0),
                name: "gbm_round_us".to_string(),
                value: 120,
                message: String::new(),
            },
            Event {
                ts_us: 11,
                kind: EventKind::Counter,
                stage: "gbm-train".to_string(),
                iteration: Some(0),
                name: "rows".to_string(),
                value: 400,
                message: String::new(),
            },
            Event {
                ts_us: 12,
                kind: EventKind::Observe,
                stage: "gbm-train".to_string(),
                iteration: Some(0),
                name: "gbm_round_us".to_string(),
                value: 90,
                message: String::new(),
            },
        ];
        let snap = MetricsSnapshot::from_events(&events);
        assert!(snap.counters.is_empty());
        let h = snap
            .histogram("gbm_round_us", &[("stage", "gbm-train")])
            .expect("histogram present");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 210);
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.observe("h", &[], 10);
        let b = MetricsRegistry::new();
        b.counter_add("c", &[], 2);
        b.observe("h", &[], 20);
        b.gauge_set("g", &[], 9);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.counters[0].1, 3);
        assert_eq!(merged.gauges[0].1, 9);
        let h = merged.histogram("h", &[]).expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn prometheus_rendering_is_pinned() {
        let r = MetricsRegistry::new();
        r.counter_add("rows_scored", &[("dataset", "gina")], 42);
        r.gauge_set("alloc_peak_bytes", &[], 1024);
        r.observe("stage_us", &[("stage", "gbm-train")], 3);
        r.observe("stage_us", &[("stage", "gbm-train")], 1000);
        let text = render_prometheus(&r.snapshot());
        let expected = "\
# TYPE safe_rows_scored counter
safe_rows_scored{dataset=\"gina\"} 42
# TYPE safe_alloc_peak_bytes gauge
safe_alloc_peak_bytes 1024
# TYPE safe_stage_us histogram
safe_stage_us_bucket{stage=\"gbm-train\",le=\"3\"} 1
safe_stage_us_bucket{stage=\"gbm-train\",le=\"1023\"} 2
safe_stage_us_bucket{stage=\"gbm-train\",le=\"+Inf\"} 2
safe_stage_us_sum{stage=\"gbm-train\"} 1003
safe_stage_us_count{stage=\"gbm-train\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_label_escaping_is_pinned() {
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("k", "v\\w\"x\ny")], 1);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("safe_c{k=\"v\\\\w\\\"x\\ny\"} 1"));
    }

    #[test]
    fn snapshot_json_parses_back() {
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("stage", "iv-filter")], 3);
        r.observe("stage_us", &[("stage", "gbm-train")], 100);
        let text = r.snapshot().to_json();
        let v = crate::json::parse(&text).expect("metrics JSON parses");
        let counters = v.get("counters").and_then(|c| c.as_array()).expect("counters");
        assert_eq!(counters.len(), 1);
        let histos = v.get("histograms").and_then(|h| h.as_array()).expect("histograms");
        assert_eq!(histos[0].get("count").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(histos[0].get("p50").and_then(|n| n.as_u64()), Some(127));
    }

    #[test]
    fn metric_names_are_sanitized() {
        let r = MetricsRegistry::new();
        r.counter_add("gbm-train.time", &[], 1);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("safe_gbm_train_time 1"));
    }
}
