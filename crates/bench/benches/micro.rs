//! Criterion micro-benchmarks for the statistical primitives on the SAFE
//! hot path: Information Value, Pearson, gain ratio, binning, and AUC.
//! These are the per-feature/per-pair kernels whose cost Section IV-D's
//! complexity analysis counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use safe_data::binning::{bin_column, BinStrategy};
use safe_stats::auc::auc;
use safe_stats::entropy::{gain_ratio, joint_cells};
use safe_stats::iv::information_value;
use safe_stats::pearson::pearson;

fn column(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mix high and low bits to avoid lattice artifacts.
            let bits = (state >> 11) ^ (state << 7);
            (bits % 100_000) as f64 / 1000.0
        })
        .collect()
}

fn labels_for(values: &[f64]) -> Vec<u8> {
    let mid = 50.0;
    values.iter().map(|&v| (v > mid) as u8).collect()
}

fn bench_iv(c: &mut Criterion) {
    let mut group = c.benchmark_group("information_value");
    for n in [10_000usize, 100_000] {
        let values = column(n, 1);
        let labels = labels_for(&values);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| information_value(&values, &labels, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_pearson(c: &mut Criterion) {
    let mut group = c.benchmark_group("pearson");
    for n in [10_000usize, 100_000] {
        let x = column(n, 2);
        let y = column(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| pearson(&x, &y))
        });
    }
    group.finish();
}

fn bench_gain_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("gain_ratio_pair");
    for n in [10_000usize, 100_000] {
        let x = column(n, 4);
        let y = column(n, 5);
        let labels = labels_for(&x);
        let ax = bin_column(&x, 8, BinStrategy::EqualFrequency).unwrap();
        let ay = bin_column(&y, 8, BinStrategy::EqualFrequency).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (cells, n_cells) =
                    joint_cells(&[(&ax.bins, ax.n_bins), (&ay.bins, ay.n_bins)]);
                gain_ratio(&cells, &labels, n_cells)
            })
        });
    }
    group.finish();
}

fn bench_binning(c: &mut Criterion) {
    let mut group = c.benchmark_group("equal_frequency_binning");
    for n in [10_000usize, 100_000] {
        let values = column(n, 6);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bin_column(&values, 10, BinStrategy::EqualFrequency).unwrap())
        });
    }
    group.finish();
}

fn bench_auc(c: &mut Criterion) {
    let mut group = c.benchmark_group("auc");
    for n in [10_000usize, 100_000] {
        let scores = column(n, 7);
        let labels = labels_for(&column(n, 8));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| auc(&scores, &labels))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_iv,
    bench_pearson,
    bench_gain_ratio,
    bench_binning,
    bench_auc
);
criterion_main!(benches);
