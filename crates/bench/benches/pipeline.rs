//! Criterion benchmarks of the composite stages: GBM training, path
//! extraction (combination mining), and the SAFE pipeline end-to-end —
//! plus the ablation the §IV-D analysis implies: SAFE cost as the miner's
//! tree count K grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use safe_core::combine::{mine_combinations, rank_combinations};
use safe_core::{Safe, SafeConfig};
use safe_datagen::synth::{generate, SyntheticConfig};
use safe_gbm::booster::Gbm;
use safe_gbm::config::GbmConfig;

fn dataset(n: usize) -> safe_data::dataset::Dataset {
    generate(&SyntheticConfig {
        n_rows: n,
        dim: 20,
        n_signal: 6,
        n_interactions: 4,
        ..Default::default()
    })
}

fn bench_gbm_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbm_train_miner");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let ds = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap())
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("combination_mining");
    group.sample_size(10);
    let ds = dataset(4_000);
    let model = Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap();
    group.bench_function("mine_paths", |b| b.iter(|| mine_combinations(&model, 2)));
    let combos = mine_combinations(&model, 2);
    group.bench_function("rank_by_gain_ratio", |b| {
        b.iter(|| rank_combinations(combos.clone(), &ds, 30))
    });
    group.finish();
}

fn bench_safe_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("safe_pipeline");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let ds = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Safe::paper().fit(&ds, None).unwrap())
        });
    }
    group.finish();
}

fn bench_safe_vs_trees(c: &mut Criterion) {
    // Ablation: Eq. 13 says cost is governed by K (miner trees). Sweep K.
    let mut group = c.benchmark_group("safe_tree_count_ablation");
    group.sample_size(10);
    let ds = dataset(4_000);
    for k in [5usize, 20, 40] {
        let config = SafeConfig {
            miner: GbmConfig { n_rounds: k, ..GbmConfig::miner() },
            ..SafeConfig::paper()
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| Safe::new(config.clone()).fit(&ds, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gbm_train,
    bench_mining,
    bench_safe_end_to_end,
    bench_safe_vs_trees
);
criterion_main!(benches);
