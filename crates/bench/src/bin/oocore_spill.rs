//! Out-of-core backend sweep: fit SAFE on a spill-backed chunked dataset
//! whose f64 table is ≥10× the resident chunk budget, against its fully
//! resident twin.
//!
//! Three contracts are asserted before any row is recorded (the benchmark
//! is also the acceptance harness for DESIGN.md's out-of-core section):
//!
//! 1. **Bit identity** — the spilled fit's plan text and downstream AUC
//!    bits equal the resident fit's.
//! 2. **Bounded residency** — the chunk cache's high-water mark stays
//!    within the configured budget plus one in-flight chunk (insertion
//!    happens before eviction under the same lock).
//! 3. **Scale** — the logical table is at least `--min-ratio` (default 10)
//!    times the budget, so the fit demonstrably ran out-of-core.
//!
//! Results land in the `oocore` section of `BENCH_pipeline.json`; all
//! other sections pass through untouched.

use std::time::Instant;

use safe_bench::{
    bench_pipeline_path, pipeline_json, read_pipeline_document, Flags, OocoreRow, TablePrinter,
};
use safe_core::{Safe, SafeConfig};
use safe_data::chunk::ChunkOptions;
use safe_data::dataset::Dataset;
use safe_data::split::train_test_split;
use safe_datagen::synth::{generate, SyntheticConfig};
use safe_models::classifier::{evaluate_auc, ClassifierKind};

const DATASET: &str = "synth-oocore";

/// Fit SAFE and score the resulting plan downstream, returning
/// `(plan_text, auc, fit_secs)`. The AUC evaluation always runs on the
/// resident base so both backends are scored on identical bytes.
fn fit_and_score(data: &Dataset, eval_base: &Dataset, seed: u64) -> (String, f64, f64) {
    let config = SafeConfig { seed, n_iterations: 1, ..SafeConfig::paper() };
    let t0 = Instant::now();
    let outcome = Safe::new(config).fit(data, None).expect("SAFE fit failed");
    let secs = t0.elapsed().as_secs_f64();
    let (train, test) = train_test_split(eval_base, 0.3, 1).expect("split failed");
    let train_f = outcome.plan.apply(&train).expect("plan apply (train) failed");
    let test_f = outcome.plan.apply(&test).expect("plan apply (test) failed");
    let auc = evaluate_auc(ClassifierKind::Xgb, &train_f, &test_f, 9).expect("eval failed");
    (outcome.plan.to_text(), auc, secs)
}

fn main() {
    let flags = Flags::from_env();
    let rows: usize = flags.get_or("rows", 8_192);
    let cols: usize = flags.get_or("cols", 40);
    let chunk_rows: usize = flags.get_or("chunk-rows", 64);
    let resident_chunks: usize = flags.get_or("resident-chunks", 12);
    let min_ratio: f64 = flags.get_or("min-ratio", 10.0);
    let seed: u64 = flags.get_or("seed", 7);

    let base = generate(&SyntheticConfig {
        n_rows: rows,
        dim: cols,
        n_signal: 6,
        n_interactions: 3,
        noise: 0.2,
        missing_rate: 0.1,
        seed,
        ..Default::default()
    });

    let spill_root = std::env::temp_dir().join("safe-oocore-bench");
    let opts = ChunkOptions::spilled(chunk_rows, resident_chunks, &spill_root);
    let spilled = base.to_chunked(opts).expect("chunked twin failed");
    let store = *spilled.chunk_stores().first().expect("chunked twin has a store");
    let budget = store.budget_bytes().expect("spilled store has a budget");
    let table = store.table_bytes();
    let ratio = table as f64 / budget as f64;
    println!(
        "Out-of-core sweep: {rows} rows x {cols} cols ({table} B) against a \
         {budget} B budget ({resident_chunks} x {chunk_rows}-row chunks, {ratio:.1}x)"
    );
    assert!(
        ratio >= min_ratio,
        "table must be >= {min_ratio}x the resident budget to demonstrate \
         out-of-core operation; got {ratio:.1}x — raise --rows or lower \
         --resident-chunks"
    );

    let (resident_plan, resident_auc, resident_secs) = fit_and_score(&base, &base, seed);
    let (spilled_plan, spilled_auc, spilled_secs) = fit_and_score(&spilled, &base, seed);
    let stats = store.stats();

    // Contract 1: the backend is a placement choice, never a result change.
    assert_eq!(
        resident_plan, spilled_plan,
        "spilled fit produced a different plan than the resident fit"
    );
    assert_eq!(
        resident_auc.to_bits(),
        spilled_auc.to_bits(),
        "spilled fit AUC diverged: resident {resident_auc} vs spilled {spilled_auc}"
    );
    // Contract 2: residency stayed within budget (+ one in-flight chunk).
    let chunk_bytes = (chunk_rows * cols * std::mem::size_of::<f64>()) as u64;
    assert!(
        stats.peak_resident_bytes <= budget + chunk_bytes,
        "peak resident {} B exceeded budget {} B (+{} B chunk slack)",
        stats.peak_resident_bytes,
        budget,
        chunk_bytes
    );

    let t = TablePrinter::new(
        &["backend", "secs", "auc", "peak B", "hits", "loads", "evict"],
        &[10, 8, 8, 12, 10, 10, 8],
    );
    t.row(&[
        "resident",
        &format!("{resident_secs:.2}"),
        &format!("{resident_auc:.4}"),
        &format!("{table}"),
        "-",
        "-",
        "-",
    ]);
    t.row(&[
        "spilled",
        &format!("{spilled_secs:.2}"),
        &format!("{spilled_auc:.4}"),
        &format!("{}", stats.peak_resident_bytes),
        &format!("{}", stats.hits),
        &format!("{}", stats.loads),
        &format!("{}", stats.evictions),
    ]);

    let oocore = vec![
        OocoreRow {
            dataset: DATASET.into(),
            backend: "resident".into(),
            rows: rows as u64,
            cols: cols as u64,
            chunk_rows: 0,
            table_bytes: table,
            budget_bytes: table,
            peak_resident_bytes: table,
            chunk_hits: 0,
            chunk_loads: 0,
            evictions: 0,
            secs: resident_secs,
            auc: resident_auc,
        },
        OocoreRow {
            dataset: DATASET.into(),
            backend: "spilled".into(),
            rows: rows as u64,
            cols: cols as u64,
            chunk_rows: chunk_rows as u64,
            table_bytes: table,
            budget_bytes: budget,
            peak_resident_bytes: stats.peak_resident_bytes,
            chunk_hits: stats.hits,
            chunk_loads: stats.loads,
            evictions: stats.evictions,
            secs: spilled_secs,
            auc: spilled_auc,
        },
    ];

    let path = bench_pipeline_path();
    let existing = read_pipeline_document(&path);
    std::fs::write(
        &path,
        pipeline_json(&safe_bench::PipelineDocument { oocore, ..existing }),
    )
    .expect("failed to write BENCH_pipeline.json");
    println!("oocore section written to {path}");
}
