//! §IV-D — empirical complexity check.
//!
//! Eq. (13): `O_SAFE = O(N·K₁(K₁+K₂))` — linear in the record count N, and
//! controlled by the miner/ranker tree counts K. This sweep times SAFE over
//! geometric N and K grids so the scaling exponents can be eyeballed (a
//! doubling of N should roughly double the time; K enters quadratically
//! through the candidate count in the worst case, but the γ cap tames it).

use std::time::Instant;

use safe_bench::{Flags, TablePrinter};
use safe_core::{Safe, SafeConfig};
use safe_datagen::synth::{generate, SyntheticConfig};
use safe_gbm::config::GbmConfig;

fn time_safe(n_rows: usize, dim: usize, k_trees: usize, seed: u64) -> f64 {
    let ds = generate(&SyntheticConfig {
        n_rows,
        dim,
        n_signal: (dim / 4).max(2),
        ..Default::default()
    });
    let config = SafeConfig::builder()
        .miner(GbmConfig {
            n_rounds: k_trees,
            ..GbmConfig::miner()
        })
        .ranker(GbmConfig {
            n_rounds: k_trees,
            ..GbmConfig::miner()
        })
        .seed(seed)
        .build()
        .expect("valid sweep config");
    let start = Instant::now();
    let _ = Safe::new(config).fit(&ds, None).expect("pipeline runs");
    start.elapsed().as_secs_f64()
}

fn main() {
    let flags = Flags::from_env();
    let seed: u64 = flags.get_or("seed", 42);
    let dim: usize = flags.get_or("dim", 20);
    let base_n: usize = flags.get_or("base-n", 2_000);

    println!("SAFE complexity sweep (Eq. 13: time ~ N * K1*(K1+K2))\n");

    println!("N sweep (K = 20 trees, dim = {dim}):");
    let t = TablePrinter::new(&["N", "seconds", "sec/N x1e6"], &[10, 10, 12]);
    let mut last: Option<(usize, f64)> = None;
    for mult in [1usize, 2, 4, 8] {
        let n = base_n * mult;
        let secs = time_safe(n, dim, 20, seed);
        t.row(&[
            &n.to_string(),
            &format!("{secs:.3}"),
            &format!("{:.3}", secs / n as f64 * 1e6),
        ]);
        if let Some((pn, ps)) = last {
            let growth = secs / ps;
            let n_growth = n as f64 / pn as f64;
            println!(
                "    growth x{growth:.2} for N x{n_growth:.0} (linear would be x{n_growth:.0})"
            );
        }
        last = Some((n, secs));
    }

    println!("\nK sweep (N = {base_n}, dim = {dim}):");
    let t = TablePrinter::new(&["K trees", "seconds"], &[10, 10]);
    for k in [5usize, 10, 20, 40] {
        let secs = time_safe(base_n, dim, k, seed);
        t.row(&[&k.to_string(), &format!("{secs:.3}")]);
    }
}
