//! Serving throughput: the naive per-row loop (`apply_row` + `predict_row`,
//! fresh buffers every call) against `safe_serve::ScorerHandle`'s
//! micro-batched, buffer-reusing path, at several worker budgets.
//!
//! Both paths must produce bit-identical scores — the benchmark asserts it
//! on every configuration before recording a row. Results land in the
//! `serving` section of `BENCH_pipeline.json`; the `stages` and `parallel`
//! sections written by `table5_execution_time` are passed through untouched.

use std::time::Instant;

use safe_bench::{
    bench_pipeline_path, pipeline_json, read_pipeline_document, Flags, ServingRow, TablePrinter,
};
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::dataset::Dataset;
use safe_gbm::GbmConfig;
use safe_ops::registry::OperatorRegistry;
use safe_serve::{SafeArtifact, ScorerHandle, DEFAULT_BATCH_SIZE};

const DATASET: &str = "synth-serving";
const N_INPUTS: usize = 6;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// A plan exercising every arithmetic operator over six raw inputs, keeping
/// all raw and generated columns (10 scoring features).
fn serving_plan() -> FeaturePlan {
    let input_names: Vec<String> = (0..N_INPUTS).map(|i| format!("x{i}")).collect();
    let step = |name: &str, op: &str, a: usize, b: usize| PlanStep {
        name: name.into(),
        op: op.into(),
        parents: vec![format!("x{a}"), format!("x{b}")],
        params: vec![],
    };
    let steps = vec![
        step("mul(x0,x1)", "mul", 0, 1),
        step("div(x2,x3)", "div", 2, 3),
        step("add(x4,x5)", "add", 4, 5),
        step("sub(x0,x2)", "sub", 0, 2),
    ];
    let mut outputs = input_names.clone();
    outputs.extend(steps.iter().map(|s| s.name.clone()));
    FeaturePlan { input_names, steps, outputs }
}

fn training_data(seed: u64, n: usize) -> Dataset {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut cols = vec![Vec::with_capacity(n); N_INPUTS];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..N_INPUTS).map(|_| lcg(&mut state)).collect();
        let signal = row[0] * row[1] - 0.5 * row[2] + 0.3 * (row[4] + row[5]);
        for (c, v) in cols.iter_mut().zip(&row) {
            c.push(*v);
        }
        labels.push(u8::from(signal > 0.0));
    }
    let names = (0..N_INPUTS).map(|i| format!("x{i}")).collect();
    Dataset::from_columns(names, cols, Some(labels)).expect("rectangular columns")
}

fn scoring_rows(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x51afd36d) | 1;
    (0..n * N_INPUTS).map(|_| lcg(&mut state)).collect()
}

fn main() {
    let flags = Flags::from_env();
    let n_rows: usize = flags.get_or("rows", 100_000);
    let seed: u64 = flags.get_or("seed", 42);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    println!(
        "Serving throughput: {n_rows} rows x {N_INPUTS} raw features \
         ({} scoring features), seed={seed}, {cores} core(s) available\n",
        serving_plan().outputs.len()
    );

    let registry = OperatorRegistry::standard();
    let artifact = SafeArtifact::train(
        &serving_plan(),
        &registry,
        &training_data(seed, 2_000),
        None,
        &GbmConfig::classifier(),
    )
    .expect("artifact training failed");
    let compiled = artifact.plan.compile(&registry).expect("plan compiles");
    let rows = scoring_rows(seed, n_rows);

    // --- Naive baseline: one apply_row + predict_row per row, allocating
    // fresh feature buffers on every call (the pre-Scorer integration).
    let naive_scores: Vec<f64> = rows
        .chunks_exact(N_INPUTS)
        .map(|row| {
            let features = compiled.apply_row(row).expect("row applies");
            artifact.model.predict_row(&features)
        })
        .collect(); // warm-up: page in the model and data
    let start = Instant::now();
    let mut check = Vec::with_capacity(n_rows);
    for row in rows.chunks_exact(N_INPUTS) {
        let features = compiled.apply_row(row).expect("row applies");
        check.push(artifact.model.predict_row(&features));
    }
    let naive_secs = start.elapsed().as_secs_f64();
    assert_eq!(naive_scores.len(), check.len());
    let naive_rps = n_rows as f64 / naive_secs;

    let t = TablePrinter::new(
        &["method", "threads", "batch", "secs", "rows/s", "vs naive", "bits"],
        &[16, 7, 7, 8, 12, 9, 9],
    );
    t.row(&[
        "naive-row-loop",
        "1",
        "-",
        &format!("{naive_secs:.3}"),
        &format!("{naive_rps:.0}"),
        "1.00x",
        "baseline",
    ]);
    let mut serving = vec![ServingRow {
        dataset: DATASET.into(),
        method: "naive-row-loop".into(),
        rows: n_rows as u64,
        threads: 1,
        batch_size: 0,
        secs: naive_secs,
        rows_per_sec: naive_rps,
        speedup_vs_naive: 1.0,
    }];

    // --- Batch scorer at several worker budgets. Scores must match the
    // naive loop bit-for-bit at every configuration.
    for threads in [1usize, 2, 4] {
        let scorer = ScorerHandle::new(&artifact, &registry)
            .expect("scorer builds")
            .with_threads(threads);
        let _ = scorer.score_rows(&rows, N_INPUTS).expect("warm-up scores"); // warm-up
        let start = Instant::now();
        let (scores, report) = scorer.score_rows(&rows, N_INPUTS).expect("scoring succeeds");
        let secs = start.elapsed().as_secs_f64();
        let identical = scores
            .iter()
            .zip(&naive_scores)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "batch scorer diverged from the naive loop at threads={threads}");
        let rps = n_rows as f64 / secs;
        t.row(&[
            "batch-scorer",
            &threads.to_string(),
            &report.batch_size.to_string(),
            &format!("{secs:.3}"),
            &format!("{rps:.0}"),
            &format!("{:.2}x", naive_secs / secs),
            "identical",
        ]);
        serving.push(ServingRow {
            dataset: DATASET.into(),
            method: "batch-scorer".into(),
            rows: n_rows as u64,
            threads,
            batch_size: DEFAULT_BATCH_SIZE,
            secs,
            rows_per_sec: rps,
            speedup_vs_naive: naive_secs / secs,
        });
    }

    if cores == 1 {
        println!(
            "\nnote: 1 CPU available — thread rows measure scheduling overhead,\n\
             not speedup; the batch-vs-naive comparison at threads=1 is the\n\
             meaningful number here"
        );
    }

    let out_path = flags
        .get("pipeline-out")
        .map(str::to_string)
        .unwrap_or_else(bench_pipeline_path);
    // This binary owns `serving`; carry the sections written by
    // table5_execution_time and unknown future sections through untouched.
    let existing = read_pipeline_document(&out_path);
    match std::fs::write(
        &out_path,
        pipeline_json(&safe_bench::PipelineDocument { serving, ..existing }),
    ) {
        Ok(()) => println!("\nserving rows -> {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
