//! Ablation study of SAFE's design choices (DESIGN.md §7): what each
//! selection stage and the combination budget γ contribute.
//!
//! Variants:
//! - `full`       — the paper's pipeline (α = 0.1, θ = 0.8, γ = 30)
//! - `no-iv`      — α = 0 (the IV gate passes anything non-degenerate)
//! - `no-redund`  — θ = 1 (redundancy removal disabled exactly)
//! - `gamma-8` / `gamma-100` — smaller/larger combination budget
//!
//! Reported per dataset: selected feature count, wall-clock, and test AUC
//! under XGB.

use std::time::Instant;

use safe_bench::{Flags, TablePrinter};
use safe_core::{Safe, SafeConfig};
use safe_datagen::benchmarks::generate_benchmark_scaled;
use safe_models::classifier::{evaluate_auc, ClassifierKind};

fn variants(seed: u64) -> Vec<(&'static str, SafeConfig)> {
    let build = |b: safe_core::SafeConfigBuilder| b.seed(seed).build().expect("valid ablation config");
    vec![
        ("full", build(SafeConfig::builder())),
        ("no-iv", build(SafeConfig::builder().alpha(0.0))),
        ("no-redund", build(SafeConfig::builder().theta(1.0))),
        ("gamma-8", build(SafeConfig::builder().gamma(8))),
        ("gamma-100", build(SafeConfig::builder().gamma(100))),
    ]
}

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.1);
    let seed: u64 = flags.get_or("seed", 42);
    let datasets = flags.datasets();

    println!("SAFE selection-stage ablation (scale={scale}, XGB downstream)\n");
    for id in datasets {
        let split = generate_benchmark_scaled(id, scale, seed);
        println!("== {} ==", id.spec().name);
        let t = TablePrinter::new(
            &["variant", "selected", "generated", "secs", "AUC x100"],
            &[12, 9, 10, 8, 9],
        );
        for (name, config) in variants(seed) {
            let start = Instant::now();
            let outcome = match Safe::new(config).fit(&split.train, split.valid.as_ref()) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("  {name} failed: {e}");
                    continue;
                }
            };
            let secs = start.elapsed().as_secs_f64();
            let train_new = outcome.plan.apply(&split.train).expect("applies");
            let test_new = outcome.plan.apply(&split.test).expect("applies");
            let auc = evaluate_auc(ClassifierKind::Xgb, &train_new, &test_new, seed)
                .map(|a| a * 100.0)
                .unwrap_or(f64::NAN);
            t.row(&[
                name,
                &outcome.plan.outputs.len().to_string(),
                &outcome.plan.n_generated_outputs().to_string(),
                &format!("{secs:.2}"),
                &format!("{auc:.2}"),
            ]);
        }
        println!();
    }
}
