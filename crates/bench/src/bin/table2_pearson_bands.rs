//! Table II — Pearson correlation rules of thumb, verified empirically.

use safe_bench::TablePrinter;
use safe_stats::pearson::{pearson, CorrBand};

fn main() {
    println!("Table II: Pearson Correlation — strength bands\n");
    let t = TablePrinter::new(&["|Pearson|", "Correlation"], &[12, 34]);
    for (range, band) in [
        ("0 to 0.2", CorrBand::VeryWeak),
        ("0.2 to 0.4", CorrBand::Weak),
        ("0.4 to 0.6", CorrBand::Moderate),
        ("0.6 to 0.8", CorrBand::Strong),
        ("0.8 to 1", CorrBand::ExtremelyStrong),
    ] {
        t.row(&[range, band.description()]);
    }

    println!("\nEmpirical demonstration (n = 10000, y = ρ·x + √(1−ρ²)·ε):");
    let n = 10_000usize;
    // Deterministic pseudo-noise, decorrelated from x.
    let x: Vec<f64> = (0..n).map(|i| ((i * 48271) % 65537) as f64 / 65537.0 - 0.5).collect();
    let e: Vec<f64> = (0..n).map(|i| ((i * 69621) % 65537) as f64 / 65537.0 - 0.5).collect();
    let demo = TablePrinter::new(&["target rho", "measured", "band"], &[12, 10, 32]);
    for rho in [0.05f64, 0.3, 0.5, 0.7, 0.95] {
        let y: Vec<f64> = x
            .iter()
            .zip(&e)
            .map(|(&xv, &ev)| rho * xv + (1.0 - rho * rho).sqrt() * ev)
            .collect();
        let measured = pearson(&x, &y);
        demo.row(&[
            &format!("{rho:.2}"),
            &format!("{measured:.3}"),
            CorrBand::of(measured).description(),
        ]);
    }
}
