//! Table III — classification AUC (×100) of each FE method under each
//! downstream classifier, per dataset.
//!
//! Default run uses `--scale 0.05` (5% of the paper's row counts, same
//! dimensionality) so the full 12 × 6 × 9 grid finishes in minutes; pass
//! `--scale 1.0` for paper-size data. TFC on the 970-dim `gina` is
//! exhaustive by design and dominates runtime — trim with
//! `--datasets ...`/`--methods ...` when iterating.
//!
//! The paper's headline claims checked here: SAFE ≥ IMP ≥ RAND ≥ ORIG on
//! average, and SAFE competitive-or-better vs FCT/TFC at a fraction of
//! their cost (cost is Table V's binary).

use safe_bench::{auc100, engineer_split, fmt_auc, Flags, Method, TablePrinter};
use safe_datagen::benchmarks::generate_benchmark_scaled;

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.05);
    let seed: u64 = flags.get_or("seed", 42);
    let repeats: usize = flags.get_or("repeats", 1);
    let datasets = flags.datasets();
    let methods = flags.methods();
    let classifiers = flags.classifiers();

    println!(
        "Table III: classification AUC x100 (scale={scale}, repeats={repeats}, seed={seed})\n"
    );

    // Per-method average lift accumulator (vs ORIG).
    let mut totals: Vec<(f64, usize)> = vec![(0.0, 0); methods.len()];

    for id in datasets {
        let spec = id.spec();
        println!("== {} (dim {}) ==", spec.name, spec.dim);
        let mut headers = vec!["CLF"];
        headers.extend(methods.iter().map(|m| m.label()));
        let widths: Vec<usize> = std::iter::once(5).chain(methods.iter().map(|_| 7)).collect();
        let t = TablePrinter::new(&headers, &widths);

        // Engineer once per method per repeat; reuse across classifiers.
        let mut per_method: Vec<Vec<safe_bench::EngineeredSplit>> = Vec::new();
        for (mi, &method) in methods.iter().enumerate() {
            let mut runs = Vec::new();
            for r in 0..repeats {
                let split = generate_benchmark_scaled(id, scale, seed + r as u64);
                match engineer_split(method, &split, seed + r as u64) {
                    Ok(e) => runs.push(e),
                    Err(err) => {
                        eprintln!("  {} failed on {}: {err}", method.label(), spec.name);
                    }
                }
            }
            let _ = mi;
            per_method.push(runs);
        }

        for &clf in &classifiers {
            let mut cells: Vec<String> = vec![clf.abbrev().to_string()];
            let mut orig_score = None;
            for (mi, runs) in per_method.iter().enumerate() {
                if runs.is_empty() {
                    cells.push("-".into());
                    continue;
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                for (r, eng) in runs.iter().enumerate() {
                    match auc100(clf, eng, seed + r as u64) {
                        Ok(a) => {
                            sum += a;
                            n += 1;
                        }
                        Err(err) => eprintln!("  {clf:?} failed: {err}"),
                    }
                }
                if n == 0 {
                    cells.push("-".into());
                    continue;
                }
                let mean = sum / n as f64;
                if methods[mi] == Method::Orig {
                    orig_score = Some(mean);
                }
                if let (Some(orig), true) = (orig_score, methods[mi] != Method::Orig) {
                    totals[mi].0 += mean - orig;
                    totals[mi].1 += 1;
                }
                cells.push(fmt_auc(mean));
            }
            let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
            t.row(&refs);
        }
        println!();
    }

    println!("Average AUC lift over ORIG (x100), across all cells:");
    for (mi, &method) in methods.iter().enumerate() {
        if method == Method::Orig || totals[mi].1 == 0 {
            continue;
        }
        println!(
            "  {:>5}: {:+.2}",
            method.label(),
            totals[mi].0 / totals[mi].1 as f64
        );
    }
}
