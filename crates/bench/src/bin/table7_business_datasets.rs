//! Table VII — business dataset information. Prints the paper's full-scale
//! shapes plus the harness scale used by `table8_business`.

use safe_bench::{Flags, TablePrinter};
use safe_datagen::business::{generate_business, BusinessId};

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.01);

    println!("Table VII: business data sets (paper scale)\n");
    let t = TablePrinter::new(&["Dataset", "#Train", "#Valid", "#Test", "#Dim"], &[8, 10, 10, 10, 6]);
    for id in BusinessId::ALL {
        let s = id.spec();
        t.row(&[
            s.name,
            &s.n_train.to_string(),
            &s.n_valid.to_string(),
            &s.n_test.to_string(),
            &s.dim.to_string(),
        ]);
    }

    println!("\nSynthetic stand-ins at harness scale {scale}:\n");
    let t = TablePrinter::new(
        &["Dataset", "#Train", "#Valid", "#Test", "#Dim", "pos-rate"],
        &[8, 10, 10, 10, 6, 9],
    );
    for id in BusinessId::ALL {
        let split = generate_business(id, scale, flags.get_or("seed", 42u64));
        let valid_rows = split.valid.as_ref().map(|v| v.n_rows()).unwrap_or(0);
        t.row(&[
            id.spec().name,
            &split.train.n_rows().to_string(),
            &valid_rows.to_string(),
            &split.test.n_rows().to_string(),
            &split.train.n_cols().to_string(),
            &format!("{:.3}", split.train.positive_rate().unwrap_or(0.0)),
        ]);
    }
}
