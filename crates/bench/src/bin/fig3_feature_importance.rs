//! Fig. 3 — feature importance of generated (orange, `[G]`) vs original
//! (blue, `[O]`) features.
//!
//! Protocol per Section V-A3: combine the M original features with the
//! top-ranked generated features (up to M), train a Random Forest on the
//! combined set, and plot per-feature importance. Here the "plot" is an
//! ASCII bar chart; the paper's finding — generated features dominate the
//! top ranks — is summarized numerically at the end.

use safe_bench::{engineer_split, Flags, Method};
use safe_data::dataset::FeatureMeta;
use safe_datagen::benchmarks::generate_benchmark_scaled;
use safe_gbm::binner::BinnedDataset;
use safe_gbm::importance::{FeatureImportance, ImportanceKind};

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.05);
    let seed: u64 = flags.get_or("seed", 42);
    let top_show: usize = flags.get_or("top", 15);
    let datasets = flags.datasets();

    println!("Fig. 3: feature importance, generated [G] vs original [O] (scale={scale})\n");

    for id in datasets {
        let spec = id.spec();
        let split = generate_benchmark_scaled(id, scale, seed);
        let m = split.train.n_cols();

        // SAFE plan; keep originals + up to M top generated features.
        let eng = match engineer_split(Method::Safe, &split, seed) {
            Ok(e) => e,
            Err(err) => {
                eprintln!("{}: SAFE failed: {err}", spec.name);
                continue;
            }
        };
        let mut combined = split.train.clone();
        let mut added = 0usize;
        for (i, meta) in eng.train.meta().iter().enumerate() {
            if added >= m {
                break;
            }
            if meta.origin.is_generated() {
                let col = eng.train.column(i).expect("in range").to_vec();
                if combined.push_column(meta.clone(), col).is_ok() {
                    added += 1;
                }
            }
        }

        // Random-forest importance (gain over a forest of best-split trees):
        // approximated with the GBM ensemble's gain importance over the
        // combined matrix — same statistic family the paper plots.
        let forest = safe_gbm::booster::Gbm::new(safe_gbm::config::GbmConfig {
            n_rounds: 60,
            max_depth: 8,
            subsample: 0.8,
            colsample: 0.7,
            seed,
            ..Default::default()
        })
        .fit(&combined, None);
        let Ok(model) = forest else {
            eprintln!("{}: forest failed", spec.name);
            continue;
        };
        // warm cache parity with training
        let _ = BinnedDataset::fit(&combined, 64, safe_stats::par::Parallelism::auto());
        let imp: FeatureImportance = model.importance(ImportanceKind::TotalGain);
        let order = imp.ranking();
        let max_score = imp.scores[order[0]].max(1e-12);

        println!("== {} ({} original + {} generated) ==", spec.name, m, added);
        for &f in order.iter().take(top_show) {
            let meta: &FeatureMeta = &combined.meta()[f];
            let tag = if meta.origin.is_generated() { "[G]" } else { "[O]" };
            let bar_len = ((imp.scores[f] / max_score) * 40.0).round() as usize;
            println!(
                "  {tag} {:<28} {:<40} {:.3}",
                truncate(&meta.name, 28),
                "#".repeat(bar_len),
                imp.scores[f]
            );
        }
        // Paper's summary statistic: share of generated features in the top
        // 2·added ranks and mean importance by origin.
        let top_k = (2 * added).max(1).min(order.len());
        let gen_in_top = order[..top_k]
            .iter()
            .filter(|&&f| combined.meta()[f].origin.is_generated())
            .count();
        let (mut sum_gen, mut n_gen, mut sum_orig, mut n_orig) = (0.0, 0usize, 0.0, 0usize);
        for f in 0..combined.n_cols() {
            if combined.meta()[f].origin.is_generated() {
                sum_gen += imp.scores[f];
                n_gen += 1;
            } else {
                sum_orig += imp.scores[f];
                n_orig += 1;
            }
        }
        let mean_gen = if n_gen > 0 { sum_gen / n_gen as f64 } else { 0.0 };
        let mean_orig = if n_orig > 0 { sum_orig / n_orig as f64 } else { 0.0 };
        println!(
            "  -> generated in top-{top_k}: {gen_in_top}/{top_k}; mean importance generated {mean_gen:.3} vs original {mean_orig:.3}\n"
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
