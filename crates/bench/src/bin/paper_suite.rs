//! One-command reproduction driver: runs every table/figure binary at a
//! chosen scale and collects the outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p safe-bench --bin paper_suite -- --scale 0.1
//! ```
//!
//! Individual binaries remain the primary interface (they expose more
//! flags); this driver exists so `EXPERIMENTS.md` can be regenerated with
//! one invocation.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use safe_bench::Flags;

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.1);
    let seed: u64 = flags.get_or("seed", 42);
    let out_dir = PathBuf::from(flags.get("out").unwrap_or("results"));
    fs::create_dir_all(&out_dir).expect("create results dir");

    let scale_s = scale.to_string();
    let seed_s = seed.to_string();
    let business_scale = (scale * 0.05).max(0.001).to_string();
    let runs: Vec<(&str, Vec<&str>)> = vec![
        ("table1_iv_bands", vec![]),
        ("table2_pearson_bands", vec![]),
        ("table4_datasets", vec![]),
        ("table7_business_datasets", vec!["--scale", &business_scale]),
        ("table5_execution_time", vec!["--scale", &scale_s]),
        ("table6_stability", vec!["--scale", &scale_s, "--repeats", "5"]),
        ("fig3_feature_importance", vec!["--scale", &scale_s]),
        ("fig4_iterations", vec!["--scale", &scale_s]),
        ("ablation_selection", vec!["--scale", &scale_s]),
        ("table8_business", vec!["--scale", &business_scale]),
        ("table3_classification", vec!["--scale", &scale_s]),
        ("complexity_sweep", vec![]),
    ];

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary dir");

    for (name, extra) in runs {
        let mut cmd = Command::new(exe_dir.join(name));
        cmd.args(["--seed", &seed_s]);
        cmd.args(&extra);
        print!("running {name} ... ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                fs::write(&path, &out.stdout).expect("write result");
                println!("ok -> {}", path.display());
                if name == "table5_execution_time" {
                    // table5 also drops per-stage SAFE timings at the repo
                    // root; keep a copy with the rest of the results.
                    let src = safe_bench::bench_pipeline_path();
                    let dst = out_dir.join("BENCH_pipeline.json");
                    match fs::copy(&src, &dst) {
                        Ok(_) => println!("   + {}", dst.display()),
                        Err(e) => eprintln!("   could not copy {src}: {e}"),
                    }
                }
            }
            Ok(out) => {
                println!("FAILED (status {:?})", out.status.code());
                eprintln!("{}", String::from_utf8_lossy(&out.stderr));
            }
            Err(e) => println!("FAILED to launch: {e}"),
        }
    }
    println!("\nall results under {}", out_dir.display());
}
