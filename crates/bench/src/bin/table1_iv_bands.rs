//! Table I — Information Value rules of thumb, verified empirically.
//!
//! Prints the paper's band table, then demonstrates each band with a
//! synthetic feature engineered to land inside it.

use safe_bench::TablePrinter;
use safe_stats::iv::{information_value, IvBand};

fn main() {
    println!("Table I: Information Value — predictive power bands\n");
    let t = TablePrinter::new(&["Information Value", "Predictive Power"], &[20, 30]);
    for band in [
        IvBand::Useless,
        IvBand::Weak,
        IvBand::Medium,
        IvBand::Strong,
        IvBand::ExtremelyStrong,
    ] {
        let (lo, hi) = band.range();
        let range = if hi.is_finite() {
            format!("{lo} to {hi}")
        } else {
            format!("> {lo}")
        };
        t.row(&[&range, band.description()]);
    }

    println!("\nEmpirical demonstration (n = 20000, 10 equal-frequency bins):");
    let n = 20_000usize;
    let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    // Mixture features: with probability p the feature reveals the label.
    let demo = TablePrinter::new(&["leak prob", "IV", "band"], &[10, 10, 28]);
    for (p_num, p_den) in [(0usize, 100usize), (8, 100), (20, 100), (35, 100), (60, 100)] {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let leak = (i * 7919) % p_den < p_num;
                if leak {
                    labels[i] as f64 * 10.0 + 5.0
                } else {
                    ((i * 104729) % 1000) as f64 / 100.0
                }
            })
            .collect();
        let iv = information_value(&values, &labels, 10).unwrap();
        demo.row(&[
            &format!("{:.2}", p_num as f64 / p_den as f64),
            &format!("{iv:.3}"),
            IvBand::of(iv).description(),
        ]);
    }
}
