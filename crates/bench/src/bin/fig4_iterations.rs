//! Fig. 4 — AUC as SAFE iterates.
//!
//! Runs SAFE with `nIter = 5` (paper protocol), evaluates the plan snapshot
//! of every iteration under XGB, and prints the per-iteration series. The
//! expected shape: AUC rises over the first iterations, then plateaus once
//! no new useful combinations remain.

use safe_bench::{Flags, TablePrinter};
use safe_core::{Safe, SafeConfig};
use safe_datagen::benchmarks::generate_benchmark_scaled;
use safe_models::classifier::{evaluate_auc, ClassifierKind};

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.05);
    let seed: u64 = flags.get_or("seed", 42);
    let n_iter: usize = flags.get_or("iterations", 5);
    let datasets = flags.datasets();

    println!("Fig. 4: AUC x100 per SAFE iteration (nIter={n_iter}, scale={scale})\n");
    let mut headers: Vec<String> = vec!["Dataset".into(), "iter0(ORIG)".into()];
    for i in 1..=n_iter {
        headers.push(format!("iter{i}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let widths: Vec<usize> = std::iter::once(10).chain(headers.iter().skip(1).map(|_| 12)).collect();
    let t = TablePrinter::new(&header_refs, &widths);

    for id in datasets {
        let split = generate_benchmark_scaled(id, scale, seed);
        let config = SafeConfig::builder()
            .n_iterations(n_iter)
            .seed(seed)
            .build()
            .expect("valid sweep config");
        let outcome = match Safe::new(config).fit(&split.train, split.valid.as_ref()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{}: SAFE failed: {e}", id.spec().name);
                continue;
            }
        };

        let mut cells: Vec<String> = vec![id.spec().name.to_string()];
        // Iteration 0 = original features.
        match evaluate_auc(ClassifierKind::Xgb, &split.train, &split.test, seed) {
            Ok(a) => cells.push(format!("{:.2}", a * 100.0)),
            Err(_) => cells.push("-".into()),
        }
        for i in 0..n_iter {
            // Converged runs freeze at their last snapshot (the paper:
            // "the features will not be updated, and the performance keeps
            // unchanged").
            let plan = outcome
                .plans_per_iteration
                .get(i)
                .or_else(|| outcome.plans_per_iteration.last());
            match plan {
                Some(plan) => {
                    let train_new = plan.apply(&split.train).expect("schema matches");
                    let test_new = plan.apply(&split.test).expect("schema matches");
                    match evaluate_auc(ClassifierKind::Xgb, &train_new, &test_new, seed) {
                        Ok(a) => cells.push(format!("{:.2}", a * 100.0)),
                        Err(_) => cells.push("-".into()),
                    }
                }
                None => cells.push("-".into()),
            }
        }
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        t.row(&refs);
    }
}
