//! Table VIII — classification AUC (×100) on the (synthetic stand-in)
//! business datasets, methods {ORIG, RAND, IMP, SAFE} × classifiers
//! {LR, RF, XGB}. TFC and FCTree are excluded, as in the paper, because
//! their cost is prohibitive at this scale.
//!
//! Default `--scale 0.01` keeps the demo tractable (25k–80k train rows);
//! raise toward 1.0 to approach the paper's 2.5M–8M rows.

use safe_bench::{auc100, engineer_split, fmt_auc, Flags, Method, TablePrinter};
use safe_datagen::business::{generate_business, BusinessId};
use safe_models::classifier::ClassifierKind;

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.01);
    let seed: u64 = flags.get_or("seed", 42);
    let methods: Vec<Method> = match flags.get("methods") {
        Some(_) => flags.methods(),
        None => vec![Method::Orig, Method::Rand, Method::Imp, Method::Safe],
    };
    let classifiers: Vec<ClassifierKind> = match flags.get("classifiers") {
        Some(_) => flags.classifiers(),
        None => vec![ClassifierKind::Lr, ClassifierKind::Rf, ClassifierKind::Xgb],
    };

    println!("Table VIII: business dataset AUC x100 (scale={scale}, seed={seed})\n");

    for id in BusinessId::ALL {
        let spec = id.spec();
        let split = generate_business(id, scale, seed);
        println!(
            "== {} (train {} rows, dim {}, pos-rate {:.3}) ==",
            spec.name,
            split.train.n_rows(),
            split.train.n_cols(),
            split.train.positive_rate().unwrap_or(0.0)
        );
        let mut headers = vec!["CLF"];
        headers.extend(methods.iter().map(|m| m.label()));
        let widths: Vec<usize> = std::iter::once(5).chain(methods.iter().map(|_| 7)).collect();
        let t = TablePrinter::new(&headers, &widths);

        let engineered: Vec<Option<safe_bench::EngineeredSplit>> = methods
            .iter()
            .map(|&m| match engineer_split(m, &split, seed) {
                Ok(e) => {
                    println!("  [{} fit in {:.2}s]", m.label(), e.fit_time.as_secs_f64());
                    Some(e)
                }
                Err(err) => {
                    eprintln!("  {} failed: {err}", m.label());
                    None
                }
            })
            .collect();

        for &clf in &classifiers {
            let mut cells: Vec<String> = vec![clf.abbrev().to_string()];
            for eng in &engineered {
                match eng {
                    Some(e) => match auc100(clf, e, seed) {
                        Ok(a) => cells.push(fmt_auc(a)),
                        Err(err) => {
                            eprintln!("  {clf:?} failed: {err}");
                            cells.push("-".into());
                        }
                    },
                    None => cells.push("-".into()),
                }
            }
            let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
            t.row(&refs);
        }
        println!();
    }
}
