//! Table VI — feature stability: Jensen–Shannon divergence between the
//! empirical generated-feature distribution over T repeated runs and the
//! ideal (every run emits the same 2M features). Lower = more stable.
//!
//! Each repeat re-splits the data with a different seed (feature stability
//! under resampling is exactly what the paper probes). TFC is excluded by
//! default, as in the paper ("the execution time of TFC is too long").

use std::collections::HashMap;

use safe_bench::{engineer_split, Flags, Method, TablePrinter};
use safe_datagen::benchmarks::generate_benchmark_scaled;
use safe_stats::divergence::stability_score;

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.05);
    let seed: u64 = flags.get_or("seed", 42);
    let repeats: usize = flags.get_or("repeats", 10);
    let datasets = flags.datasets();
    let methods: Vec<Method> = match flags.get("methods") {
        Some(_) => flags.methods(),
        None => vec![Method::Fct, Method::Rand, Method::Imp, Method::Safe],
    };

    println!(
        "Table VI: feature stability (JSD vs ideal; T={repeats}, scale={scale}; lower is better)\n"
    );
    let mut headers = vec!["Dataset"];
    headers.extend(methods.iter().map(|m| m.label()));
    let widths: Vec<usize> = std::iter::once(10).chain(methods.iter().map(|_| 9)).collect();
    let t = TablePrinter::new(&headers, &widths);

    let mut wins = vec![0usize; methods.len()];
    for id in datasets {
        let spec = id.spec();
        let mut cells: Vec<String> = vec![spec.name.to_string()];
        let mut scores: Vec<Option<f64>> = Vec::new();
        for &method in &methods {
            let mut occurrences: HashMap<String, usize> = HashMap::new();
            let mut per_run = 0usize;
            let mut ok_runs = 0usize;
            for r in 0..repeats {
                let split = generate_benchmark_scaled(id, scale, seed + 1000 * r as u64);
                match engineer_split(method, &split, seed + 1000 * r as u64) {
                    Ok(eng) => {
                        // The paper's metric is over *generated* features
                        // ("each time the algorithm will generate 2M
                        // features"): pass-through originals are trivially
                        // stable and would mask the differences.
                        let step_names: std::collections::HashSet<&str> =
                            eng.plan.steps.iter().map(|s| s.name.as_str()).collect();
                        let generated: Vec<&String> = eng
                            .plan
                            .outputs
                            .iter()
                            .filter(|o| step_names.contains(o.as_str()))
                            .collect();
                        if generated.is_empty() {
                            continue;
                        }
                        per_run = per_run.max(generated.len());
                        ok_runs += 1;
                        for name in generated {
                            *occurrences.entry(name.clone()).or_insert(0) += 1;
                        }
                    }
                    Err(err) => eprintln!("  {} failed: {err}", method.label()),
                }
            }
            if ok_runs == 0 || per_run == 0 {
                cells.push("-".into());
                scores.push(None);
                continue;
            }
            let counts: Vec<usize> = occurrences.values().copied().collect();
            let s = stability_score(&counts, per_run, ok_runs);
            cells.push(format!("{s:.4}"));
            scores.push(Some(s));
        }
        // Count per-dataset winners (lowest JSD).
        if let Some(min) = scores.iter().flatten().cloned().reduce(f64::min) {
            for (mi, s) in scores.iter().enumerate() {
                if *s == Some(min) {
                    wins[mi] += 1;
                }
            }
        }
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        t.row(&refs);
    }

    println!("\nPer-dataset stability wins (paper: SAFE most stable on most datasets):");
    for (mi, &method) in methods.iter().enumerate() {
        println!("  {:>5}: {}", method.label(), wins[mi]);
    }
}
