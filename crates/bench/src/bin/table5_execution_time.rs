//! Table V — execution time (seconds) of each feature-engineering method.
//!
//! The paper's finding: SAFE runs at roughly 0.13× FCTree's and 0.08× TFC's
//! wall-clock, and close to RAND/IMP. Shapes reproduce here because TFC's
//! O(N·M²) exhaustive generation and FCTree's per-node construction loops
//! dwarf SAFE's path-bounded search.

use safe_bench::{
    bench_pipeline_path, cache_rows, engineer_split, fmt_secs, pipeline_json, pipeline_rows,
    resilience_rows, selection_row, timed_safe_fit, traced_checkpointed_report,
    traced_safe_cache_report, traced_safe_report, traced_selection_fit, CacheRow, Flags, Method,
    ParallelRow, PipelineRow, ResilienceRow, SelectionRow, TablePrinter,
};
use safe_core::SelectionMode;
use safe_datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe_datagen::synth::{generate, SyntheticConfig};

fn main() {
    let flags = Flags::from_env();
    let scale: f64 = flags.get_or("scale", 0.05);
    let seed: u64 = flags.get_or("seed", 42);
    let datasets = flags.datasets();
    let methods: Vec<Method> = flags
        .methods()
        .into_iter()
        .filter(|m| *m != Method::Orig) // ORIG has no fit cost
        .collect();

    println!("Table V: execution time in seconds (scale={scale}, seed={seed})\n");
    let mut headers = vec!["Dataset"];
    headers.extend(methods.iter().map(|m| m.label()));
    let widths: Vec<usize> = std::iter::once(10).chain(methods.iter().map(|_| 9)).collect();
    let t = TablePrinter::new(&headers, &widths);

    let mut ratio_acc: Vec<(f64, usize)> = vec![(0.0, 0); methods.len()];
    let mut bench_rows: Vec<PipelineRow> = Vec::new();
    for &id in &datasets {
        let split = generate_benchmark_scaled(id, scale, seed);
        // Per-stage SAFE timings for BENCH_pipeline.json (a separate traced
        // fit so the timed runs above stay undisturbed).
        match traced_safe_report(&split, seed) {
            Ok(report) => bench_rows.extend(pipeline_rows(id.spec().name, &report)),
            Err(err) => eprintln!("  traced SAFE failed on {}: {err}", id.spec().name),
        }
        let mut cells: Vec<String> = vec![id.spec().name.to_string()];
        let mut safe_time = None;
        let mut times = Vec::new();
        for &method in &methods {
            match engineer_split(method, &split, seed) {
                Ok(eng) => {
                    if method == Method::Safe {
                        safe_time = Some(eng.fit_time.as_secs_f64());
                    }
                    times.push(Some(eng.fit_time));
                    cells.push(fmt_secs(eng.fit_time));
                }
                Err(err) => {
                    eprintln!("  {} failed on {}: {err}", method.label(), id.spec().name);
                    times.push(None);
                    cells.push("-".into());
                }
            }
        }
        if let Some(st) = safe_time {
            for (mi, t) in times.iter().enumerate() {
                if let Some(t) = t {
                    if methods[mi] != Method::Safe && t.as_secs_f64() > 0.0 {
                        ratio_acc[mi].0 += st / t.as_secs_f64();
                        ratio_acc[mi].1 += 1;
                    }
                }
            }
        }
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        t.row(&refs);
    }

    println!("\nSAFE time as a fraction of each method (paper: 0.13x FCT, 0.08x TFC):");
    for (mi, &method) in methods.iter().enumerate() {
        if method == Method::Safe || ratio_acc[mi].1 == 0 {
            continue;
        }
        println!(
            "  SAFE / {:>4} = {:.3}",
            method.label(),
            ratio_acc[mi].0 / ratio_acc[mi].1 as f64
        );
    }

    // Thread sweep: end-to-end SAFE fit at 1/2/4 workers on a medium
    // synthetic dataset (`--sweep-rows` to resize). Determinism means the
    // sweep only moves wall-clock, never the outcome; the rows land in the
    // `parallel` section of BENCH_pipeline.json.
    let sweep_rows: usize = flags.get_or("sweep-rows", 4_000);
    let medium = generate(&SyntheticConfig {
        n_rows: sweep_rows,
        dim: 10,
        n_signal: 5,
        n_interactions: 4,
        noise: 0.2,
        seed,
        ..Default::default()
    });
    println!("\nThread sweep on synth-medium ({sweep_rows} rows x 10 features):");
    let mut parallel_rows: Vec<ParallelRow> = Vec::new();
    let mut serial_secs = None;
    for threads in [1usize, 2, 4] {
        match timed_safe_fit(&medium, seed, threads) {
            Ok(secs) => {
                let base = *serial_secs.get_or_insert(secs);
                let speedup = if secs > 0.0 { base / secs } else { 1.0 };
                println!("  threads={threads}: {secs:.2}s ({speedup:.2}x vs serial)");
                parallel_rows.push(ParallelRow {
                    dataset: "synth-medium".into(),
                    threads,
                    secs,
                    speedup_vs_serial: speedup,
                });
            }
            Err(err) => eprintln!("  sweep failed at threads={threads}: {err}"),
        }
    }

    // Cold-vs-warm cache sweep: the same multi-iteration SAFE fit with the
    // cross-iteration cache off, then on. The outcome is bit-identical
    // (tests/cache_differential.rs); the rows show how many columns each
    // iteration re-binned and what the booster stages cost. Rows land in
    // the `cache` section of BENCH_pipeline.json.
    let cache_iters: usize = flags.get_or("cache-iterations", 3);
    let cache_data = generate(&SyntheticConfig {
        n_rows: (sweep_rows / 2).max(500),
        dim: 10,
        n_signal: 5,
        n_interactions: 4,
        noise: 0.2,
        seed,
        ..Default::default()
    });
    println!("\nCache sweep on synth-cache ({cache_iters} iterations, cold vs warm):");
    let mut cache_sweep: Vec<CacheRow> = Vec::new();
    let cold = traced_safe_cache_report(&cache_data, seed, cache_iters, false);
    let warm = traced_safe_cache_report(&cache_data, seed, cache_iters, true);
    match (cold, warm) {
        (Ok(cold), Ok(warm)) => {
            cache_sweep = cache_rows("synth-cache", &warm, &cold);
            for r in &cache_sweep {
                println!(
                    "  iteration {}: rebinned {} cold vs {} warm ({}us cold vs {}us warm)",
                    r.iteration, r.cold_rebinned, r.warm_rebinned, r.cold_micros, r.warm_micros
                );
            }
        }
        (Err(err), _) | (_, Err(err)) => eprintln!("  cache sweep failed: {err}"),
    }

    // Resilience sweep: the same multi-iteration fit with durable
    // checkpoints on, measuring what each post-iteration snapshot costs
    // (serialize + write + fsync + rename) against the iteration's wall
    // time. Checkpoint telemetry is sink-only, so the rows come from the
    // raw event stream; they land in the `resilience` section of
    // BENCH_pipeline.json.
    println!("\nResilience sweep on synth-cache ({cache_iters} iterations, checkpoint on):");
    let mut resilience_sweep: Vec<ResilienceRow> = Vec::new();
    let ckpt_dir = std::env::temp_dir().join(format!("safe_bench_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&ckpt_dir).ok();
    if let Err(e) = std::fs::create_dir_all(&ckpt_dir) {
        eprintln!("  could not create checkpoint dir: {e}");
    } else {
        match traced_checkpointed_report(&cache_data, seed, cache_iters, &ckpt_dir) {
            Ok((report, events)) => {
                resilience_sweep = resilience_rows("synth-cache", &events, &report);
                for r in &resilience_sweep {
                    println!(
                        "  iteration {}: {} bytes in {}us ({:.3}% of the {}us iteration)",
                        r.iteration, r.ckpt_bytes, r.ckpt_micros, r.overhead_pct, r.iteration_micros
                    );
                }
            }
            Err(err) => eprintln!("  resilience sweep failed: {err}"),
        }
        std::fs::remove_dir_all(&ckpt_dir).ok();
    }

    // Selection-mode sweep: one SAFE fit per mode on the candidate-heavy
    // datasets (`--selection-datasets`, default gina — the widest of the
    // roster). The staged row's `speedup_vs_exact` is the combined wall time
    // of the stages the pruner targets (staged-prune + redundancy-filter +
    // rank-topk) in exact mode over staged mode; the AUC column pins the
    // quality contract (±0.005, also held by tests/selection_differential.rs).
    // Rows land in the `selection` section of BENCH_pipeline.json.
    let sel_spec = flags.get("selection-datasets").unwrap_or("gina");
    // The sweep fits at its own scale rather than the table's sliver: large
    // enough that IV estimates are stable and the halving cut is lossless
    // (every α-clearing feature fits inside the finalist set), small enough
    // that the candidate pool stays wide and the exact scan stays the
    // bottleneck. The AUC column is scored on a full-scale regeneration,
    // where the downstream classifier is stable enough to certify the
    // ±0.005 parity contract.
    let sel_fit_scale: f64 = flags.get_or("selection-fit-scale", 0.15);
    let sel_eval_scale: f64 = flags.get_or("selection-eval-scale", 1.0);
    let sel_ids: Vec<BenchmarkId> = BenchmarkId::ALL
        .into_iter()
        .filter(|b| {
            sel_spec
                .split(',')
                .any(|w| w.trim().eq_ignore_ascii_case(b.spec().name))
        })
        .collect();
    println!(
        "\nSelection sweep (exact vs staged, fit scale={sel_fit_scale}, \
         eval scale={sel_eval_scale}) on: {sel_spec}"
    );
    let mut selection_sweep: Vec<SelectionRow> = Vec::new();
    for &id in &sel_ids {
        let name = id.spec().name;
        let split = generate_benchmark_scaled(id, sel_fit_scale, seed);
        let eval = generate_benchmark_scaled(id, sel_eval_scale, seed);
        let exact = traced_selection_fit(&split, &eval, seed, SelectionMode::Exact);
        let staged = traced_selection_fit(&split, &eval, seed, SelectionMode::Staged);
        match (exact, staged) {
            (Ok((er, e_auc, e_sel)), Ok((sr, s_auc, s_sel))) => {
                let exact_row = selection_row(name, "exact", &er, e_auc, e_sel);
                let mut staged_row = selection_row(name, "staged", &sr, s_auc, s_sel);
                if staged_row.combined_millis > 0.0 {
                    staged_row.speedup_vs_exact =
                        exact_row.combined_millis / staged_row.combined_millis;
                }
                println!(
                    "  {name}: exact {:.0}ms auc {:.4} | staged {:.0}ms auc {:.4} | {:.2}x, dAUC {:+.4}",
                    exact_row.combined_millis,
                    exact_row.auc,
                    staged_row.combined_millis,
                    staged_row.auc,
                    staged_row.speedup_vs_exact,
                    staged_row.auc - exact_row.auc,
                );
                selection_sweep.push(exact_row);
                selection_sweep.push(staged_row);
            }
            (Err(err), _) | (_, Err(err)) => {
                eprintln!("  selection sweep failed on {name}: {err}")
            }
        }
    }

    let out_path = flags
        .get("pipeline-out")
        .map(str::to_string)
        .unwrap_or_else(bench_pipeline_path);
    // This binary owns `stages`, `parallel`, `cache`, `resilience`, and
    // `selection`; carry any existing `serving` rows (written by
    // serving_throughput) and unknown future sections through untouched.
    let existing = safe_bench::read_pipeline_document(&out_path);
    match std::fs::write(
        &out_path,
        pipeline_json(&safe_bench::PipelineDocument {
            stages: bench_rows.clone(),
            parallel: parallel_rows,
            cache: cache_sweep,
            resilience: resilience_sweep,
            selection: selection_sweep,
            ..existing
        }),
    ) {
        Ok(()) => println!(
            "\nper-stage SAFE timings ({} rows) -> {out_path}",
            bench_rows.len()
        ),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
