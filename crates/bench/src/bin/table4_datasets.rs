//! Table IV — benchmark dataset information (shapes of the synthetic
//! stand-ins match the paper exactly; `--verify` regenerates each dataset
//! and checks the actual split sizes).

use safe_bench::{Flags, TablePrinter};
use safe_datagen::benchmarks::{generate_benchmark, BenchmarkId};

fn main() {
    let flags = Flags::from_env();
    println!("Table IV: benchmark data sets\n");
    let t = TablePrinter::new(&["Dataset", "#Train", "#Valid", "#Test", "#Dim"], &[10, 8, 8, 8, 6]);
    for id in BenchmarkId::ALL {
        let s = id.spec();
        let valid = if s.n_valid == 0 { "-".to_string() } else { s.n_valid.to_string() };
        t.row(&[
            s.name,
            &s.n_train.to_string(),
            &valid,
            &s.n_test.to_string(),
            &s.dim.to_string(),
        ]);
    }

    if flags.get("verify").is_some() {
        println!("\nVerifying generated splits match the spec:");
        for id in BenchmarkId::ALL {
            let s = id.spec();
            let split = generate_benchmark(id, flags.get_or("seed", 42u64));
            let valid_rows = split.valid.as_ref().map(|v| v.n_rows()).unwrap_or(0);
            let ok = split.train.n_rows() == s.n_train
                && valid_rows == s.n_valid
                && split.test.n_rows() == s.n_test
                && split.train.n_cols() == s.dim;
            println!(
                "  {:10} train={} valid={} test={} dim={}  {}",
                s.name,
                split.train.n_rows(),
                valid_rows,
                split.test.n_rows(),
                split.train.n_cols(),
                if ok { "OK" } else { "MISMATCH" }
            );
        }
    }
}
