//! # safe-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p safe-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_iv_bands` | Table I (IV predictive-power bands) |
//! | `table2_pearson_bands` | Table II (Pearson strength bands) |
//! | `table3_classification` | Table III (AUC: 6 methods × 9 classifiers × 12 datasets) |
//! | `table4_datasets` | Table IV (benchmark dataset info) |
//! | `table5_execution_time` | Table V (FE method wall-clock) |
//! | `table6_stability` | Table VI (feature stability, JSD) |
//! | `table7_business_datasets` | Table VII (business dataset info) |
//! | `table8_business` | Table VIII (business AUC: 4 methods × 3 classifiers) |
//! | `fig3_feature_importance` | Fig. 3 (generated vs original importance) |
//! | `fig4_iterations` | Fig. 4 (AUC over SAFE iterations) |
//! | `complexity_sweep` | §IV-D (SAFE runtime vs N and vs K) |
//!
//! Common flags: `--scale <f>` (fraction of the paper's row counts, default
//! varies per binary), `--seed <u64>`, `--datasets a,b,c`, `--repeats <n>`.
//! This module holds the shared plumbing: method roster, evaluation loops,
//! flag parsing, table formatting.

use std::time::{Duration, Instant};

use safe_baselines::{AutoLearn, FcTree, Tfc};
use safe_core::engineer::{FeatureEngineer, Identity};
use safe_core::{Safe, SafeConfig, SelectionMode};
use safe_data::dataset::Dataset;
use safe_data::split::DatasetSplit;
use safe_datagen::benchmarks::BenchmarkId;
use safe_models::classifier::ClassifierKind;

/// The six feature-engineering methods of Table III, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Original features, untouched.
    Orig,
    /// FCTree (Fan et al., 2010).
    Fct,
    /// TFC (Piramuthu & Sikora, 2009).
    Tfc,
    /// Random combinations over all features.
    Rand,
    /// Random combinations over GBM split features.
    Imp,
    /// The paper's method.
    Safe,
    /// AutoLearn (Kaul et al., 2017) — not in the paper's Table III roster,
    /// available via `--methods autolearn` as an extension.
    AutoLearn,
}

impl Method {
    /// Table III column order.
    pub const ALL: [Method; 6] = [
        Method::Orig,
        Method::Fct,
        Method::Tfc,
        Method::Rand,
        Method::Imp,
        Method::Safe,
    ];

    /// Column header as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::Orig => "ORIG",
            Method::Fct => "FCT",
            Method::Tfc => "TFC",
            Method::Rand => "RAND",
            Method::Imp => "IMP",
            Method::Safe => "SAFE",
            Method::AutoLearn => "AUTOL",
        }
    }

    /// Parse one method name.
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_uppercase().as_str() {
            "ORIG" => Some(Method::Orig),
            "FCT" | "FCTREE" => Some(Method::Fct),
            "TFC" => Some(Method::Tfc),
            "RAND" => Some(Method::Rand),
            "IMP" => Some(Method::Imp),
            "SAFE" => Some(Method::Safe),
            "AUTOL" | "AUTOLEARN" => Some(Method::AutoLearn),
            _ => None,
        }
    }

    /// Build the engineer with paper-default settings.
    pub fn build(self, seed: u64) -> Box<dyn FeatureEngineer> {
        match self {
            Method::Orig => Box::new(Identity),
            Method::Fct => Box::new(FcTree { seed, ..FcTree::default() }),
            Method::Tfc => Box::new(Tfc::default()),
            Method::Rand => Box::new(Safe::new(SafeConfig::rand_baseline(seed))),
            Method::Imp => Box::new(Safe::new(SafeConfig::imp_baseline(seed))),
            Method::Safe => Box::new(Safe::new(
                SafeConfig::builder()
                    .seed(seed)
                    .build()
                    .unwrap_or_else(|e| unreachable!("paper defaults validate: {e}")),
            )),
            Method::AutoLearn => Box::new(AutoLearn { seed, ..AutoLearn::default() }),
        }
    }
}

/// One FE method's output on a split, with the fit timed (Table V).
pub struct EngineeredSplit {
    /// Transformed training set.
    pub train: Dataset,
    /// Transformed validation set (when the split had one).
    pub valid: Option<Dataset>,
    /// Transformed test set.
    pub test: Dataset,
    /// Wall-clock time of plan learning (excludes transformation).
    pub fit_time: Duration,
    /// The learned plan.
    pub plan: safe_core::plan::FeaturePlan,
}

/// Run one FE method on a split.
pub fn engineer_split(
    method: Method,
    split: &DatasetSplit,
    seed: u64,
) -> Result<EngineeredSplit, String> {
    let engineer = method.build(seed);
    let start = Instant::now();
    let plan = engineer.engineer(&split.train, split.valid.as_ref())?;
    let fit_time = start.elapsed();
    let train = plan.apply(&split.train).map_err(|e| e.to_string())?;
    let valid = match &split.valid {
        Some(v) => Some(plan.apply(v).map_err(|e| e.to_string())?),
        None => None,
    };
    let test = plan.apply(&split.test).map_err(|e| e.to_string())?;
    Ok(EngineeredSplit {
        train,
        valid,
        test,
        fit_time,
        plan,
    })
}

/// Train a classifier on the engineered train split and report test AUC
/// (× 100, the paper's convention).
pub fn auc100(kind: ClassifierKind, eng: &EngineeredSplit, seed: u64) -> Result<f64, String> {
    safe_models::classifier::evaluate_auc(kind, &eng.train, &eng.test, seed)
        .map(|a| a * 100.0)
        .map_err(|e| e.to_string())
}

/// Tiny flag parser: `--name value` pairs from `std::env::args`.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    args: Vec<(String, String)>,
}

impl Flags {
    /// Parse the process arguments.
    pub fn from_env() -> Flags {
        Flags::from_list(std::env::args().skip(1).collect())
    }

    /// Parse an explicit list (testable).
    pub fn from_list(raw: Vec<String>) -> Flags {
        let mut args = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).cloned().unwrap_or_default();
                args.push((name.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Flags { args }
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated dataset selection (default: all 12).
    pub fn datasets(&self) -> Vec<BenchmarkId> {
        match self.get("datasets") {
            None => BenchmarkId::ALL.to_vec(),
            Some(spec) => {
                let wanted: Vec<String> =
                    spec.split(',').map(|s| s.trim().to_lowercase()).collect();
                BenchmarkId::ALL
                    .into_iter()
                    .filter(|b| wanted.iter().any(|w| w == b.spec().name))
                    .collect()
            }
        }
    }

    /// Comma-separated method selection (default: all 6).
    pub fn methods(&self) -> Vec<Method> {
        match self.get("methods") {
            None => Method::ALL.to_vec(),
            Some(spec) => spec.split(',').filter_map(Method::parse).collect(),
        }
    }

    /// Comma-separated classifier selection (default: all 9).
    pub fn classifiers(&self) -> Vec<ClassifierKind> {
        match self.get("classifiers") {
            None => ClassifierKind::ALL.to_vec(),
            Some(spec) => {
                let wanted: Vec<String> =
                    spec.split(',').map(|s| s.trim().to_lowercase()).collect();
                ClassifierKind::ALL
                    .into_iter()
                    .filter(|k| wanted.iter().any(|w| w == &k.abbrev().to_lowercase()))
                    .collect()
            }
        }
    }
}

/// Fixed-width table printer (plain text, paper-style).
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Create with column headers; prints the header row immediately.
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        let p = TablePrinter {
            widths: widths.to_vec(),
        };
        p.row(headers);
        let total: usize = p.widths.iter().sum::<usize>() + p.widths.len();
        println!("{}", "-".repeat(total));
        p
    }

    /// Print one row.
    pub fn row(&self, cells: &[&str]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join(" "));
    }
}

/// Format an AUC×100 cell like the paper ("87.16").
pub fn fmt_auc(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a duration in seconds like Table V ("9.80").
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Fit SAFE on a split with the report machinery engaged and return the
/// per-stage run report (telemetry never alters the fit itself).
pub fn traced_safe_report(
    split: &DatasetSplit,
    seed: u64,
) -> Result<safe_obs::RunReport, String> {
    let config = SafeConfig::builder().seed(seed).build()?;
    Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .map(|outcome| outcome.report)
        .map_err(|e| e.to_string())
}

/// One row of `BENCH_pipeline.json`: a stage of one SAFE iteration on one
/// dataset.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Benchmark dataset name.
    pub dataset: String,
    /// SAFE iteration index.
    pub iteration: usize,
    /// Stage name from the `safe_obs::stages` vocabulary.
    pub stage: String,
    /// Stage wall time in milliseconds.
    pub millis: f64,
    /// Feature count entering the stage (0 where not applicable).
    pub features_in: u64,
    /// Feature count leaving the stage (0 where not applicable).
    pub features_out: u64,
}

/// Flatten a run report into `BENCH_pipeline.json` rows for one dataset.
pub fn pipeline_rows(dataset: &str, report: &safe_obs::RunReport) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for it in &report.iterations {
        for st in &it.stages {
            rows.push(PipelineRow {
                dataset: dataset.to_string(),
                iteration: it.iteration,
                stage: st.stage.clone(),
                millis: st.micros as f64 / 1000.0,
                features_in: st.features_in,
                features_out: st.features_out,
            });
        }
    }
    rows
}

/// One row of the `parallel` section of `BENCH_pipeline.json`: one
/// end-to-end SAFE fit at a fixed worker budget on the sweep dataset.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// Worker budget for the fit (`1` = the serial path).
    pub threads: usize,
    /// End-to-end fit wall time in seconds.
    pub secs: f64,
    /// `serial secs / this row's secs` (1.0 for the serial row itself).
    pub speedup_vs_serial: f64,
}

/// Time one end-to-end SAFE fit at a fixed worker budget (the `parallel`
/// sweep of Table V). Returns the fit wall time in seconds.
pub fn timed_safe_fit(data: &Dataset, seed: u64, threads: usize) -> Result<f64, String> {
    let config = SafeConfig::builder().seed(seed).threads(threads).build()?;
    let start = Instant::now();
    Safe::new(config)
        .fit(data, None)
        .map_err(|e| e.to_string())?;
    Ok(start.elapsed().as_secs_f64())
}

/// One row of the `cache` section of `BENCH_pipeline.json`: one SAFE
/// iteration's binning work with the cross-iteration cache on (`warm`)
/// versus off (`cold`), on the sweep dataset.
///
/// `cold_rebinned` is the number of columns the booster stages quantize
/// from scratch without a cache; `warm_rebinned` is how many the cached run
/// actually re-binned (its misses). From the second iteration on the warm
/// count is strictly below the cold one: survivors of the previous
/// selection are cache hits.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// SAFE iteration index.
    pub iteration: usize,
    /// Wall micros of the booster stages (miner + ranker) in the cold run.
    pub cold_micros: u64,
    /// Wall micros of the same stages in the warm run.
    pub warm_micros: u64,
    /// Columns a cache-less run quantizes in those stages (hits + misses).
    pub cold_rebinned: u64,
    /// Columns the cached run re-binned (misses only).
    pub warm_rebinned: u64,
}

/// Build `cache` rows from a warm (cached) and a cold (`cache: false`) run
/// report of the same fit. For each iteration, every stage that recorded
/// bin-cache telemetry contributes its hit/miss split and wall time; the
/// cold run contributes the matching stage's wall time. The two runs are
/// bit-identical in outcome (`tests/cache_differential.rs`), so the rows
/// compare like against like.
pub fn cache_rows(
    dataset: &str,
    warm: &safe_obs::RunReport,
    cold: &safe_obs::RunReport,
) -> Vec<CacheRow> {
    warm.iterations
        .iter()
        .zip(&cold.iterations)
        .map(|(w, c)| {
            let mut row = CacheRow {
                dataset: dataset.to_string(),
                iteration: w.iteration,
                cold_micros: 0,
                warm_micros: 0,
                cold_rebinned: 0,
                warm_rebinned: 0,
            };
            for ws in &w.stages {
                let (Some(hits), Some(misses)) =
                    (ws.counter("cache_bin_hits"), ws.counter("cache_bin_misses"))
                else {
                    continue;
                };
                row.cold_rebinned += hits + misses;
                row.warm_rebinned += misses;
                row.warm_micros += ws.micros;
                row.cold_micros += c.stage(&ws.stage).map_or(0, |cs| cs.micros);
            }
            row
        })
        .collect()
}

/// Fit SAFE on a dataset with telemetry engaged and the cross-iteration
/// cache toggled, returning the run report (the toggle never alters the fit
/// outcome, only how repeated binning/stats work is resolved).
pub fn traced_safe_cache_report(
    data: &Dataset,
    seed: u64,
    n_iterations: usize,
    cache: bool,
) -> Result<safe_obs::RunReport, String> {
    let config = SafeConfig::builder()
        .seed(seed)
        .n_iterations(n_iterations)
        .cache(cache)
        .build()?;
    Safe::new(config)
        .fit(data, None)
        .map(|outcome| outcome.report)
        .map_err(|e| e.to_string())
}

/// One row of the `resilience` section of `BENCH_pipeline.json`: what the
/// durable checkpoint write after one SAFE iteration cost, against that
/// iteration's total wall time. Checkpoint telemetry is sink-only (it never
/// lands in the `RunReport`), so the rows come from the raw event stream of
/// a checkpointed fit.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// SAFE iteration index the snapshot closed.
    pub iteration: usize,
    /// Serialized `SAFECKPT` document size on disk.
    pub ckpt_bytes: u64,
    /// Wall micros of the checkpoint span (serialize + write + fsync +
    /// rename).
    pub ckpt_micros: u64,
    /// Wall micros of the whole iteration the snapshot covers.
    pub iteration_micros: u64,
    /// `100 · ckpt_micros / iteration_micros` — the durability tax.
    pub overhead_pct: f64,
}

/// Fit SAFE with durable checkpoints and a memory sink attached, returning
/// the run report plus the raw event stream (which carries the sink-only
/// checkpoint spans and `ckpt_bytes` counters that [`resilience_rows`]
/// needs).
pub fn traced_checkpointed_report(
    data: &Dataset,
    seed: u64,
    n_iterations: usize,
    checkpoint_dir: &std::path::Path,
) -> Result<(safe_obs::RunReport, Vec<safe_obs::Event>), String> {
    let sink = std::sync::Arc::new(safe_obs::MemorySink::new());
    let config = SafeConfig::builder()
        .seed(seed)
        .n_iterations(n_iterations)
        .checkpoint_dir(checkpoint_dir)
        .sink(safe_obs::SinkHandle::new(sink.clone()))
        .build()?;
    let report = Safe::new(config)
        .fit(data, None)
        .map(|outcome| outcome.report)
        .map_err(|e| e.to_string())?;
    Ok((report, sink.events()))
}

/// Build `resilience` rows from a checkpointed fit's event stream and run
/// report: one row per checkpoint span, paired with the matching
/// `ckpt_bytes` counter and the covered iteration's wall time.
pub fn resilience_rows(
    dataset: &str,
    events: &[safe_obs::Event],
    report: &safe_obs::RunReport,
) -> Vec<ResilienceRow> {
    use safe_obs::EventKind;
    let ckpt = safe_obs::stages::CHECKPOINT;
    events
        .iter()
        .filter(|e| e.kind == EventKind::StageEnd && e.stage == ckpt)
        .filter_map(|e| {
            let iteration = e.iteration?;
            let ckpt_bytes = events
                .iter()
                .find(|b| {
                    b.kind == EventKind::Counter
                        && b.stage == ckpt
                        && b.iteration == Some(iteration)
                        && b.name == "ckpt_bytes"
                })
                .map_or(0, |b| b.value);
            let iteration_micros = report
                .iterations
                .iter()
                .find(|it| it.iteration == iteration)
                .map_or(0, |it| it.micros);
            let overhead_pct = if iteration_micros > 0 {
                100.0 * e.value as f64 / iteration_micros as f64
            } else {
                0.0
            };
            Some(ResilienceRow {
                dataset: dataset.to_string(),
                iteration,
                ckpt_bytes,
                ckpt_micros: e.value,
                iteration_micros,
                overhead_pct,
            })
        })
        .collect()
}

/// One row of the `serving` section of `BENCH_pipeline.json`: one scoring
/// configuration (method × threads × batch size) over the serving dataset.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Serving dataset name.
    pub dataset: String,
    /// `"naive-row-loop"` (per-row `apply_row` + `predict_row`, fresh
    /// buffers every call) or `"batch-scorer"` (`safe_serve::Scorer`).
    pub method: String,
    /// Rows scored.
    pub rows: u64,
    /// Worker budget (`1` = serial; only meaningful for the batch scorer).
    pub threads: usize,
    /// Micro-batch size (0 for the naive loop, which has no batching).
    pub batch_size: usize,
    /// Wall time for the full pass in seconds.
    pub secs: f64,
    /// Scoring throughput.
    pub rows_per_sec: f64,
    /// `naive secs / this row's secs` (1.0 for the naive row itself).
    pub speedup_vs_naive: f64,
}

/// One row of the `serving_daemon` section of `BENCH_pipeline.json`: one
/// `ScoreService` configuration (worker count × coalescing cap) driven
/// with a stream of single-row submissions by `safe-cli bench-serve`.
/// Latency quantiles are log2-bucket upper bounds from
/// `safe_obs::LatencyHisto`, so `bench-diff` gates this section on `secs`
/// (quantiles jump 2× between buckets and would be noise-gated anyway).
#[derive(Debug, Clone)]
pub struct ServingDaemonRow {
    /// Serving dataset name.
    pub dataset: String,
    /// Worker threads in the service pool.
    pub workers: usize,
    /// Micro-batch coalescing cap (`max_batch`).
    pub max_batch: usize,
    /// Requests submitted (one row each).
    pub requests: u64,
    /// Wall time from first submission to last response, seconds.
    pub secs: f64,
    /// Completed requests per second over the run.
    pub rows_per_sec: f64,
    /// Median queue wait, microseconds (log2-bucket upper bound).
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Median end-to-end request latency, microseconds.
    pub request_p50_us: u64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub request_p99_us: u64,
}

/// One row of the `selection` section of `BENCH_pipeline.json`: one
/// selection mode (`exact` or `staged`) fit end to end on one dataset, with
/// the wall time of the stages the staged pruner targets broken out. The
/// exact row is the baseline; `speedup_vs_exact` on the staged row is
/// `exact combined_millis / staged combined_millis` (1.0 on the exact row
/// itself).
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// `"exact"` or `"staged"`.
    pub mode: String,
    /// Wall millis of the `staged-prune` stage across all iterations
    /// (0 for exact mode, which never runs it).
    pub staged_millis: f64,
    /// Wall millis of `redundancy-filter` across all iterations.
    pub redundancy_millis: f64,
    /// Wall millis of `rank-topk` across all iterations.
    pub rank_millis: f64,
    /// `staged_millis + redundancy_millis + rank_millis` — the cost of
    /// everything downstream of the IV filter, which is what the staged
    /// pruner exists to shrink.
    pub combined_millis: f64,
    /// Test AUC of an XGB classifier on the engineered features (0..1).
    pub auc: f64,
    /// Features in the final plan's output schema.
    pub n_selected: u64,
    /// Exact-mode combined millis over this row's combined millis.
    pub speedup_vs_exact: f64,
}

/// One row of the out-of-core sweep (`oocore` section): a spill-backed
/// chunked fit against its resident twin, with the chunk cache's byte
/// accounting. `peak_resident_bytes <= budget_bytes` (plus one in-flight
/// chunk per worker) is the contract the `oocore_spill` writer asserts when
/// the table is ≥10× the budget.
#[derive(Debug, Clone)]
pub struct OocoreRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// `"resident"`, `"chunked"` (in-memory chunks), or `"spilled"`.
    pub backend: String,
    /// Table rows.
    pub rows: u64,
    /// Feature columns.
    pub cols: u64,
    /// Rows per chunk (0 for the resident backend).
    pub chunk_rows: u64,
    /// Logical f64 table size in bytes.
    pub table_bytes: u64,
    /// Resident chunk budget in bytes (table_bytes when not spilling).
    pub budget_bytes: u64,
    /// High-water mark of decoded chunk bytes during the fit.
    pub peak_resident_bytes: u64,
    /// Chunk requests served from the resident LRU.
    pub chunk_hits: u64,
    /// Chunk requests that decoded a spill file.
    pub chunk_loads: u64,
    /// Chunks evicted to stay within budget.
    pub evictions: u64,
    /// End-to-end fit wall seconds.
    pub secs: f64,
    /// Downstream test AUC of the engineered features (bit-identical
    /// across backends; recorded so the differential is visible in data).
    pub auc: f64,
}

/// Fit SAFE on `split` under one selection mode with telemetry engaged,
/// returning the run report, the plan's downstream AUC, and the final
/// plan's output-feature count — the raw material of one [`SelectionRow`].
///
/// Timing and quality are deliberately decoupled: the fit (and therefore
/// every stage wall-time in the report) runs on `split`, which the sweep
/// keeps small enough that the candidate pool is large and the pruner has
/// something to cut, while the AUC is scored by applying the plan to
/// `eval` — a larger regeneration of the same dataset — and training the
/// XGB classifier there. Scoring on the timing sliver's few test rows
/// produces chance-level noise that cannot certify the ±0.005 parity
/// contract; the plan itself applies to any row count. The classifier
/// itself is deterministic (full-sample XGB never consumes its RNG), so
/// one evaluation per plan is exact — any AUC delta between modes is a
/// property of the plans, not classifier noise.
pub fn traced_selection_fit(
    split: &DatasetSplit,
    eval: &DatasetSplit,
    seed: u64,
    mode: SelectionMode,
) -> Result<(safe_obs::RunReport, f64, u64), String> {
    let config = SafeConfig::builder().seed(seed).selection(mode).build()?;
    let outcome = Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .map_err(|e| e.to_string())?;
    let train = outcome.plan.apply(&eval.train).map_err(|e| e.to_string())?;
    let test = outcome.plan.apply(&eval.test).map_err(|e| e.to_string())?;
    let auc = safe_models::classifier::evaluate_auc(ClassifierKind::Xgb, &train, &test, seed)
        .map_err(|e| e.to_string())?;
    Ok((outcome.report, auc, outcome.plan.outputs.len() as u64))
}

/// Build one `selection` row from a traced fit. `speedup_vs_exact` starts
/// at 1.0; the table5 writer fills it in once both modes have run.
pub fn selection_row(
    dataset: &str,
    mode: &str,
    report: &safe_obs::RunReport,
    auc: f64,
    n_selected: u64,
) -> SelectionRow {
    let sum = |stage: &str| -> f64 {
        report
            .iterations
            .iter()
            .flat_map(|it| it.stages.iter())
            .filter(|s| s.stage == stage)
            .map(|s| s.micros as f64 / 1000.0)
            .sum()
    };
    let staged_millis = sum(safe_obs::stages::STAGED_PRUNE);
    let redundancy_millis = sum(safe_obs::stages::REDUNDANCY);
    let rank_millis = sum(safe_obs::stages::RANK_TOPK);
    SelectionRow {
        dataset: dataset.to_string(),
        mode: mode.to_string(),
        staged_millis,
        redundancy_millis,
        rank_millis,
        combined_millis: staged_millis + redundancy_millis + rank_millis,
        auc,
        n_selected,
        speedup_vs_exact: 1.0,
    }
}

/// Schema version written into `BENCH_pipeline.json` by [`pipeline_json`].
/// Bump when a section's row shape changes incompatibly; readers tolerate
/// (and writers preserve) sections they don't know, so additions never
/// need a bump.
pub const PIPELINE_SCHEMA_VERSION: u64 = 2;

/// Serialize the `BENCH_pipeline.json` document: an object holding the
/// schema version, the per-stage rows (`stages`), the thread-sweep rows
/// (`parallel`), the scoring-throughput rows (`serving`), the cold-vs-warm
/// cache sweep rows (`cache`), the checkpoint-overhead rows
/// (`resilience`), the selection-mode sweep rows (`selection`), and —
/// verbatim — any sections a future harness wrote that this build doesn't
/// know ([`PipelineDocument::extra`]).
///
/// Schema:
/// `{"schema_version": 2, "stages": [{dataset, iteration, stage, millis,
/// features_in, features_out}], "parallel": [{dataset, threads, secs,
/// speedup_vs_serial}], "serving": [{dataset, method, rows, threads,
/// batch_size, secs, rows_per_sec, speedup_vs_naive}], "cache": [{dataset,
/// iteration, cold_micros, warm_micros, cold_rebinned, warm_rebinned}],
/// "serving_daemon": [{dataset, workers, max_batch, requests, secs,
/// rows_per_sec, queue_p50_us, queue_p99_us, request_p50_us,
/// request_p99_us}], "resilience": [{dataset, iteration, ckpt_bytes,
/// ckpt_micros, iteration_micros, overhead_pct}], "selection": [{dataset,
/// mode, staged_millis, redundancy_millis, rank_millis, combined_millis,
/// auc, n_selected, speedup_vs_exact}], "oocore": [{dataset, backend,
/// rows, cols, chunk_rows, table_bytes, budget_bytes,
/// peak_resident_bytes, chunk_hits, chunk_loads, evictions, secs, auc}]}`
///
/// The writers ([`table5_execution_time`][t5] owns `stages`/`parallel`/
/// `cache`/`resilience`/`selection`, `serving_throughput` owns `serving`,
/// `oocore_spill` owns `oocore`, `safe-cli bench-serve` owns
/// `serving_daemon`)
/// each re-read
/// the document first via [`read_pipeline_document`] and pass the other
/// sections — known and unknown alike — through, so running either binary
/// never clobbers anyone else's results.
///
/// [t5]: ../safe_bench/index.html
pub fn pipeline_json(doc: &PipelineDocument) -> String {
    let PipelineDocument {
        stages,
        parallel,
        serving,
        serving_daemon,
        cache,
        resilience,
        selection,
        oocore,
        extra,
        ..
    } = doc;
    let mut out = format!(
        "{{\n\"schema_version\": {PIPELINE_SCHEMA_VERSION},\n\"stages\": [\n"
    );
    for (i, r) in stages.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"iteration\":{},\"stage\":{},\"millis\":{:.3},\"features_in\":{},\"features_out\":{}}}",
            safe_obs::json::escape(&r.dataset),
            r.iteration,
            safe_obs::json::escape(&r.stage),
            r.millis,
            r.features_in,
            r.features_out,
        ));
        if i + 1 < stages.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"parallel\": [\n");
    for (i, r) in parallel.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"threads\":{},\"secs\":{:.3},\"speedup_vs_serial\":{:.3}}}",
            safe_obs::json::escape(&r.dataset),
            r.threads,
            r.secs,
            r.speedup_vs_serial,
        ));
        if i + 1 < parallel.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"serving\": [\n");
    for (i, r) in serving.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"method\":{},\"rows\":{},\"threads\":{},\"batch_size\":{},\"secs\":{:.4},\"rows_per_sec\":{:.0},\"speedup_vs_naive\":{:.3}}}",
            safe_obs::json::escape(&r.dataset),
            safe_obs::json::escape(&r.method),
            r.rows,
            r.threads,
            r.batch_size,
            r.secs,
            r.rows_per_sec,
            r.speedup_vs_naive,
        ));
        if i + 1 < serving.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"serving_daemon\": [\n");
    for (i, r) in serving_daemon.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"workers\":{},\"max_batch\":{},\"requests\":{},\"secs\":{:.4},\"rows_per_sec\":{:.0},\"queue_p50_us\":{},\"queue_p99_us\":{},\"request_p50_us\":{},\"request_p99_us\":{}}}",
            safe_obs::json::escape(&r.dataset),
            r.workers,
            r.max_batch,
            r.requests,
            r.secs,
            r.rows_per_sec,
            r.queue_p50_us,
            r.queue_p99_us,
            r.request_p50_us,
            r.request_p99_us,
        ));
        if i + 1 < serving_daemon.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"cache\": [\n");
    for (i, r) in cache.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"iteration\":{},\"cold_micros\":{},\"warm_micros\":{},\"cold_rebinned\":{},\"warm_rebinned\":{}}}",
            safe_obs::json::escape(&r.dataset),
            r.iteration,
            r.cold_micros,
            r.warm_micros,
            r.cold_rebinned,
            r.warm_rebinned,
        ));
        if i + 1 < cache.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"resilience\": [\n");
    for (i, r) in resilience.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"iteration\":{},\"ckpt_bytes\":{},\"ckpt_micros\":{},\"iteration_micros\":{},\"overhead_pct\":{:.3}}}",
            safe_obs::json::escape(&r.dataset),
            r.iteration,
            r.ckpt_bytes,
            r.ckpt_micros,
            r.iteration_micros,
            r.overhead_pct,
        ));
        if i + 1 < resilience.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"selection\": [\n");
    for (i, r) in selection.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"mode\":{},\"staged_millis\":{:.3},\"redundancy_millis\":{:.3},\"rank_millis\":{:.3},\"combined_millis\":{:.3},\"auc\":{:.6},\"n_selected\":{},\"speedup_vs_exact\":{:.3}}}",
            safe_obs::json::escape(&r.dataset),
            safe_obs::json::escape(&r.mode),
            r.staged_millis,
            r.redundancy_millis,
            r.rank_millis,
            r.combined_millis,
            r.auc,
            r.n_selected,
            r.speedup_vs_exact,
        ));
        if i + 1 < selection.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"oocore\": [\n");
    for (i, r) in oocore.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"backend\":{},\"rows\":{},\"cols\":{},\"chunk_rows\":{},\"table_bytes\":{},\"budget_bytes\":{},\"peak_resident_bytes\":{},\"chunk_hits\":{},\"chunk_loads\":{},\"evictions\":{},\"secs\":{:.3},\"auc\":{:.6}}}",
            safe_obs::json::escape(&r.dataset),
            safe_obs::json::escape(&r.backend),
            r.rows,
            r.cols,
            r.chunk_rows,
            r.table_bytes,
            r.budget_bytes,
            r.peak_resident_bytes,
            r.chunk_hits,
            r.chunk_loads,
            r.evictions,
            r.secs,
            r.auc,
        ));
        if i + 1 < oocore.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]");
    // Unknown sections a newer harness wrote: preserved verbatim so this
    // build never destroys data it doesn't understand.
    for (name, value) in extra {
        out.push_str(&format!(",\n{}: {}", safe_obs::json::escape(name), value.to_json()));
    }
    out.push_str("\n}\n");
    out
}

/// Parsed `BENCH_pipeline.json`, used by the writer binaries to preserve
/// the sections they don't own (see [`pipeline_json`]).
#[derive(Debug, Default, Clone)]
pub struct PipelineDocument {
    /// `schema_version` the document on disk declared (0 when absent —
    /// pre-versioning files). Writers always emit
    /// [`PIPELINE_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Per-stage SAFE fit timings.
    pub stages: Vec<PipelineRow>,
    /// End-to-end fit thread sweep.
    pub parallel: Vec<ParallelRow>,
    /// Scoring throughput rows.
    pub serving: Vec<ServingRow>,
    /// Long-lived scoring daemon sweep rows (`safe-cli bench-serve`).
    pub serving_daemon: Vec<ServingDaemonRow>,
    /// Cold-vs-warm cross-iteration cache sweep rows.
    pub cache: Vec<CacheRow>,
    /// Per-iteration checkpoint write overhead rows.
    pub resilience: Vec<ResilienceRow>,
    /// Exact-vs-staged selection-mode sweep rows.
    pub selection: Vec<SelectionRow>,
    /// Out-of-core backend sweep rows.
    pub oocore: Vec<OocoreRow>,
    /// Top-level keys this build doesn't know, kept verbatim (name, value)
    /// so re-writing the document preserves a future harness's sections.
    pub extra: Vec<(String, safe_obs::json::Value)>,
}

/// Re-read an existing `BENCH_pipeline.json`. A missing file, unparsable
/// JSON, or an absent/garbled section yields empty rows for that section —
/// a benchmark writer should never fail because a previous run left a
/// partial document behind.
pub fn read_pipeline_document(path: &str) -> PipelineDocument {
    let Ok(text) = std::fs::read_to_string(path) else {
        return PipelineDocument::default();
    };
    let Ok(v) = safe_obs::json::parse(&text) else {
        return PipelineDocument::default();
    };
    let rows_of = |section: &str| -> Vec<safe_obs::json::Value> {
        v.get(section)
            .and_then(|s| s.as_array().map(<[_]>::to_vec))
            .unwrap_or_default()
    };
    let stages = rows_of("stages")
        .iter()
        .filter_map(|r| {
            Some(PipelineRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                iteration: r.get("iteration")?.as_u64()? as usize,
                stage: r.get("stage")?.as_str()?.to_string(),
                millis: r.get("millis")?.as_f64()?,
                features_in: r.get("features_in")?.as_u64()?,
                features_out: r.get("features_out")?.as_u64()?,
            })
        })
        .collect();
    let parallel = rows_of("parallel")
        .iter()
        .filter_map(|r| {
            Some(ParallelRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                threads: r.get("threads")?.as_u64()? as usize,
                secs: r.get("secs")?.as_f64()?,
                speedup_vs_serial: r.get("speedup_vs_serial")?.as_f64()?,
            })
        })
        .collect();
    let serving = rows_of("serving")
        .iter()
        .filter_map(|r| {
            Some(ServingRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                method: r.get("method")?.as_str()?.to_string(),
                rows: r.get("rows")?.as_u64()?,
                threads: r.get("threads")?.as_u64()? as usize,
                batch_size: r.get("batch_size")?.as_u64()? as usize,
                secs: r.get("secs")?.as_f64()?,
                rows_per_sec: r.get("rows_per_sec")?.as_f64()?,
                speedup_vs_naive: r.get("speedup_vs_naive")?.as_f64()?,
            })
        })
        .collect();
    let serving_daemon = rows_of("serving_daemon")
        .iter()
        .filter_map(|r| {
            Some(ServingDaemonRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                workers: r.get("workers")?.as_u64()? as usize,
                max_batch: r.get("max_batch")?.as_u64()? as usize,
                requests: r.get("requests")?.as_u64()?,
                secs: r.get("secs")?.as_f64()?,
                rows_per_sec: r.get("rows_per_sec")?.as_f64()?,
                queue_p50_us: r.get("queue_p50_us")?.as_u64()?,
                queue_p99_us: r.get("queue_p99_us")?.as_u64()?,
                request_p50_us: r.get("request_p50_us")?.as_u64()?,
                request_p99_us: r.get("request_p99_us")?.as_u64()?,
            })
        })
        .collect();
    let cache = rows_of("cache")
        .iter()
        .filter_map(|r| {
            Some(CacheRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                iteration: r.get("iteration")?.as_u64()? as usize,
                cold_micros: r.get("cold_micros")?.as_u64()?,
                warm_micros: r.get("warm_micros")?.as_u64()?,
                cold_rebinned: r.get("cold_rebinned")?.as_u64()?,
                warm_rebinned: r.get("warm_rebinned")?.as_u64()?,
            })
        })
        .collect();
    let resilience = rows_of("resilience")
        .iter()
        .filter_map(|r| {
            Some(ResilienceRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                iteration: r.get("iteration")?.as_u64()? as usize,
                ckpt_bytes: r.get("ckpt_bytes")?.as_u64()?,
                ckpt_micros: r.get("ckpt_micros")?.as_u64()?,
                iteration_micros: r.get("iteration_micros")?.as_u64()?,
                overhead_pct: r.get("overhead_pct")?.as_f64()?,
            })
        })
        .collect();
    let selection = rows_of("selection")
        .iter()
        .filter_map(|r| {
            Some(SelectionRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                mode: r.get("mode")?.as_str()?.to_string(),
                staged_millis: r.get("staged_millis")?.as_f64()?,
                redundancy_millis: r.get("redundancy_millis")?.as_f64()?,
                rank_millis: r.get("rank_millis")?.as_f64()?,
                combined_millis: r.get("combined_millis")?.as_f64()?,
                auc: r.get("auc")?.as_f64()?,
                n_selected: r.get("n_selected")?.as_u64()?,
                speedup_vs_exact: r.get("speedup_vs_exact")?.as_f64()?,
            })
        })
        .collect();
    let oocore = rows_of("oocore")
        .iter()
        .filter_map(|r| {
            Some(OocoreRow {
                dataset: r.get("dataset")?.as_str()?.to_string(),
                backend: r.get("backend")?.as_str()?.to_string(),
                rows: r.get("rows")?.as_u64()?,
                cols: r.get("cols")?.as_u64()?,
                chunk_rows: r.get("chunk_rows")?.as_u64()?,
                table_bytes: r.get("table_bytes")?.as_u64()?,
                budget_bytes: r.get("budget_bytes")?.as_u64()?,
                peak_resident_bytes: r.get("peak_resident_bytes")?.as_u64()?,
                chunk_hits: r.get("chunk_hits")?.as_u64()?,
                chunk_loads: r.get("chunk_loads")?.as_u64()?,
                evictions: r.get("evictions")?.as_u64()?,
                secs: r.get("secs")?.as_f64()?,
                auc: r.get("auc")?.as_f64()?,
            })
        })
        .collect();
    let schema_version = v.get("schema_version").and_then(|s| s.as_u64()).unwrap_or(0);
    const KNOWN: [&str; 9] = [
        "schema_version",
        "stages",
        "parallel",
        "serving",
        "serving_daemon",
        "cache",
        "resilience",
        "selection",
        "oocore",
    ];
    let extra: Vec<(String, safe_obs::json::Value)> = v
        .as_object()
        .map(|pairs| {
            pairs
                .iter()
                .filter(|(k, _)| !KNOWN.contains(&k.as_str()))
                .cloned()
                .collect()
        })
        .unwrap_or_default();
    PipelineDocument {
        schema_version,
        stages,
        parallel,
        serving,
        serving_daemon,
        cache,
        resilience,
        selection,
        oocore,
        extra,
    }
}

/// Default output path for `BENCH_pipeline.json`: the repository root.
pub fn bench_pipeline_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_datagen::benchmarks::generate_benchmark_scaled;

    #[test]
    fn method_roster_matches_table3_columns() {
        let labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE"]);
    }

    #[test]
    fn method_parsing() {
        assert_eq!(Method::parse("safe"), Some(Method::Safe));
        assert_eq!(Method::parse("FCTree"), Some(Method::Fct));
        assert_eq!(Method::parse("bogus"), None);
    }

    #[test]
    fn flags_parse_pairs_and_lists() {
        let f = Flags::from_list(vec![
            "--scale".into(),
            "0.25".into(),
            "--datasets".into(),
            "banknote,magic".into(),
            "--methods".into(),
            "safe,orig".into(),
            "--classifiers".into(),
            "xgb,lr".into(),
        ]);
        assert_eq!(f.get_or("scale", 1.0f64), 0.25);
        assert_eq!(f.get_or("missing", 7u32), 7);
        assert_eq!(f.datasets().len(), 2);
        assert_eq!(f.methods(), vec![Method::Safe, Method::Orig]);
        assert_eq!(f.classifiers().len(), 2);
    }

    #[test]
    fn every_method_engineers_a_usable_plan() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.2, 1);
        for method in Method::ALL {
            let eng = engineer_split(method, &split, 0).unwrap();
            assert!(eng.train.n_cols() > 0, "{}", method.label());
            assert_eq!(eng.train.n_rows(), split.train.n_rows());
            assert_eq!(eng.test.n_rows(), split.test.n_rows());
            assert_eq!(
                eng.train.n_cols(),
                eng.test.n_cols(),
                "{}: train/test schema must agree",
                method.label()
            );
        }
    }

    #[test]
    fn pipeline_json_document_parses_back() {
        let stages = vec![PipelineRow {
            dataset: "toy".into(),
            iteration: 0,
            stage: "gbm-train".into(),
            millis: 1.25,
            features_in: 4,
            features_out: 4,
        }];
        let parallel = vec![
            ParallelRow { dataset: "toy".into(), threads: 1, secs: 2.0, speedup_vs_serial: 1.0 },
            ParallelRow { dataset: "toy".into(), threads: 4, secs: 1.0, speedup_vs_serial: 2.0 },
        ];
        let serving = vec![ServingRow {
            dataset: "synth-serving".into(),
            method: "batch-scorer".into(),
            rows: 100_000,
            threads: 4,
            batch_size: 1024,
            secs: 0.5,
            rows_per_sec: 200_000.0,
            speedup_vs_naive: 2.5,
        }];
        let cache = vec![CacheRow {
            dataset: "synth-cache".into(),
            iteration: 1,
            cold_micros: 900,
            warm_micros: 400,
            cold_rebinned: 40,
            warm_rebinned: 12,
        }];
        let resilience = vec![ResilienceRow {
            dataset: "synth-ckpt".into(),
            iteration: 0,
            ckpt_bytes: 2_048,
            ckpt_micros: 150,
            iteration_micros: 30_000,
            overhead_pct: 0.5,
        }];
        let selection = vec![SelectionRow {
            dataset: "gina".into(),
            mode: "staged".into(),
            staged_millis: 40.0,
            redundancy_millis: 90.0,
            rank_millis: 150.0,
            combined_millis: 280.0,
            auc: 0.8912,
            n_selected: 300,
            speedup_vs_exact: 6.3,
        }];
        let serving_daemon = vec![ServingDaemonRow {
            dataset: "synth-daemon".into(),
            workers: 4,
            max_batch: 256,
            requests: 20_000,
            secs: 0.8,
            rows_per_sec: 25_000.0,
            queue_p50_us: 64,
            queue_p99_us: 512,
            request_p50_us: 128,
            request_p99_us: 1024,
        }];
        let text = pipeline_json(&PipelineDocument {
            stages,
            parallel,
            serving,
            serving_daemon,
            cache,
            resilience,
            selection,
            ..Default::default()
        });
        let v = safe_obs::json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(PIPELINE_SCHEMA_VERSION)
        );
        let s = v.get("stages").unwrap().as_array().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].get("stage").unwrap().as_str(), Some("gbm-train"));
        let p = v.get("parallel").unwrap().as_array().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(p[1].get("speedup_vs_serial").unwrap().as_f64(), Some(2.0));
        let sv = v.get("serving").unwrap().as_array().unwrap();
        assert_eq!(sv[0].get("method").unwrap().as_str(), Some("batch-scorer"));
        assert_eq!(sv[0].get("rows").unwrap().as_u64(), Some(100_000));
        let cc = v.get("cache").unwrap().as_array().unwrap();
        assert_eq!(cc[0].get("cold_rebinned").unwrap().as_u64(), Some(40));
        assert_eq!(cc[0].get("warm_rebinned").unwrap().as_u64(), Some(12));
        let rs = v.get("resilience").unwrap().as_array().unwrap();
        assert_eq!(rs[0].get("ckpt_bytes").unwrap().as_u64(), Some(2_048));
        assert_eq!(rs[0].get("overhead_pct").unwrap().as_f64(), Some(0.5));
        let sd = v.get("serving_daemon").unwrap().as_array().unwrap();
        assert_eq!(sd[0].get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(sd[0].get("max_batch").unwrap().as_u64(), Some(256));
        assert_eq!(sd[0].get("requests").unwrap().as_u64(), Some(20_000));
        assert_eq!(sd[0].get("request_p99_us").unwrap().as_u64(), Some(1024));
        let sel = v.get("selection").unwrap().as_array().unwrap();
        assert_eq!(sel[0].get("mode").unwrap().as_str(), Some("staged"));
        assert_eq!(sel[0].get("combined_millis").unwrap().as_f64(), Some(280.0));
        assert_eq!(sel[0].get("n_selected").unwrap().as_u64(), Some(300));
        // All sections empty must still be valid JSON.
        assert!(safe_obs::json::parse(&pipeline_json(&PipelineDocument::default())).is_ok());
    }

    #[test]
    fn pipeline_document_read_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("safe_bench_doc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pipeline.json");
        let path_s = path.to_str().unwrap();

        // Missing file: all sections empty, no error.
        let empty = read_pipeline_document(path_s);
        assert!(empty.stages.is_empty() && empty.parallel.is_empty() && empty.serving.is_empty());
        assert!(empty.cache.is_empty());

        // Simulate the serving benchmark writing first — and a *future*
        // harness having added a section this build doesn't know.
        let serving = vec![ServingRow {
            dataset: "synth-serving".into(),
            method: "naive-row-loop".into(),
            rows: 5,
            threads: 1,
            batch_size: 0,
            secs: 1.0,
            rows_per_sec: 5.0,
            speedup_vs_naive: 1.0,
        }];
        let mut first = pipeline_json(&PipelineDocument { serving, ..Default::default() });
        // Splice an unknown top-level section in by hand (a future writer).
        first = first.replacen(
            "\"stages\": [",
            "\"gpu_sweep\": [{\"dataset\":\"m\",\"device\":\"mock\",\"secs\":0.25}],\n\"stages\": [",
            1,
        );
        std::fs::write(&path, &first).unwrap();
        // ...then table5 re-reading and writing its own sections.
        let doc = read_pipeline_document(path_s);
        assert_eq!(doc.schema_version, PIPELINE_SCHEMA_VERSION);
        assert_eq!(doc.extra.len(), 1, "unknown section must be captured: {doc:?}");
        assert_eq!(doc.extra[0].0, "gpu_sweep");
        let parallel =
            vec![ParallelRow { dataset: "m".into(), threads: 2, secs: 1.0, speedup_vs_serial: 1.5 }];
        let cache = vec![CacheRow {
            dataset: "m".into(),
            iteration: 0,
            cold_micros: 10,
            warm_micros: 10,
            cold_rebinned: 8,
            warm_rebinned: 8,
        }];
        let resilience = vec![ResilienceRow {
            dataset: "m".into(),
            iteration: 0,
            ckpt_bytes: 512,
            ckpt_micros: 90,
            iteration_micros: 9_000,
            overhead_pct: 1.0,
        }];
        let selection = vec![SelectionRow {
            dataset: "m".into(),
            mode: "exact".into(),
            staged_millis: 0.0,
            redundancy_millis: 12.0,
            rank_millis: 30.0,
            combined_millis: 42.0,
            auc: 0.75,
            n_selected: 10,
            speedup_vs_exact: 1.0,
        }];
        std::fs::write(
            &path,
            pipeline_json(&PipelineDocument { parallel, cache, resilience, selection, ..doc }),
        )
        .unwrap();

        // Everything survives: the other binary's section AND the unknown
        // future section.
        let back = read_pipeline_document(path_s);
        assert_eq!(back.serving.len(), 1);
        assert_eq!(back.serving[0].method, "naive-row-loop");
        assert_eq!(back.serving[0].rows, 5);
        assert_eq!(back.parallel.len(), 1);
        assert_eq!(back.parallel[0].threads, 2);
        assert_eq!(back.cache.len(), 1);
        assert_eq!(back.cache[0].cold_rebinned, 8);
        assert_eq!(back.resilience.len(), 1);
        assert_eq!(back.resilience[0].ckpt_bytes, 512);
        assert_eq!(back.selection.len(), 1);
        assert_eq!(back.selection[0].mode, "exact");
        assert_eq!(back.selection[0].combined_millis, 42.0);
        assert_eq!(back.extra.len(), 1);
        assert_eq!(back.extra[0].0, "gpu_sweep");
        let gpu_rows = back.extra[0].1.as_array().unwrap();
        assert_eq!(gpu_rows[0].get("device").unwrap().as_str(), Some("mock"));
        assert_eq!(gpu_rows[0].get("secs").unwrap().as_f64(), Some(0.25));

        // Garbage never panics the readers.
        std::fs::write(&path, "not json at all").unwrap();
        let garbled = read_pipeline_document(path_s);
        assert!(garbled.serving.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_sweep_reports_warm_reuse() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.15, 3);
        let cold = traced_safe_cache_report(&split.train, 3, 2, false).unwrap();
        let warm = traced_safe_cache_report(&split.train, 3, 2, true).unwrap();
        let rows = cache_rows("banknote", &warm, &cold);
        assert_eq!(rows.len(), 2);
        // Iteration 0 has no history to reuse; by iteration 1 the miner
        // retrains on already-binned survivors, so the warm run re-bins
        // strictly fewer columns than the cold run quantizes.
        assert!(
            rows[1].warm_rebinned < rows[1].cold_rebinned,
            "iteration 1 must reuse cached columns: {:?}",
            rows[1]
        );
    }

    #[test]
    fn resilience_sweep_measures_checkpoint_overhead() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.15, 3);
        let dir = std::env::temp_dir().join(format!("safe_bench_resil_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let (report, events) = traced_checkpointed_report(&split.train, 3, 2, &dir).unwrap();
        let rows = resilience_rows("banknote", &events, &report);
        assert!(!rows.is_empty(), "checkpointed fit must emit checkpoint spans");
        for row in &rows {
            assert!(row.ckpt_bytes > 0, "{row:?}");
            assert!(row.iteration_micros > 0, "{row:?}");
        }
        // The report itself must stay free of checkpoint telemetry (the
        // sink-only invariant the differential suites rely on).
        assert!(report
            .iterations
            .iter()
            .all(|it| it.stages.iter().all(|s| s.stage != safe_obs::stages::CHECKPOINT)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timed_safe_fit_is_thread_invariant_in_outcome() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.15, 3);
        for threads in [1usize, 2] {
            let secs = timed_safe_fit(&split.train, 0, threads).unwrap();
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn auc_evaluation_runs() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.2, 2);
        let eng = engineer_split(Method::Orig, &split, 0).unwrap();
        let a = auc100(ClassifierKind::Xgb, &eng, 0).unwrap();
        assert!(a > 50.0 && a <= 100.0, "auc100 = {a}");
    }
}
