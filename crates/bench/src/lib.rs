//! # safe-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p safe-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_iv_bands` | Table I (IV predictive-power bands) |
//! | `table2_pearson_bands` | Table II (Pearson strength bands) |
//! | `table3_classification` | Table III (AUC: 6 methods × 9 classifiers × 12 datasets) |
//! | `table4_datasets` | Table IV (benchmark dataset info) |
//! | `table5_execution_time` | Table V (FE method wall-clock) |
//! | `table6_stability` | Table VI (feature stability, JSD) |
//! | `table7_business_datasets` | Table VII (business dataset info) |
//! | `table8_business` | Table VIII (business AUC: 4 methods × 3 classifiers) |
//! | `fig3_feature_importance` | Fig. 3 (generated vs original importance) |
//! | `fig4_iterations` | Fig. 4 (AUC over SAFE iterations) |
//! | `complexity_sweep` | §IV-D (SAFE runtime vs N and vs K) |
//!
//! Common flags: `--scale <f>` (fraction of the paper's row counts, default
//! varies per binary), `--seed <u64>`, `--datasets a,b,c`, `--repeats <n>`.
//! This module holds the shared plumbing: method roster, evaluation loops,
//! flag parsing, table formatting.

use std::time::{Duration, Instant};

use safe_baselines::{AutoLearn, FcTree, Tfc};
use safe_core::engineer::{FeatureEngineer, Identity};
use safe_core::{Safe, SafeConfig};
use safe_data::dataset::Dataset;
use safe_data::split::DatasetSplit;
use safe_datagen::benchmarks::BenchmarkId;
use safe_models::classifier::ClassifierKind;

/// The six feature-engineering methods of Table III, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Original features, untouched.
    Orig,
    /// FCTree (Fan et al., 2010).
    Fct,
    /// TFC (Piramuthu & Sikora, 2009).
    Tfc,
    /// Random combinations over all features.
    Rand,
    /// Random combinations over GBM split features.
    Imp,
    /// The paper's method.
    Safe,
    /// AutoLearn (Kaul et al., 2017) — not in the paper's Table III roster,
    /// available via `--methods autolearn` as an extension.
    AutoLearn,
}

impl Method {
    /// Table III column order.
    pub const ALL: [Method; 6] = [
        Method::Orig,
        Method::Fct,
        Method::Tfc,
        Method::Rand,
        Method::Imp,
        Method::Safe,
    ];

    /// Column header as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::Orig => "ORIG",
            Method::Fct => "FCT",
            Method::Tfc => "TFC",
            Method::Rand => "RAND",
            Method::Imp => "IMP",
            Method::Safe => "SAFE",
            Method::AutoLearn => "AUTOL",
        }
    }

    /// Parse one method name.
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_uppercase().as_str() {
            "ORIG" => Some(Method::Orig),
            "FCT" | "FCTREE" => Some(Method::Fct),
            "TFC" => Some(Method::Tfc),
            "RAND" => Some(Method::Rand),
            "IMP" => Some(Method::Imp),
            "SAFE" => Some(Method::Safe),
            "AUTOL" | "AUTOLEARN" => Some(Method::AutoLearn),
            _ => None,
        }
    }

    /// Build the engineer with paper-default settings.
    pub fn build(self, seed: u64) -> Box<dyn FeatureEngineer> {
        match self {
            Method::Orig => Box::new(Identity),
            Method::Fct => Box::new(FcTree { seed, ..FcTree::default() }),
            Method::Tfc => Box::new(Tfc::default()),
            Method::Rand => Box::new(Safe::new(SafeConfig::rand_baseline(seed))),
            Method::Imp => Box::new(Safe::new(SafeConfig::imp_baseline(seed))),
            Method::Safe => Box::new(Safe::new(SafeConfig { seed, ..SafeConfig::paper() })),
            Method::AutoLearn => Box::new(AutoLearn { seed, ..AutoLearn::default() }),
        }
    }
}

/// One FE method's output on a split, with the fit timed (Table V).
pub struct EngineeredSplit {
    /// Transformed training set.
    pub train: Dataset,
    /// Transformed validation set (when the split had one).
    pub valid: Option<Dataset>,
    /// Transformed test set.
    pub test: Dataset,
    /// Wall-clock time of plan learning (excludes transformation).
    pub fit_time: Duration,
    /// The learned plan.
    pub plan: safe_core::plan::FeaturePlan,
}

/// Run one FE method on a split.
pub fn engineer_split(
    method: Method,
    split: &DatasetSplit,
    seed: u64,
) -> Result<EngineeredSplit, String> {
    let engineer = method.build(seed);
    let start = Instant::now();
    let plan = engineer.engineer(&split.train, split.valid.as_ref())?;
    let fit_time = start.elapsed();
    let train = plan.apply(&split.train).map_err(|e| e.to_string())?;
    let valid = match &split.valid {
        Some(v) => Some(plan.apply(v).map_err(|e| e.to_string())?),
        None => None,
    };
    let test = plan.apply(&split.test).map_err(|e| e.to_string())?;
    Ok(EngineeredSplit {
        train,
        valid,
        test,
        fit_time,
        plan,
    })
}

/// Train a classifier on the engineered train split and report test AUC
/// (× 100, the paper's convention).
pub fn auc100(kind: ClassifierKind, eng: &EngineeredSplit, seed: u64) -> Result<f64, String> {
    safe_models::classifier::evaluate_auc(kind, &eng.train, &eng.test, seed)
        .map(|a| a * 100.0)
        .map_err(|e| e.to_string())
}

/// Tiny flag parser: `--name value` pairs from `std::env::args`.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    args: Vec<(String, String)>,
}

impl Flags {
    /// Parse the process arguments.
    pub fn from_env() -> Flags {
        Flags::from_list(std::env::args().skip(1).collect())
    }

    /// Parse an explicit list (testable).
    pub fn from_list(raw: Vec<String>) -> Flags {
        let mut args = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).cloned().unwrap_or_default();
                args.push((name.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Flags { args }
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated dataset selection (default: all 12).
    pub fn datasets(&self) -> Vec<BenchmarkId> {
        match self.get("datasets") {
            None => BenchmarkId::ALL.to_vec(),
            Some(spec) => {
                let wanted: Vec<String> =
                    spec.split(',').map(|s| s.trim().to_lowercase()).collect();
                BenchmarkId::ALL
                    .into_iter()
                    .filter(|b| wanted.iter().any(|w| w == b.spec().name))
                    .collect()
            }
        }
    }

    /// Comma-separated method selection (default: all 6).
    pub fn methods(&self) -> Vec<Method> {
        match self.get("methods") {
            None => Method::ALL.to_vec(),
            Some(spec) => spec.split(',').filter_map(Method::parse).collect(),
        }
    }

    /// Comma-separated classifier selection (default: all 9).
    pub fn classifiers(&self) -> Vec<ClassifierKind> {
        match self.get("classifiers") {
            None => ClassifierKind::ALL.to_vec(),
            Some(spec) => {
                let wanted: Vec<String> =
                    spec.split(',').map(|s| s.trim().to_lowercase()).collect();
                ClassifierKind::ALL
                    .into_iter()
                    .filter(|k| wanted.iter().any(|w| w == &k.abbrev().to_lowercase()))
                    .collect()
            }
        }
    }
}

/// Fixed-width table printer (plain text, paper-style).
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Create with column headers; prints the header row immediately.
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        let p = TablePrinter {
            widths: widths.to_vec(),
        };
        p.row(headers);
        let total: usize = p.widths.iter().sum::<usize>() + p.widths.len();
        println!("{}", "-".repeat(total));
        p
    }

    /// Print one row.
    pub fn row(&self, cells: &[&str]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join(" "));
    }
}

/// Format an AUC×100 cell like the paper ("87.16").
pub fn fmt_auc(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a duration in seconds like Table V ("9.80").
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Fit SAFE on a split with the report machinery engaged and return the
/// per-stage run report (telemetry never alters the fit itself).
pub fn traced_safe_report(
    split: &DatasetSplit,
    seed: u64,
) -> Result<safe_obs::RunReport, String> {
    let config = SafeConfig { seed, ..SafeConfig::paper() };
    Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .map(|outcome| outcome.report)
        .map_err(|e| e.to_string())
}

/// One row of `BENCH_pipeline.json`: a stage of one SAFE iteration on one
/// dataset.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Benchmark dataset name.
    pub dataset: String,
    /// SAFE iteration index.
    pub iteration: usize,
    /// Stage name from the `safe_obs::stages` vocabulary.
    pub stage: String,
    /// Stage wall time in milliseconds.
    pub millis: f64,
    /// Feature count entering the stage (0 where not applicable).
    pub features_in: u64,
    /// Feature count leaving the stage (0 where not applicable).
    pub features_out: u64,
}

/// Flatten a run report into `BENCH_pipeline.json` rows for one dataset.
pub fn pipeline_rows(dataset: &str, report: &safe_obs::RunReport) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for it in &report.iterations {
        for st in &it.stages {
            rows.push(PipelineRow {
                dataset: dataset.to_string(),
                iteration: it.iteration,
                stage: st.stage.clone(),
                millis: st.micros as f64 / 1000.0,
                features_in: st.features_in,
                features_out: st.features_out,
            });
        }
    }
    rows
}

/// One row of the `parallel` section of `BENCH_pipeline.json`: one
/// end-to-end SAFE fit at a fixed worker budget on the sweep dataset.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Sweep dataset name.
    pub dataset: String,
    /// Worker budget for the fit (`1` = the serial path).
    pub threads: usize,
    /// End-to-end fit wall time in seconds.
    pub secs: f64,
    /// `serial secs / this row's secs` (1.0 for the serial row itself).
    pub speedup_vs_serial: f64,
}

/// Time one end-to-end SAFE fit at a fixed worker budget (the `parallel`
/// sweep of Table V). Returns the fit wall time in seconds.
pub fn timed_safe_fit(data: &Dataset, seed: u64, threads: usize) -> Result<f64, String> {
    let config = SafeConfig { seed, ..SafeConfig::paper() }.with_threads(threads);
    let start = Instant::now();
    Safe::new(config)
        .fit(data, None)
        .map_err(|e| e.to_string())?;
    Ok(start.elapsed().as_secs_f64())
}

/// Serialize the `BENCH_pipeline.json` document: an object holding the
/// per-stage rows (`stages`) and the thread-sweep rows (`parallel`).
///
/// Schema:
/// `{"stages": [{dataset, iteration, stage, millis, features_in,
/// features_out}], "parallel": [{dataset, threads, secs,
/// speedup_vs_serial}]}`
pub fn pipeline_json(stages: &[PipelineRow], parallel: &[ParallelRow]) -> String {
    let mut out = String::from("{\n\"stages\": [\n");
    for (i, r) in stages.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"iteration\":{},\"stage\":{},\"millis\":{:.3},\"features_in\":{},\"features_out\":{}}}",
            safe_obs::json::escape(&r.dataset),
            r.iteration,
            safe_obs::json::escape(&r.stage),
            r.millis,
            r.features_in,
            r.features_out,
        ));
        if i + 1 < stages.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"parallel\": [\n");
    for (i, r) in parallel.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\":{},\"threads\":{},\"secs\":{:.3},\"speedup_vs_serial\":{:.3}}}",
            safe_obs::json::escape(&r.dataset),
            r.threads,
            r.secs,
            r.speedup_vs_serial,
        ));
        if i + 1 < parallel.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Default output path for `BENCH_pipeline.json`: the repository root.
pub fn bench_pipeline_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_datagen::benchmarks::generate_benchmark_scaled;

    #[test]
    fn method_roster_matches_table3_columns() {
        let labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE"]);
    }

    #[test]
    fn method_parsing() {
        assert_eq!(Method::parse("safe"), Some(Method::Safe));
        assert_eq!(Method::parse("FCTree"), Some(Method::Fct));
        assert_eq!(Method::parse("bogus"), None);
    }

    #[test]
    fn flags_parse_pairs_and_lists() {
        let f = Flags::from_list(vec![
            "--scale".into(),
            "0.25".into(),
            "--datasets".into(),
            "banknote,magic".into(),
            "--methods".into(),
            "safe,orig".into(),
            "--classifiers".into(),
            "xgb,lr".into(),
        ]);
        assert_eq!(f.get_or("scale", 1.0f64), 0.25);
        assert_eq!(f.get_or("missing", 7u32), 7);
        assert_eq!(f.datasets().len(), 2);
        assert_eq!(f.methods(), vec![Method::Safe, Method::Orig]);
        assert_eq!(f.classifiers().len(), 2);
    }

    #[test]
    fn every_method_engineers_a_usable_plan() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.2, 1);
        for method in Method::ALL {
            let eng = engineer_split(method, &split, 0).unwrap();
            assert!(eng.train.n_cols() > 0, "{}", method.label());
            assert_eq!(eng.train.n_rows(), split.train.n_rows());
            assert_eq!(eng.test.n_rows(), split.test.n_rows());
            assert_eq!(
                eng.train.n_cols(),
                eng.test.n_cols(),
                "{}: train/test schema must agree",
                method.label()
            );
        }
    }

    #[test]
    fn pipeline_json_document_parses_back() {
        let stages = vec![PipelineRow {
            dataset: "toy".into(),
            iteration: 0,
            stage: "gbm-train".into(),
            millis: 1.25,
            features_in: 4,
            features_out: 4,
        }];
        let parallel = vec![
            ParallelRow { dataset: "toy".into(), threads: 1, secs: 2.0, speedup_vs_serial: 1.0 },
            ParallelRow { dataset: "toy".into(), threads: 4, secs: 1.0, speedup_vs_serial: 2.0 },
        ];
        let text = pipeline_json(&stages, &parallel);
        let v = safe_obs::json::parse(&text).unwrap();
        let s = v.get("stages").unwrap().as_array().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].get("stage").unwrap().as_str(), Some("gbm-train"));
        let p = v.get("parallel").unwrap().as_array().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(p[1].get("speedup_vs_serial").unwrap().as_f64(), Some(2.0));
        // Both sections empty must still be valid JSON.
        assert!(safe_obs::json::parse(&pipeline_json(&[], &[])).is_ok());
    }

    #[test]
    fn timed_safe_fit_is_thread_invariant_in_outcome() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.15, 3);
        for threads in [1usize, 2] {
            let secs = timed_safe_fit(&split.train, 0, threads).unwrap();
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn auc_evaluation_runs() {
        let split = generate_benchmark_scaled(BenchmarkId::Banknote, 0.2, 2);
        let eng = engineer_split(Method::Orig, &split, 0).unwrap();
        let a = auc100(ClassifierKind::Xgb, &eng, 0).unwrap();
        assert!(a > 50.0 && a <= 100.0, "auc100 = {a}");
    }
}
