//! FCTree: feature construction inside decision-tree induction.
//!
//! Following Fan et al. (2010): a decision tree is grown by information
//! gain; at every node the split candidates are the original features *plus*
//! `ne` freshly constructed features (random operator applied to random
//! parents, drawn per node). Constructed features chosen at internal
//! decision nodes form the engineered feature set; per the paper's protocol
//! the final output is reduced to `2M` features by information gain.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use safe_core::engineer::FeatureEngineer;
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::binning::{bin_column, BinStrategy};
use safe_data::dataset::Dataset;
use safe_ops::registry::OperatorRegistry;
use safe_stats::entropy::information_gain;

/// FCTree configuration.
#[derive(Debug, Clone)]
pub struct FcTree {
    /// Constructed candidates per node (`ne` in the paper's Eq. 9).
    pub ne: usize,
    /// Depth cap of the construction tree.
    pub max_depth: usize,
    /// Minimum node size worth splitting.
    pub min_samples_split: usize,
    /// Output budget multiplier (2 ⇒ 2M, matching the experiments).
    pub cap_multiplier: usize,
    /// Equal-frequency bins for information-gain scoring.
    pub beta: usize,
    /// Operator set for constructions.
    pub operators: OperatorRegistry,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FcTree {
    fn default() -> Self {
        FcTree {
            ne: 20,
            max_depth: 16,
            min_samples_split: 8,
            cap_multiplier: 2,
            beta: 10,
            operators: OperatorRegistry::arithmetic(),
            seed: 0,
        }
    }
}

fn ig_of(values: &[f64], labels: &[u8], beta: usize) -> f64 {
    match bin_column(values, beta, BinStrategy::EqualFrequency) {
        Ok(a) => information_gain(&a.bins, labels, a.n_bins),
        Err(_) => 0.0,
    }
}

/// A constructed candidate at some node.
struct Constructed {
    step: PlanStep,
    values: Vec<f64>,
}

impl FcTree {
    /// Draw one random construction over the original features.
    fn draw_candidate(
        &self,
        train: &Dataset,
        labels: &[u8],
        rng: &mut StdRng,
    ) -> Option<Constructed> {
        let ops = self.operators.all();
        if ops.is_empty() {
            return None;
        }
        let op = &ops[rng.gen_range(0..ops.len())];
        let m = train.n_cols();
        if op.arity() > m {
            return None;
        }
        let mut parents: Vec<usize> = (0..m).collect();
        parents.shuffle(rng);
        parents.truncate(op.arity());
        let cols: Vec<&[f64]> = parents
            .iter()
            .map(|&f| train.column(f).expect("in range"))
            .collect();
        let fitted = op.fit(&cols, Some(labels)).ok()?;
        let values = fitted.apply(&cols);
        let parent_names: Vec<String> = parents
            .iter()
            .map(|&f| train.meta()[f].name.clone())
            .collect();
        let name = format!("{}({})", op.name(), parent_names.join(","));
        Some(Constructed {
            step: PlanStep {
                name,
                op: op.name().to_string(),
                parents: parent_names,
                params: fitted.params(),
            },
            values,
        })
    }

    /// Best binary split of `values` restricted to `rows`, scored by
    /// information gain with **exhaustive** threshold search over the sorted
    /// node values — faithful to Fan et al.'s decision-tree induction (this
    /// O(n log n)-per-feature-per-node scan is what gives FCTree its
    /// `O(ne·N·(log N)²)` cost, Eq. 9). Returns `(gain, threshold)`.
    fn best_split(values: &[f64], rows: &[usize], labels: &[u8], _beta: usize) -> (f64, f64) {
        let mut pairs: Vec<(f64, u8)> = rows
            .iter()
            .filter(|&&r| values[r].is_finite())
            .map(|&r| (values[r], labels[r]))
            .collect();
        if pairs.len() < 2 {
            return (0.0, f64::NAN);
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let total_pos: usize = pairs.iter().filter(|(_, y)| *y == 1).count();
        let total = pairs.len();
        let total_neg = total - total_pos;
        let base = safe_stats::entropy::entropy_from_counts(&[total_pos, total_neg]);

        let mut best = (0.0, f64::NAN);
        let mut left_pos = 0usize;
        for i in 0..total - 1 {
            if pairs[i].1 == 1 {
                left_pos += 1;
            }
            // Thresholds only between distinct values.
            if pairs[i].0 == pairs[i + 1].0 {
                continue;
            }
            let left_n = i + 1;
            let right_n = total - left_n;
            let right_pos = total_pos - left_pos;
            let h_left = safe_stats::entropy::entropy_from_counts(&[left_pos, left_n - left_pos]);
            let h_right =
                safe_stats::entropy::entropy_from_counts(&[right_pos, right_n - right_pos]);
            let gain = base
                - (left_n as f64 / total as f64) * h_left
                - (right_n as f64 / total as f64) * h_right;
            if gain > best.0 {
                best = (gain, pairs[i].0);
            }
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        train: &Dataset,
        labels: &[u8],
        rows: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
        chosen: &mut Vec<(PlanStep, Vec<f64>)>,
    ) {
        if depth >= self.max_depth || rows.len() < self.min_samples_split {
            return;
        }
        let pos = rows.iter().filter(|&&r| labels[r] == 1).count();
        if pos == 0 || pos == rows.len() {
            return;
        }

        // Original candidates.
        let mut best_gain = 0.0;
        let mut best_threshold = f64::NAN;
        let mut best_col: Option<Vec<f64>> = None;
        let mut best_step: Option<PlanStep> = None;
        for f in 0..train.n_cols() {
            let col = train.column(f).expect("in range");
            let (gain, threshold) = Self::best_split(col, &rows, labels, self.beta);
            if gain > best_gain {
                best_gain = gain;
                best_threshold = threshold;
                best_col = Some(col.to_vec());
                best_step = None;
            }
        }
        // Constructed candidates.
        for _ in 0..self.ne {
            if let Some(c) = self.draw_candidate(train, labels, rng) {
                let (gain, threshold) = Self::best_split(&c.values, &rows, labels, self.beta);
                if gain > best_gain {
                    best_gain = gain;
                    best_threshold = threshold;
                    best_col = Some(c.values.clone());
                    best_step = Some(c.step);
                }
            }
        }

        let Some(col) = best_col else { return };
        if best_gain <= 1e-12 || !best_threshold.is_finite() {
            return;
        }
        if let Some(step) = best_step {
            if !chosen.iter().any(|(s, _)| s.name == step.name) {
                chosen.push((step, col.clone()));
            }
        }
        let (left, right): (Vec<usize>, Vec<usize>) =
            rows.into_iter().partition(|&r| col[r] <= best_threshold);
        if left.is_empty() || right.is_empty() {
            return;
        }
        self.grow(train, labels, left, depth + 1, rng, chosen);
        self.grow(train, labels, right, depth + 1, rng, chosen);
    }
}

impl FeatureEngineer for FcTree {
    fn method_name(&self) -> &'static str {
        "FCT"
    }

    fn engineer(
        &self,
        train: &Dataset,
        _valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String> {
        let labels = train
            .labels()
            .ok_or_else(|| "FCTree requires labels".to_string())?;
        if train.is_empty() {
            return Err("FCTree requires a non-empty dataset".into());
        }
        let names: Vec<String> = train.feature_names().iter().map(|s| s.to_string()).collect();
        let m = names.len();
        let cap = self.cap_multiplier * m;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut chosen: Vec<(PlanStep, Vec<f64>)> = Vec::new();
        self.grow(
            train,
            labels,
            (0..train.n_rows()).collect(),
            0,
            &mut rng,
            &mut chosen,
        );

        // Final reduction to 2M by information gain (paper protocol), over
        // originals + constructions chosen at internal nodes.
        let mut scored: Vec<(f64, String, Option<PlanStep>)> = (0..m)
            .map(|f| {
                (
                    ig_of(train.column(f).expect("in range"), labels, self.beta),
                    names[f].clone(),
                    None,
                )
            })
            .collect();
        for (step, values) in chosen {
            scored.push((ig_of(&values, labels, self.beta), step.name.clone(), Some(step)));
        }
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        scored.truncate(cap);

        let mut steps = Vec::new();
        let mut outputs = Vec::new();
        for (_, name, step) in scored {
            if let Some(s) = step {
                steps.push(s);
            }
            outputs.push(name);
        }
        Ok(FeaturePlan {
            input_names: names,
            steps,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ratio_data(n: usize, seed: u64) -> Dataset {
        // Signal lives in the ratio a/b.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![Vec::new(); 3];
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.1..2.0);
            let b: f64 = rng.gen_range(0.1..2.0);
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(rng.gen_range(-1.0..1.0));
            y.push((a / b > 1.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            cols,
            Some(y),
        )
        .unwrap()
    }

    #[test]
    fn constructs_useful_features() {
        let ds = ratio_data(800, 1);
        let plan = FcTree::default().engineer(&ds, None).unwrap();
        assert!(!plan.steps.is_empty(), "FCTree should construct features");
        assert!(plan.outputs.len() <= 6, "cap = 2M = 6, got {:?}", plan.outputs);
        // The ratio (or an equivalent a,b arithmetic) should be prominent.
        let has_ab = plan
            .steps
            .iter()
            .any(|s| s.parents.contains(&"a".to_string()) && s.parents.contains(&"b".to_string()));
        assert!(has_ab, "expected an (a,b) construction: {:?}", plan.steps);
    }

    #[test]
    fn plan_applies_cleanly() {
        let ds = ratio_data(300, 2);
        let plan = FcTree::default().engineer(&ds, None).unwrap();
        let out = plan.apply(&ds).unwrap();
        assert_eq!(out.n_cols(), plan.outputs.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = ratio_data(300, 3);
        let a = FcTree { seed: 9, ..FcTree::default() }.engineer(&ds, None).unwrap();
        let b = FcTree { seed: 9, ..FcTree::default() }.engineer(&ds, None).unwrap();
        assert_eq!(a, b);
        let c = FcTree { seed: 10, ..FcTree::default() }.engineer(&ds, None).unwrap();
        // Different seeds draw different constructions (may rarely coincide;
        // allow equality only of outputs, not of everything).
        assert!(a != c || a.outputs == c.outputs);
    }

    #[test]
    fn ne_zero_degenerates_to_plain_tree() {
        let ds = ratio_data(300, 4);
        let plan = FcTree { ne: 0, ..FcTree::default() }.engineer(&ds, None).unwrap();
        assert!(plan.steps.is_empty(), "no constructions without candidates");
        assert!(!plan.outputs.is_empty(), "originals still ranked and kept");
    }

    #[test]
    fn pure_node_stops_recursion() {
        let ds = Dataset::from_columns(
            vec!["x".into()],
            vec![(0..50).map(|i| i as f64).collect()],
            Some(vec![1; 50]),
        )
        .unwrap();
        let plan = FcTree::default().engineer(&ds, None).unwrap();
        assert!(plan.steps.is_empty());
    }
}
