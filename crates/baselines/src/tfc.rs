//! TFC: exhaustive generate-then-select feature construction.
//!
//! One iteration (matching the paper's experimental protocol) works on the
//! original pool X:
//!
//! 1. generate **all** legal features — every operator applied to every
//!    feature combination of its arity (ordered for non-commutative
//!    operators),
//! 2. score every candidate (original and generated) by information gain
//!    against the label (equal-frequency binning),
//! 3. keep the top `cap_multiplier · M`.
//!
//! Candidate columns are scored on the fly and discarded; only the winners
//! are materialized into the plan, keeping memory at `O(N)` per worker even
//! though the candidate count is `O(M²·|O|)`. Scoring runs in parallel over
//! combinations.

use safe_core::engineer::FeatureEngineer;
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::binning::{bin_column, BinStrategy};
use safe_data::dataset::Dataset;
use safe_ops::registry::OperatorRegistry;
use safe_stats::entropy::information_gain;
use safe_stats::par::{par_map, Parallelism};

/// TFC configuration.
#[derive(Debug, Clone)]
pub struct Tfc {
    /// Output budget as a multiple of the original feature count (2 in the
    /// experiments, matching SAFE's 2M cap).
    pub cap_multiplier: usize,
    /// Equal-frequency bins for information-gain scoring.
    pub beta: usize,
    /// Operator set (the experiments use the four arithmetic operators).
    pub operators: OperatorRegistry,
    /// Worker budget for candidate scoring (0 = one worker per core).
    pub parallelism: Parallelism,
}

impl Default for Tfc {
    fn default() -> Self {
        Tfc {
            cap_multiplier: 2,
            beta: 10,
            operators: OperatorRegistry::arithmetic(),
            parallelism: Parallelism::auto(),
        }
    }
}

/// Information gain of a numeric column against binary labels after
/// equal-frequency binning.
fn ig_of(values: &[f64], labels: &[u8], beta: usize) -> f64 {
    match bin_column(values, beta, BinStrategy::EqualFrequency) {
        Ok(a) => information_gain(&a.bins, labels, a.n_bins),
        Err(_) => 0.0,
    }
}

/// A scored candidate: either an original column or a (op, parents) recipe.
#[derive(Debug, Clone)]
struct Scored {
    ig: f64,
    step: Option<PlanStep>,
    /// Column name (original name or generated name).
    name: String,
}

impl Tfc {
    /// Enumerate all ordered parent tuples for an operator of the given
    /// arity over `m` features (unordered for commutative operators).
    fn tuples(m: usize, arity: usize, commutative: bool) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        match arity {
            1 => {
                for i in 0..m {
                    out.push(vec![i]);
                }
            }
            2 => {
                for i in 0..m {
                    for j in 0..m {
                        if i == j {
                            continue;
                        }
                        if commutative && j < i {
                            continue;
                        }
                        out.push(vec![i, j]);
                    }
                }
            }
            _ => {
                // Higher arities are not part of the TFC experiments; support
                // them with unordered triples to stay total.
                if arity == 3 {
                    for i in 0..m {
                        for j in (i + 1)..m {
                            for k in (j + 1)..m {
                                out.push(vec![i, j, k]);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl FeatureEngineer for Tfc {
    fn method_name(&self) -> &'static str {
        "TFC"
    }

    fn engineer(
        &self,
        train: &Dataset,
        _valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String> {
        let labels = train
            .labels()
            .ok_or_else(|| "TFC requires labels".to_string())?;
        let m = train.n_cols();
        if m == 0 || train.n_rows() == 0 {
            return Err("TFC requires a non-empty dataset".into());
        }
        let cap = self.cap_multiplier * m;
        let names: Vec<String> = train.feature_names().iter().map(|s| s.to_string()).collect();

        // Score the originals.
        let mut scored: Vec<Scored> = (0..m)
            .map(|f| Scored {
                ig: ig_of(train.column(f).expect("in range"), labels, self.beta),
                step: None,
                name: names[f].clone(),
            })
            .collect();

        // Exhaustively generate and score — the defining (and expensive)
        // step of TFC. Parallel over (operator, tuple) work items.
        for op in self.operators.all() {
            let tuples = Self::tuples(m, op.arity(), op.commutative());
            let candidates: Vec<Option<Scored>> =
                par_map(self.parallelism, tuples.len(), |t| {
                    let tuple = &tuples[t];
                    let cols: Vec<&[f64]> = tuple
                        .iter()
                        .map(|&f| train.column(f).expect("in range"))
                        .collect();
                    let fitted = op.fit(&cols, Some(labels)).ok()?;
                    let values = fitted.apply(&cols);
                    let ig = ig_of(&values, labels, self.beta);
                    let parents: Vec<String> =
                        tuple.iter().map(|&f| names[f].clone()).collect();
                    let name = format!("{}({})", op.name(), parents.join(","));
                    Some(Scored {
                        ig,
                        step: Some(PlanStep {
                            name: name.clone(),
                            op: op.name().to_string(),
                            parents,
                            params: fitted.params(),
                        }),
                        name,
                    })
                });
            scored.extend(candidates.into_iter().flatten());
        }

        // Select the global top-`cap` by information gain.
        scored.sort_by(|a, b| {
            b.ig.partial_cmp(&a.ig)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        scored.truncate(cap);

        let mut steps = Vec::new();
        let mut outputs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for s in scored {
            if !seen.insert(s.name.clone()) {
                continue;
            }
            if let Some(step) = s.step {
                steps.push(step);
            }
            outputs.push(s.name);
        }
        Ok(FeaturePlan {
            input_names: names,
            steps,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn product_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![Vec::new(); 3];
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(rng.gen_range(-1.0..1.0));
            y.push((a * b > 0.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            cols,
            Some(y),
        )
        .unwrap()
    }

    #[test]
    fn finds_the_product_feature_first() {
        let ds = product_data(800, 1);
        let plan = Tfc::default().engineer(&ds, None).unwrap();
        assert!(
            plan.outputs[0] == "mul(a,b)" || plan.outputs[0] == "div(a,b)" || plan.outputs[0] == "div(b,a)",
            "top TFC feature should involve (a, b): {:?}",
            plan.outputs
        );
        assert!(plan.outputs.len() <= 6, "cap = 2M = 6");
    }

    #[test]
    fn plan_is_applicable() {
        let ds = product_data(300, 2);
        let plan = Tfc::default().engineer(&ds, None).unwrap();
        let out = plan.apply(&ds).unwrap();
        assert_eq!(out.n_cols(), plan.outputs.len());
        assert_eq!(out.n_rows(), 300);
    }

    #[test]
    fn candidate_space_is_exhaustive() {
        // 3 features, ops {add, mul} commutative → 3 pairs each; {sub, div}
        // → 6 ordered pairs each: 3 originals + 6 + 12 = 21 candidates. With
        // cap_multiplier = 10 everything fits, so the plan holds all 21
        // (minus possible name dedups, of which there are none).
        let ds = product_data(200, 3);
        let tfc = Tfc {
            cap_multiplier: 10,
            ..Tfc::default()
        };
        let plan = tfc.engineer(&ds, None).unwrap();
        assert_eq!(plan.outputs.len(), 21);
    }

    #[test]
    fn ordered_tuple_enumeration() {
        assert_eq!(Tfc::tuples(3, 2, true).len(), 3);
        assert_eq!(Tfc::tuples(3, 2, false).len(), 6);
        assert_eq!(Tfc::tuples(4, 1, false).len(), 4);
        assert_eq!(Tfc::tuples(4, 3, true).len(), 4);
    }

    #[test]
    fn unlabeled_rejected() {
        let ds = Dataset::from_columns(vec!["x".into()], vec![vec![1.0]], None).unwrap();
        assert!(Tfc::default().engineer(&ds, None).is_err());
    }
}
