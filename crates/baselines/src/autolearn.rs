//! AutoLearn: regression-based pairwise feature construction.
//!
//! Reproduction of Kaul, Maheshwary & Pudi, *AutoLearn — Automated Feature
//! Generation and Selection* (ICDM 2017), the third generation-selection
//! method whose complexity the paper analyses (Eq. 10). The original
//! algorithm:
//!
//! 1. **mine pairwise associations** — keep feature pairs `(a, b)` whose
//!    relationship is strong enough to model (the paper uses distance
//!    correlation; this reproduction uses |Pearson| on the raw pair and on
//!    `(a, a²)` as a cheap curved-relationship probe — see DESIGN.md §4),
//! 2. **regress** — fit ridge (linear) and kernel-ridge (here: quadratic
//!    ridge) regressions per kept pair and emit *prediction* and *residual*
//!    features,
//! 3. **select stable, informative features** — the original uses randomized
//!    lasso + mutual information; this reproduction keeps features whose
//!    information gain stays high across bootstrap halves (stability
//!    selection) and ranks the survivors by IG, capped at `2M`.

use safe_core::engineer::FeatureEngineer;
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::binning::{bin_column, BinStrategy};
use safe_data::dataset::Dataset;
use safe_data::split::shuffled_indices;
use safe_ops::op::Operator;
use safe_ops::regression::{QuadRidgeResidual, RidgePrediction, RidgeResidual};
use safe_stats::entropy::information_gain;
use safe_stats::par::{par_map_slice, Parallelism};
use safe_stats::pearson::pearson;

/// AutoLearn configuration.
#[derive(Debug, Clone)]
pub struct AutoLearn {
    /// Minimum |Pearson| (raw or quadratic) for a pair to be modeled.
    pub min_association: f64,
    /// Bootstrap halves used by stability selection.
    pub n_bootstraps: usize,
    /// A feature must rank in the top-`stability_pool` of at least half the
    /// bootstraps to be considered stable.
    pub stability_pool: usize,
    /// Output budget multiplier (2 ⇒ 2M).
    pub cap_multiplier: usize,
    /// Equal-frequency bins for IG scoring.
    pub beta: usize,
    /// RNG seed for the bootstrap halves.
    pub seed: u64,
    /// Worker budget for pair mining (0 = one worker per core).
    pub parallelism: Parallelism,
}

impl Default for AutoLearn {
    fn default() -> Self {
        AutoLearn {
            min_association: 0.3,
            n_bootstraps: 5,
            stability_pool: 64,
            cap_multiplier: 2,
            beta: 10,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

fn ig_of(values: &[f64], labels: &[u8], beta: usize) -> f64 {
    match bin_column(values, beta, BinStrategy::EqualFrequency) {
        Ok(a) => information_gain(&a.bins, labels, a.n_bins),
        Err(_) => 0.0,
    }
}

struct Candidate {
    step: Option<PlanStep>,
    name: String,
    values: Vec<f64>,
}

impl AutoLearn {
    /// Stage 1+2: mine associated pairs and generate regression features.
    fn generate(&self, train: &Dataset, labels: &[u8]) -> Vec<Candidate> {
        let m = train.n_cols();
        let names: Vec<String> = train.feature_names().iter().map(|s| s.to_string()).collect();
        // Ordered pairs, scored in parallel; weakly-associated pairs skipped
        // (AutoLearn's pair-mining stage).
        let pairs: Vec<(usize, usize)> = (0..m)
            .flat_map(|i| (0..m).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect();
        let per_pair: Vec<Vec<Candidate>> =
            par_map_slice(self.parallelism, &pairs, |&(i, j)| {
                let a = train.column(i).expect("in range");
                let b = train.column(j).expect("in range");
                let linear = pearson(a, b).abs();
                let squared: Vec<f64> = a.iter().map(|&x| x * x).collect();
                let curved = pearson(&squared, b).abs();
                if linear < self.min_association && curved < self.min_association {
                    return Vec::new();
                }
                let mut out = Vec::new();
                let ops: Vec<&dyn Operator> = vec![&RidgePrediction, &RidgeResidual, &QuadRidgeResidual];
                for op in ops {
                    let Ok(fitted) = op.fit(&[a, b], Some(labels)) else {
                        continue;
                    };
                    let values = fitted.apply(&[a, b]);
                    let name = format!("{}({},{})", op.name(), names[i], names[j]);
                    out.push(Candidate {
                        step: Some(PlanStep {
                            name: name.clone(),
                            op: op.name().to_string(),
                            parents: vec![names[i].clone(), names[j].clone()],
                            params: fitted.params(),
                        }),
                        name,
                        values,
                    });
                }
                out
            });
        per_pair.into_iter().flatten().collect()
    }

    /// Stage 3: stability selection across bootstrap halves + IG ranking.
    fn select(&self, candidates: Vec<Candidate>, labels: &[u8], cap: usize) -> Vec<Candidate> {
        let n = labels.len();
        let half = n / 2;
        // Count how often each candidate ranks inside the stability pool.
        let mut stable_hits = vec![0usize; candidates.len()];
        for b in 0..self.n_bootstraps {
            let idx = shuffled_indices(n, self.seed.wrapping_add(b as u64));
            let sample = &idx[..half.max(1)];
            let sub_labels: Vec<u8> = sample.iter().map(|&i| labels[i]).collect();
            let mut scored: Vec<(usize, f64)> = candidates
                .iter()
                .enumerate()
                .map(|(c, cand)| {
                    let sub: Vec<f64> = sample.iter().map(|&i| cand.values[i]).collect();
                    (c, ig_of(&sub, &sub_labels, self.beta))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(c, _) in scored.iter().take(self.stability_pool) {
                stable_hits[c] += 1;
            }
        }
        let need = self.n_bootstraps.div_ceil(2);
        let mut survivors: Vec<(f64, Candidate)> = candidates
            .into_iter()
            .zip(stable_hits)
            .filter(|(_, hits)| *hits >= need)
            .map(|(cand, _)| (ig_of(&cand.values, labels, self.beta), cand))
            .collect();
        survivors.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.name.cmp(&b.1.name))
        });
        survivors.truncate(cap);
        survivors.into_iter().map(|(_, c)| c).collect()
    }
}

impl FeatureEngineer for AutoLearn {
    fn method_name(&self) -> &'static str {
        "AUTOLEARN"
    }

    fn engineer(
        &self,
        train: &Dataset,
        _valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String> {
        let labels = train
            .labels()
            .ok_or_else(|| "AutoLearn requires labels".to_string())?
            .to_vec();
        if train.is_empty() {
            return Err("AutoLearn requires a non-empty dataset".into());
        }
        let names: Vec<String> = train.feature_names().iter().map(|s| s.to_string()).collect();
        let m = names.len();
        let cap = self.cap_multiplier * m;

        let mut candidates = self.generate(train, &labels);
        // Originals always compete in the final ranking (the AutoLearn paper
        // appends generated features to the original space).
        for (f, name) in names.iter().enumerate() {
            candidates.push(Candidate {
                step: None,
                name: name.clone(),
                values: train.column(f).expect("in range").to_vec(),
            });
        }
        let kept = self.select(candidates, &labels, cap);

        let mut steps = Vec::new();
        let mut outputs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in kept {
            if !seen.insert(c.name.clone()) {
                continue;
            }
            if let Some(s) = c.step {
                steps.push(s);
            }
            outputs.push(c.name);
        }
        if outputs.is_empty() {
            // No association cleared the bar: fall back to the originals.
            outputs = names.clone();
        }
        Ok(FeaturePlan {
            input_names: names,
            steps,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// b is a noisy quadratic of a; the residual (b − ĝ(a)) equals the label
    /// signal by construction, so AutoLearn's pipeline should surface it.
    fn residual_signal_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut noise = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            let hidden: f64 = rng.gen_range(-1.0..1.0);
            a.push(x);
            b.push(x * x + hidden); // explained part + hidden residual signal
            noise.push(rng.gen_range(-1.0..1.0));
            y.push((hidden > 0.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "noise".into()],
            vec![a, b, noise],
            Some(y),
        )
        .unwrap()
    }

    #[test]
    fn surfaces_the_residual_feature() {
        let ds = residual_signal_data(2_000, 1);
        let plan = AutoLearn::default().engineer(&ds, None).unwrap();
        let top_is_residual = plan
            .outputs
            .first()
            .map(|n| n.contains("res") && n.contains("a,b"))
            .unwrap_or(false);
        assert!(
            top_is_residual,
            "residual of b on a should rank first: {:?}",
            plan.outputs
        );
    }

    #[test]
    fn plan_applies_and_round_trips() {
        let ds = residual_signal_data(500, 2);
        let plan = AutoLearn::default().engineer(&ds, None).unwrap();
        let out = plan.apply(&ds).unwrap();
        assert_eq!(out.n_cols(), plan.outputs.len());
        let text = plan.to_text();
        let back = FeaturePlan::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn weak_associations_are_skipped() {
        // Independent columns: no pair clears min_association, so the plan
        // falls back to ranked originals (no generated steps).
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
            .collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let ds = Dataset::from_columns(
            vec!["p".into(), "q".into(), "r".into()],
            cols,
            Some(labels),
        )
        .unwrap();
        let plan = AutoLearn::default().engineer(&ds, None).unwrap();
        assert!(
            plan.steps.is_empty(),
            "independent features should generate nothing: {:?}",
            plan.steps
        );
    }

    #[test]
    fn respects_the_cap() {
        let ds = residual_signal_data(800, 4);
        let plan = AutoLearn::default().engineer(&ds, None).unwrap();
        assert!(plan.outputs.len() <= 2 * ds.n_cols());
    }

    #[test]
    fn deterministic() {
        let ds = residual_signal_data(400, 5);
        let a = AutoLearn::default().engineer(&ds, None).unwrap();
        let b = AutoLearn::default().engineer(&ds, None).unwrap();
        assert_eq!(a.to_text(), b.to_text());
    }
}
