//! # safe-baselines — the comparison methods of the paper's evaluation
//!
//! Section V compares SAFE against two published generation-selection
//! algorithms, both rebuilt here from their original descriptions:
//!
//! - [`tfc::Tfc`] — *Iterative feature construction for improving inductive
//!   learning algorithms* (Piramuthu & Sikora, 2009). Each iteration
//!   **generates every legal feature** from the current pool with every
//!   operator, then selects the best by information gain. Time complexity
//!   `O(N·M²)` (Eq. 8) — the combinatorial explosion SAFE exists to avoid.
//! - [`fctree::FcTree`] — *Generalized and heuristic-free feature
//!   construction* (Fan et al., 2010). Trains a decision tree where every
//!   node chooses, by information gain, among the original features plus
//!   `ne` freshly constructed candidate features; constructions chosen at
//!   internal nodes become the engineered set. Complexity
//!   `O(ne·N·(log N)²)` (Eq. 9).
//!
//! Beyond the paper's two comparison baselines, [`autolearn::AutoLearn`]
//! reproduces the third generation-selection method whose cost Section IV-D
//! analyses (Kaul et al., ICDM 2017): pairwise ridge/kernel-ridge regression
//! features with stability selection.
//!
//! All implement [`safe_core::engineer::FeatureEngineer`] and emit the same
//! [`safe_core::plan::FeaturePlan`] artifact as SAFE, so the benchmark
//! harness treats every method identically.

#![warn(missing_docs)]

pub mod autolearn;
pub mod fctree;
pub mod tfc;

pub use autolearn::AutoLearn;
pub use fctree::FcTree;
pub use tfc::Tfc;
