//! The boosting loop: Gbm (trainer) and GbmModel (trained ensemble).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use safe_data::dataset::Dataset;
use safe_obs::EventSink;

use crate::binner::{BinCache, BinnedDataset};
use crate::config::{GbmConfig, Objective};
use crate::error::GbmError;
use crate::grow::{grow_tree_observed, GrowStats};
use crate::importance::{FeatureImportance, ImportanceKind};
use crate::loss::{base_margin, grad_hess, transform};
use crate::tree::{SplitPath, Tree};

/// Telemetry from one training run, returned by [`Gbm::fit_observed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GbmFitStats {
    /// Boosting rounds actually executed (≤ configured `n_rounds` under
    /// early stopping).
    pub rounds_run: u64,
    /// Trees in the final model (after early-stopping truncation).
    pub trees_kept: u64,
    /// Binned columns reused from a [`BinCache`] supplied to
    /// [`Gbm::fit_cached`] (0 when training uncached).
    pub cache_bin_hits: u64,
    /// Columns quantized from raw values during this fit. Under a cache
    /// this counts only the newly seen columns; uncached it equals the
    /// feature count.
    pub cache_bin_misses: u64,
    /// Aggregated tree-construction telemetry (histogram builds and
    /// subtractions, nodes grown per depth).
    pub grow: GrowStats,
    /// Wall-clock microseconds per boosting round, in execution order.
    /// Timing telemetry only: emitted as sink-only `gbm_round_us` observe
    /// events, never absorbed into report counters (wall-clock would break
    /// the resumed-report `==` contract).
    pub round_us: Vec<u64>,
    /// Microseconds spent accumulating histograms from rows, per round
    /// (the round's share of `grow.hist_build_us`).
    pub round_hist_us: Vec<u64>,
}

/// Gradient-boosting trainer.
#[derive(Debug, Clone)]
pub struct Gbm {
    config: GbmConfig,
}

/// A trained ensemble.
#[derive(Debug, Clone)]
pub struct GbmModel {
    pub(crate) trees: Vec<Tree>,
    pub(crate) base: f64,
    pub(crate) objective: Objective,
    pub(crate) n_features: usize,
    /// Validation AUC per round when a validation set was supplied.
    pub eval_history: Vec<f64>,
}

impl Gbm {
    /// Create a trainer; the configuration is validated at fit time.
    pub fn new(config: GbmConfig) -> Gbm {
        Gbm { config }
    }

    /// Trainer with default configuration.
    pub fn default_trainer() -> Gbm {
        Gbm::new(GbmConfig::default())
    }

    /// Train on a labeled dataset, optionally early-stopping on validation
    /// AUC.
    pub fn fit(&self, train: &Dataset, valid: Option<&Dataset>) -> Result<GbmModel, GbmError> {
        let mut stats = GbmFitStats::default();
        self.fit_inner(train, valid, None, &mut stats)
    }

    /// [`Gbm::fit`] reusing binned columns from `cache` across fits: columns
    /// whose `(name, max_bins)` key is already cached skip quantization
    /// entirely, and newly quantized columns are stored back for the next
    /// fit. Results are bit-identical to an uncached [`Gbm::fit`].
    pub fn fit_cached(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
        cache: &mut BinCache,
    ) -> Result<GbmModel, GbmError> {
        let mut stats = GbmFitStats::default();
        self.fit_inner(train, valid, Some(cache), &mut stats)
    }

    /// [`Gbm::fit`], additionally emitting training counters through `sink`
    /// (attributed to `stage`/`iteration`) and returning them. Emitted
    /// counters: `gbm_rounds`, `gbm_trees`, `histogram_builds`,
    /// `histogram_subtractions`, `nodes_grown`, and `nodes_depth<d>` per
    /// tree level.
    pub fn fit_observed(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
        sink: &dyn EventSink,
        stage: &str,
        iteration: Option<usize>,
    ) -> Result<(GbmModel, GbmFitStats), GbmError> {
        self.fit_cached_observed(train, valid, None, sink, stage, iteration)
    }

    /// [`Gbm::fit_observed`] with an optional [`BinCache`]. When a cache is
    /// supplied the additional counters `cache_bin_hits` /
    /// `cache_bin_misses` record how many binned columns were reused versus
    /// quantized fresh during this fit.
    pub fn fit_cached_observed(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
        cache: Option<&mut BinCache>,
        sink: &dyn EventSink,
        stage: &str,
        iteration: Option<usize>,
    ) -> Result<(GbmModel, GbmFitStats), GbmError> {
        let mut stats = GbmFitStats::default();
        let cached = cache.is_some();
        let model = self.fit_inner(train, valid, cache, &mut stats)?;
        sink.counter(stage, iteration, "gbm_rounds", stats.rounds_run);
        sink.counter(stage, iteration, "gbm_trees", stats.trees_kept);
        sink.counter(stage, iteration, "histogram_builds", stats.grow.histogram_builds);
        sink.counter(
            stage,
            iteration,
            "histogram_subtractions",
            stats.grow.histogram_subtractions,
        );
        sink.counter(stage, iteration, "nodes_grown", stats.grow.total_nodes());
        for (depth, &n) in stats.grow.nodes_per_depth.iter().enumerate() {
            sink.counter(stage, iteration, &format!("nodes_depth{depth}"), n);
        }
        if cached {
            sink.counter(stage, iteration, "cache_bin_hits", stats.cache_bin_hits);
            sink.counter(stage, iteration, "cache_bin_misses", stats.cache_bin_misses);
        }
        // Per-round wall-clock distributions go through the sink-only
        // observe channel: they feed latency histograms (p50/p95/p99 per
        // round) but must never become report counters.
        for &us in &stats.round_us {
            sink.observe(stage, iteration, "gbm_round_us", us);
        }
        for &us in &stats.round_hist_us {
            sink.observe(stage, iteration, "gbm_hist_build_us", us);
        }
        Ok((model, stats))
    }

    fn fit_inner(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
        cache: Option<&mut BinCache>,
        stats: &mut GbmFitStats,
    ) -> Result<GbmModel, GbmError> {
        safe_data::failpoint!("gbm/fit-begin", GbmError::Injected("gbm/fit-begin"));
        self.config.validate().map_err(GbmError::Config)?;
        let labels = train
            .labels()
            .ok_or(GbmError::NoLabels { which: "training" })?;
        let n = train.n_rows();
        if n == 0 || train.n_cols() == 0 {
            return Err(GbmError::EmptyTraining);
        }

        let binned = match cache {
            Some(cache) => {
                let (h0, m0) = (cache.hits(), cache.misses());
                let binned = BinnedDataset::fit_cached(
                    train,
                    self.config.max_bins,
                    self.config.parallelism,
                    cache,
                );
                stats.cache_bin_hits = cache.hits() - h0;
                stats.cache_bin_misses = cache.misses() - m0;
                binned
            }
            None => BinnedDataset::fit(train, self.config.max_bins, self.config.parallelism),
        };
        let base = base_margin(self.config.objective, labels);
        let mut margins = vec![base; n];

        // (dataset, labels, running margins) of the validation set. Margin
        // updates stream the f64 table per row chunk, so a chunked/spilled
        // validation set never materializes.
        type ValidState<'a> = (&'a Dataset, &'a [u8], Vec<f64>);
        let valid_cols: Option<ValidState> = match valid {
            Some(v) => {
                let vl = v
                    .labels()
                    .ok_or(GbmError::NoLabels { which: "validation" })?;
                if v.n_cols() != train.n_cols() {
                    return Err(GbmError::FeatureMismatch {
                        train: train.n_cols(),
                        valid: v.n_cols(),
                    });
                }
                Some((v, vl, vec![base; v.n_rows()]))
            }
            None => None,
        };
        let mut valid_state = valid_cols;

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let all_rows: Vec<u32> = (0..n as u32).collect();
        let all_features: Vec<usize> = (0..train.n_cols()).collect();

        let mut trees: Vec<Tree> = Vec::with_capacity(self.config.n_rounds);
        let mut eval_history: Vec<f64> = Vec::new();
        let mut best_round = 0usize;
        let mut best_auc = f64::NEG_INFINITY;

        let mut grads = vec![0.0f64; n];
        let mut hesss = vec![0.0f64; n];

        for round in 0..self.config.n_rounds {
            safe_data::failpoint!("gbm/train-round", GbmError::Injected("gbm/train-round"));
            let round_start = std::time::Instant::now();
            stats.rounds_run += 1;
            for i in 0..n {
                let (g, h) = grad_hess(self.config.objective, margins[i], labels[i] as f64);
                grads[i] = g;
                hesss[i] = h;
            }

            let rows = sample(&all_rows, self.config.subsample, &mut rng);
            let features = sample(&all_features, self.config.colsample, &mut rng);

            // Grow into a per-round accumulator so the round's histogram
            // time can be recorded, then fold into the fit-wide stats.
            let mut round_grow = GrowStats::default();
            let tree =
                grow_tree_observed(&binned, &grads, &hesss, rows, &features, &self.config, &mut round_grow);
            stats.round_hist_us.push(round_grow.hist_build_us);
            stats.grow.merge(&round_grow);
            predict_tree_into(&tree, train, &mut margins)?;

            if let Some((vds, vl, vmargins)) = valid_state.as_mut() {
                predict_tree_into(&tree, vds, vmargins)?;
                let probs: Vec<f64> = vmargins
                    .iter()
                    .map(|&m| transform(self.config.objective, m))
                    .collect();
                let auc = safe_stats::auc::auc(&probs, vl);
                eval_history.push(auc);
                if auc > best_auc {
                    best_auc = auc;
                    best_round = round;
                }
                if let Some(patience) = self.config.early_stopping_rounds {
                    if round - best_round >= patience {
                        trees.push(tree);
                        stats.round_us.push(round_start.elapsed().as_micros() as u64);
                        break;
                    }
                }
            }
            trees.push(tree);
            stats.round_us.push(round_start.elapsed().as_micros() as u64);
        }

        // Truncate to the best validation round when early stopping is on.
        if self.config.early_stopping_rounds.is_some() && !eval_history.is_empty() {
            trees.truncate(best_round + 1);
        }
        stats.trees_kept = trees.len() as u64;

        Ok(GbmModel {
            trees,
            base,
            objective: self.config.objective,
            n_features: train.n_cols(),
            eval_history,
        })
    }
}

/// Sample a fraction of items without replacement (all items when
/// `fraction == 1`), preserving index order for reproducibility.
/// One tree's margin contribution for every row of `ds`, streamed per row
/// chunk through [`Dataset::for_each_row_chunk`]. Resident datasets take a
/// single full-range pass over borrowed slices (the exact code path the
/// resident-only booster ran); chunked datasets visit fixed-order chunk
/// segments, so per-row accumulation — and therefore every margin bit — is
/// identical across backends.
fn predict_tree_into(tree: &Tree, ds: &Dataset, margins: &mut [f64]) -> Result<(), GbmError> {
    ds.for_each_row_chunk(&mut |range, cols| {
        tree.predict_into(cols, &mut margins[range]);
    })?;
    Ok(())
}

fn sample<T: Copy + Ord>(items: &[T], fraction: f64, rng: &mut StdRng) -> Vec<T> {
    if fraction >= 1.0 {
        return items.to_vec();
    }
    let k = ((items.len() as f64) * fraction).ceil().max(1.0) as usize;
    let mut chosen: Vec<T> = items
        .choose_multiple(rng, k.min(items.len()))
        .copied()
        .collect();
    chosen.sort();
    chosen
}

impl GbmModel {
    /// Number of trees kept.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Base margin (the prior added before any tree contribution).
    pub fn base_margin(&self) -> f64 {
        self.base
    }

    /// Training objective; determines the prediction transform.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The trees themselves (read-only).
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Raw margin for one row.
    pub fn predict_margin_row(&self, row: &[f64]) -> f64 {
        let mut m = self.base;
        for t in &self.trees {
            m += t.predict_row(row);
        }
        m
    }

    /// Transformed prediction (probability for logistic) for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        transform(self.objective, self.predict_margin_row(row))
    }

    /// Raw margins for a whole dataset.
    ///
    /// Streams the table one row chunk at a time, so chunked/spilled
    /// datasets score without materializing. Each row's margin still
    /// accumulates base-then-trees in ensemble order, so bits are identical
    /// to the resident column path.
    ///
    /// # Panics
    ///
    /// If a spilled chunk cannot be read back (the signature predates the
    /// out-of-core backend and has no error channel).
    pub fn predict_margin(&self, ds: &Dataset) -> Vec<f64> {
        let mut out = vec![self.base; ds.n_rows()];
        let scored = ds.for_each_row_chunk(&mut |range, cols| {
            for t in &self.trees {
                t.predict_into(cols, &mut out[range.clone()]);
            }
        });
        if let Err(e) = scored {
            panic!("column read failed during prediction: {e}");
        }
        out
    }

    /// Transformed predictions (probabilities for logistic) for a dataset.
    pub fn predict(&self, ds: &Dataset) -> Vec<f64> {
        self.predict_margin(ds)
            .into_iter()
            .map(|m| transform(self.objective, m))
            .collect()
    }

    /// Transformed predictions for a row-major flat batch (`n_cols` values
    /// per record; `rows.len()` must be a multiple of `n_cols`). `out` is
    /// cleared and filled with one score per record.
    ///
    /// Tree-outer iteration keeps each tree's nodes cache-hot across the
    /// batch; every record's margin still accumulates base-then-trees in
    /// ensemble order, so results are **bit-identical** to calling
    /// [`GbmModel::predict_row`] on each record.
    pub fn predict_rows_into(&self, rows: &[f64], n_cols: usize, out: &mut Vec<f64>) {
        let n_rows = rows.len().checked_div(n_cols).unwrap_or(0);
        out.clear();
        if n_rows == 0 {
            return;
        }
        out.resize(n_rows, self.base);
        for t in &self.trees {
            t.predict_rows_into(rows, n_cols, out);
        }
        for m in out.iter_mut() {
            *m = transform(self.objective, *m);
        }
    }

    /// All root→leaf-parent paths across the ensemble (Section IV-B1's `P`).
    pub fn paths(&self) -> Vec<SplitPath> {
        self.trees.iter().flat_map(|t| t.paths()).collect()
    }

    /// Feature importance of the ensemble.
    pub fn importance(&self, kind: ImportanceKind) -> FeatureImportance {
        FeatureImportance::from_trees(&self.trees, self.n_features, kind)
    }

    /// Indices of features used in at least one split ("split features" in
    /// the paper's assumption 1).
    pub fn split_features(&self) -> Vec<usize> {
        self.importance(ImportanceKind::SplitCount).used_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::grow_tree;
    use safe_stats::auc::auc;

    /// Linearly separable two-feature data with noise features.
    fn toy(n: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = move || rng.gen_range(-1.0f64..1.0);
        let mut cols = vec![Vec::with_capacity(n); 3];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = next();
            let b = next();
            let noise = next();
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(noise);
            labels.push((a + 0.5 * b > 0.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "noise".into()],
            cols,
            Some(labels),
        )
        .unwrap()
    }

    #[test]
    fn learns_separable_data() {
        let train = toy(600, 1);
        let test = toy(300, 2);
        let model = Gbm::new(GbmConfig {
            n_rounds: 30,
            ..GbmConfig::default()
        })
        .fit(&train, None)
        .unwrap();
        let preds = model.predict(&test);
        let a = auc(&preds, test.labels().unwrap());
        assert!(a > 0.95, "auc = {a}");
    }

    #[test]
    fn predict_rows_into_matches_row_path_bitwise() {
        let train = toy(400, 9);
        let model = Gbm::new(GbmConfig {
            n_rounds: 40,
            ..GbmConfig::default()
        })
        .fit(&train, None)
        .unwrap();
        // Row-major batch including some non-finite cells (routed by
        // default_left, so they exercise the missing-value path).
        let mut rows = Vec::new();
        for i in 0..train.n_rows() {
            rows.extend_from_slice(&train.row(i));
        }
        rows[4] = f64::NAN;
        rows[10] = f64::INFINITY;
        let mut batch = Vec::new();
        model.predict_rows_into(&rows, 3, &mut batch);
        assert_eq!(batch.len(), train.n_rows());
        for (i, (chunk, got)) in rows.chunks_exact(3).zip(&batch).enumerate() {
            assert_eq!(
                got.to_bits(),
                model.predict_row(chunk).to_bits(),
                "row {i}: tree-outer batch diverged from the row path"
            );
        }
        // Reused output buffer is cleared, and the zero-column case is sane.
        model.predict_rows_into(&[], 3, &mut batch);
        assert!(batch.is_empty());
        model.predict_rows_into(&[], 0, &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let train = toy(200, 3);
        let model = Gbm::default_trainer().fit(&train, None).unwrap();
        for p in model.predict(&train) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_loss_is_monotone_without_subsampling() {
        // Squared loss, lr small, full data: mean train loss must not rise.
        let train = toy(300, 4);
        let labels = train.labels().unwrap().to_vec();
        let mut margins = vec![crate::loss::base_margin(Objective::Squared, &labels); 300];
        let binned = BinnedDataset::fit(&train, 256, safe_stats::par::Parallelism::auto());
        let cols: Vec<&[f64]> = train.columns().collect();
        let config = GbmConfig {
            objective: Objective::Squared,
            learning_rate: 0.5,
            n_rounds: 10,
            ..GbmConfig::default()
        };
        let mut last = f64::INFINITY;
        let mut grads = vec![0.0; 300];
        let mut hesss = vec![0.0; 300];
        for _ in 0..10 {
            for i in 0..300 {
                let (g, h) = grad_hess(Objective::Squared, margins[i], labels[i] as f64);
                grads[i] = g;
                hesss[i] = h;
            }
            let tree = grow_tree(&binned, &grads, &hesss, (0..300).collect(), &[0, 1, 2], &config);
            tree.predict_into(&cols, &mut margins);
            let loss = crate::loss::mean_loss(Objective::Squared, &margins, &labels);
            assert!(loss <= last + 1e-9, "loss rose: {last} -> {loss}");
            last = loss;
        }
    }

    #[test]
    fn fit_cached_is_bit_identical_to_fit() {
        let train = toy(400, 12);
        let test = toy(150, 13);
        let config = GbmConfig {
            n_rounds: 15,
            subsample: 0.8,
            colsample: 0.8,
            seed: 3,
            ..GbmConfig::default()
        };
        let cold = Gbm::new(config.clone()).fit(&train, None).unwrap();
        let mut cache = BinCache::new();
        // First cached fit populates the cache, second one hits it fully.
        let warm1 = Gbm::new(config.clone()).fit_cached(&train, None, &mut cache).unwrap();
        assert_eq!(cache.misses(), 3);
        let warm2 = Gbm::new(config).fit_cached(&train, None, &mut cache).unwrap();
        assert_eq!(cache.hits(), 3);
        let reference: Vec<u64> = cold.predict(&test).iter().map(|p| p.to_bits()).collect();
        for model in [&warm1, &warm2] {
            let got: Vec<u64> = model.predict(&test).iter().map(|p| p.to_bits()).collect();
            assert_eq!(got, reference, "cached fit diverged from uncached fit");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let train = toy(300, 5);
        let config = GbmConfig {
            subsample: 0.7,
            colsample: 0.7,
            seed: 42,
            n_rounds: 10,
            ..GbmConfig::default()
        };
        let m1 = Gbm::new(config.clone()).fit(&train, None).unwrap();
        let m2 = Gbm::new(config).fit(&train, None).unwrap();
        assert_eq!(m1.predict(&train), m2.predict(&train));
    }

    #[test]
    fn early_stopping_truncates() {
        let train = toy(400, 6);
        let valid = toy(200, 7);
        let model = Gbm::new(GbmConfig {
            n_rounds: 200,
            early_stopping_rounds: Some(5),
            ..GbmConfig::default()
        })
        .fit(&train, Some(&valid))
        .unwrap();
        assert!(model.n_trees() < 200, "kept {} trees", model.n_trees());
        assert!(!model.eval_history.is_empty());
    }

    #[test]
    fn split_features_exclude_pure_noise_mostly() {
        let train = toy(800, 8);
        let model = Gbm::new(GbmConfig {
            n_rounds: 10,
            max_depth: 3,
            ..GbmConfig::default()
        })
        .fit(&train, None)
        .unwrap();
        let used = model.split_features();
        assert!(used.contains(&0), "informative feature a must be split on");
        let imp = model.importance(ImportanceKind::TotalGain);
        assert!(
            imp.scores[0] > imp.scores[2],
            "signal must outscore noise: {:?}",
            imp.scores
        );
    }

    #[test]
    fn paths_reference_real_features() {
        let train = toy(500, 9);
        let model = Gbm::default_trainer().fit(&train, None).unwrap();
        let paths = model.paths();
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(!p.features.is_empty());
            for &f in &p.features {
                assert!(f < train.n_cols());
                assert!(!p.split_values[&f].is_empty());
            }
        }
    }

    #[test]
    fn unlabeled_train_is_rejected() {
        let ds = Dataset::from_columns(vec!["x".into()], vec![vec![1.0, 2.0]], None).unwrap();
        assert!(Gbm::default_trainer().fit(&ds, None).is_err());
    }

    #[test]
    fn mismatched_valid_is_rejected() {
        let train = toy(100, 10);
        let bad_valid =
            Dataset::from_columns(vec!["x".into()], vec![vec![1.0, 2.0]], Some(vec![0, 1]))
                .unwrap();
        assert!(Gbm::default_trainer().fit(&train, Some(&bad_valid)).is_err());
    }

    #[test]
    fn row_and_batch_predictions_agree() {
        let train = toy(250, 11);
        let model = Gbm::default_trainer().fit(&train, None).unwrap();
        let batch = model.predict(&train);
        for i in 0..train.n_rows() {
            let single = model.predict_row(&train.row(i));
            assert!((batch[i] - single).abs() < 1e-12);
        }
    }
}
