//! Greedy tree construction over binned features.
//!
//! Split finding is histogram-based with the LightGBM-style **subtraction
//! trick**: a node's histogram equals the per-bin sum of its children's, so
//! after an in-place partition of the node's rows only the *smaller* child's
//! histograms are accumulated from rows (`O(child_rows × features)`); the
//! larger child's are derived as `parent − smaller` (`O(bins × features)`).
//! [`GrowStats`] tracks how often each path ran (`histogram_builds` vs
//! `histogram_subtractions`).

use crate::binner::BinnedDataset;
use crate::config::GbmConfig;
use crate::histogram::{
    best_split_for_feature, build_histogram, leaf_weight, subtract_sibling, HistBin, SplitInfo,
};
use crate::tree::{Tree, TreeNode};

/// Construction telemetry for one (or several accumulated) grown trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrowStats {
    /// Per-feature histograms accumulated from rows during split finding
    /// (the root and every smaller child).
    pub histogram_builds: u64,
    /// Per-feature histograms derived by `parent − sibling` subtraction
    /// instead of accumulation (every larger child).
    pub histogram_subtractions: u64,
    /// Nodes (internal + leaf) created at each depth; index = depth.
    pub nodes_per_depth: Vec<u64>,
    /// Wall-clock microseconds spent accumulating histograms from rows
    /// (the `histogram_builds` path). Timing telemetry only: never compared
    /// across runs and never folded into report counters — it feeds the
    /// sink-only `gbm_hist_build_us` observe stream.
    pub hist_build_us: u64,
}

impl GrowStats {
    /// Fold another tree's stats into this accumulator.
    pub fn merge(&mut self, other: &GrowStats) {
        self.histogram_builds += other.histogram_builds;
        self.histogram_subtractions += other.histogram_subtractions;
        self.hist_build_us += other.hist_build_us;
        if self.nodes_per_depth.len() < other.nodes_per_depth.len() {
            self.nodes_per_depth.resize(other.nodes_per_depth.len(), 0);
        }
        for (acc, &n) in self.nodes_per_depth.iter_mut().zip(&other.nodes_per_depth) {
            *acc += n;
        }
    }

    /// Total nodes across all depths.
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_depth.iter().sum()
    }

    fn count_node(&mut self, depth: usize) {
        if self.nodes_per_depth.len() <= depth {
            self.nodes_per_depth.resize(depth + 1, 0);
        }
        self.nodes_per_depth[depth] += 1;
    }
}

/// Per-candidate-feature histograms of one node; `None` for features with
/// no split candidates (constant columns), which are never histogrammed.
type NodeHistograms = Vec<Option<Vec<HistBin>>>;

/// Grow one regression tree on the given row/feature subsets.
///
/// `grads`/`hesss` are full-length per-row derivative vectors; `rows` selects
/// the (possibly subsampled) training rows; `features` the (possibly
/// column-subsampled) candidate split features. Leaf values are already
/// multiplied by the learning rate.
pub fn grow_tree(
    binned: &BinnedDataset,
    grads: &[f64],
    hesss: &[f64],
    rows: Vec<u32>,
    features: &[usize],
    config: &GbmConfig,
) -> Tree {
    let mut stats = GrowStats::default();
    grow_tree_observed(binned, grads, hesss, rows, features, config, &mut stats)
}

/// [`grow_tree`], additionally accumulating construction telemetry into
/// `stats` (histogram builds and subtractions, nodes created per depth).
pub fn grow_tree_observed(
    binned: &BinnedDataset,
    grads: &[f64],
    hesss: &[f64],
    mut rows: Vec<u32>,
    features: &[usize],
    config: &GbmConfig,
    stats: &mut GrowStats,
) -> Tree {
    let mut tree = Tree::default();
    tree.nodes.clear();
    let root_hists = if splittable(0, rows.len(), config) {
        build_feature_histograms(binned, &rows, grads, hesss, features, config, stats)
    } else {
        Vec::new()
    };
    let mut scratch = vec![0u32; rows.len()];
    build_node(
        &mut tree, binned, grads, hesss, &mut rows, &mut scratch, root_hists, features, config, 0,
        stats,
    );
    tree
}

/// Whether a node at `depth` with `n_rows` rows may attempt a split (and
/// therefore needs histograms at all).
fn splittable(depth: usize, n_rows: usize, config: &GbmConfig) -> bool {
    depth < config.max_depth && n_rows >= 2
}

/// Recursively build the subtree rooted at the next free arena slot and
/// return that slot's index. `rows`/`scratch` are this node's slices of the
/// tree-wide row and scratch buffers; `hists` are this node's per-feature
/// histograms (empty when the node cannot split), *moved* in so the larger
/// child can reuse the storage via subtraction.
#[allow(clippy::too_many_arguments)]
fn build_node(
    tree: &mut Tree,
    binned: &BinnedDataset,
    grads: &[f64],
    hesss: &[f64],
    rows: &mut [u32],
    scratch: &mut [u32],
    hists: NodeHistograms,
    features: &[usize],
    config: &GbmConfig,
    depth: usize,
    stats: &mut GrowStats,
) -> usize {
    stats.count_node(depth);
    let (g, h) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
        (g + grads[r as usize], h + hesss[r as usize])
    });
    let totals = (g, h, rows.len() as u32);

    let split = if hists.is_empty() {
        None
    } else {
        find_best_split(binned, &hists, features, totals, config)
    };

    match split {
        None => {
            let value = leaf_weight(g, h, config.lambda) * config.learning_rate;
            tree.nodes.push(TreeNode::Leaf { value });
            tree.nodes.len() - 1
        }
        Some(split) => {
            let n_left = partition_in_place(binned, rows, scratch, &split);
            debug_assert!(n_left > 0 && n_left < rows.len());
            let threshold = binned.mapper(split.feature).threshold(split.split_bin);
            // Reserve this node's slot before the children claim theirs.
            let idx = tree.nodes.len();
            tree.nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder

            let (left_rows, right_rows) = rows.split_at_mut(n_left);
            let (left_scratch, right_scratch) = scratch.split_at_mut(n_left);
            let (left_hists, right_hists) = child_histograms(
                binned, grads, hesss, left_rows, right_rows, hists, features, config, depth + 1,
                stats,
            );

            let left = build_node(
                tree, binned, grads, hesss, left_rows, left_scratch, left_hists, features, config,
                depth + 1, stats,
            );
            let right = build_node(
                tree, binned, grads, hesss, right_rows, right_scratch, right_hists, features,
                config, depth + 1, stats,
            );
            tree.nodes[idx] = TreeNode::Internal {
                feature: split.feature,
                threshold,
                default_left: split.default_left,
                left,
                right,
                gain: split.gain,
            };
            idx
        }
    }
}

/// Histograms for the two children of a just-split node: accumulate the
/// smaller child from its rows, derive the larger by subtracting it from the
/// parent's histograms (consumed). Children that cannot split get empty
/// histogram sets and cost nothing.
#[allow(clippy::too_many_arguments)]
fn child_histograms(
    binned: &BinnedDataset,
    grads: &[f64],
    hesss: &[f64],
    left_rows: &[u32],
    right_rows: &[u32],
    parent: NodeHistograms,
    features: &[usize],
    config: &GbmConfig,
    child_depth: usize,
    stats: &mut GrowStats,
) -> (NodeHistograms, NodeHistograms) {
    let left_needs = splittable(child_depth, left_rows.len(), config);
    let right_needs = splittable(child_depth, right_rows.len(), config);
    let smaller_is_left = left_rows.len() <= right_rows.len();
    let (small_rows, small_needs, large_needs) = if smaller_is_left {
        (left_rows, left_needs, right_needs)
    } else {
        (right_rows, right_needs, left_needs)
    };

    let mut small = Vec::new();
    let mut large = Vec::new();
    if small_needs || large_needs {
        small = build_feature_histograms(binned, small_rows, grads, hesss, features, config, stats);
        if large_needs {
            large = subtract_histograms(parent, &small, stats);
        }
        if !small_needs {
            small = Vec::new();
        }
    }
    if smaller_is_left {
        (small, large)
    } else {
        (large, small)
    }
}

/// Accumulate one node's per-feature histograms from its rows, in parallel
/// across features. Features without split candidates are skipped (`None`).
fn build_feature_histograms(
    binned: &BinnedDataset,
    rows: &[u32],
    grads: &[f64],
    hesss: &[f64],
    features: &[usize],
    config: &GbmConfig,
    stats: &mut GrowStats,
) -> NodeHistograms {
    // Counted serially before the parallel map so no atomics are needed:
    // exactly the features with split candidates get a histogram below.
    stats.histogram_builds += features
        .iter()
        .filter(|&&f| binned.mapper(f).n_split_candidates() > 0)
        .count() as u64;
    let t0 = std::time::Instant::now();
    let histograms = safe_stats::par::par_map_slice(config.parallelism, features, |&f| {
        let mapper = binned.mapper(f);
        if mapper.n_split_candidates() == 0 {
            return None;
        }
        Some(build_histogram(binned.bins(f), rows, grads, hesss, mapper.n_bins()))
    });
    stats.hist_build_us += t0.elapsed().as_micros() as u64;
    histograms
}

/// `parent − child` per feature, in place on the parent's storage.
fn subtract_histograms(
    mut parent: NodeHistograms,
    child: &NodeHistograms,
    stats: &mut GrowStats,
) -> NodeHistograms {
    for (p, c) in parent.iter_mut().zip(child) {
        match (p.as_mut(), c) {
            (Some(p), Some(c)) => {
                subtract_sibling(p, c);
                stats.histogram_subtractions += 1;
            }
            // None-ness is a pure function of the mapper, so parent and
            // child entries always align; nothing to subtract otherwise.
            _ => {}
        }
    }
    parent
}

/// Best split across the candidate features from the node's prebuilt
/// histograms; the scan runs in parallel across features and ties resolve
/// to the first feature in candidate order (deterministic for any thread
/// count).
fn find_best_split(
    binned: &BinnedDataset,
    hists: &NodeHistograms,
    features: &[usize],
    totals: (f64, f64, u32),
    config: &GbmConfig,
) -> Option<SplitInfo> {
    let candidates: Vec<Option<SplitInfo>> =
        safe_stats::par::par_map(config.parallelism, features.len(), |i| {
            let hist = hists[i].as_ref()?;
            let f = features[i];
            best_split_for_feature(
                f,
                hist,
                binned.mapper(f).n_value_bins(),
                totals,
                config.lambda,
                config.gamma,
                config.min_child_weight,
            )
        });
    candidates
        .into_iter()
        .flatten()
        .max_by(|a, b| a.gain.total_cmp(&b.gain))
}

/// Stable in-place partition: rows routed left keep their order at the
/// front of `rows`, rows routed right keep theirs at the back (staged
/// through `scratch`). Returns the left count.
fn partition_in_place(
    binned: &BinnedDataset,
    rows: &mut [u32],
    scratch: &mut [u32],
    split: &SplitInfo,
) -> usize {
    let bins = binned.bins(split.feature);
    let missing = binned.mapper(split.feature).missing_bin();
    let mut n_left = 0usize;
    let mut n_right = 0usize;
    for i in 0..rows.len() {
        let r = rows[i];
        let b = bins[r as usize];
        let go_left = if b == missing {
            split.default_left
        } else {
            b <= split.split_bin
        };
        if go_left {
            rows[n_left] = r;
            n_left += 1;
        } else {
            scratch[n_right] = r;
            n_right += 1;
        }
    }
    rows[n_left..].copy_from_slice(&scratch[..n_right]);
    n_left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Objective;
    use safe_data::dataset::Dataset;
    use safe_stats::par::Parallelism;

    fn binned_of(cols: Vec<Vec<f64>>) -> BinnedDataset {
        let names = (0..cols.len()).map(|i| format!("f{i}")).collect();
        let ds = Dataset::from_columns(names, cols, None).unwrap();
        BinnedDataset::fit(&ds, 256, Parallelism::auto())
    }

    fn grads_for(labels: &[u8]) -> (Vec<f64>, Vec<f64>) {
        // Logistic derivatives at margin 0.
        labels
            .iter()
            .map(|&y| crate::loss::grad_hess(Objective::Logistic, 0.0, y as f64))
            .unzip()
    }

    #[test]
    fn grows_a_single_split_for_a_step_function() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { max_depth: 3, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[0], &config);
        assert!(tree.depth() >= 1);
        // Predictions on both sides of the step must differ in sign.
        let lo = tree.predict_row(&[10.0]);
        let hi = tree.predict_row(&[90.0]);
        assert!(lo < 0.0 && hi > 0.0, "lo={lo} hi={hi}");
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..256).map(|i| ((i / 2) % 2) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        for depth in 1..=4 {
            let config = GbmConfig { max_depth: depth, ..GbmConfig::default() };
            let tree = grow_tree(&binned, &g, &h, (0..256).collect(), &[0], &config);
            assert!(tree.depth() <= depth, "depth {} > cap {depth}", tree.depth());
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let labels = vec![1u8; 50];
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..50).collect(), &[0], &GbmConfig::default());
        assert_eq!(tree.n_leaves(), 1, "uniform gradients should not split");
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of two binary features, with *asymmetric* corner counts: a
        // perfectly balanced XOR gives every first split exactly zero gain
        // (greedy boosters, including XGBoost, rightly refuse it), so the
        // corners are weighted 60/50/50/40 to break the tie.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (x, y, count) in [(0.0, 0.0, 60), (0.0, 1.0, 50), (1.0, 0.0, 50), (1.0, 1.0, 40)] {
            for _ in 0..count {
                a.push(x);
                b.push(y);
            }
        }
        let n = a.len();
        let labels: Vec<u8> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| ((x as i32) ^ (y as i32)) as u8)
            .collect();
        let binned = binned_of(vec![a.clone(), b.clone()]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { max_depth: 2, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..n as u32).collect(), &[0, 1], &config);
        // All four corners correctly signed.
        for (x, y) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let pred = tree.predict_row(&[x, y]);
            let want_positive = (x as i32 ^ y as i32) == 1;
            assert_eq!(pred > 0.0, want_positive, "corner ({x},{y}) pred={pred}");
        }
    }

    #[test]
    fn feature_subset_is_honored() {
        // Feature 0 is perfectly predictive, feature 1 is noise — but only
        // feature 1 is offered.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let noise: Vec<f64> = (0..100).map(|i| ((i * 7919) % 100) as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x, noise]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[1], &GbmConfig::default());
        for (f, _) in tree.split_gains() {
            assert_eq!(f, 1, "must only split on the offered feature");
        }
    }

    #[test]
    fn row_subset_is_honored() {
        // Only rows < 50 participate; there the label is constant → leaf.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..50).collect(), &[0], &GbmConfig::default());
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn missing_rows_are_routed_and_learned() {
        // Feature is NaN exactly for positives: the split must exploit the
        // missing bin via default direction.
        let n = 100;
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let x: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l == 1 { f64::NAN } else { i as f64 })
            .collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..n as u32).collect(), &[0], &GbmConfig::default());
        let on_missing = tree.predict_row(&[f64::NAN]);
        let on_present = tree.predict_row(&[4.0]);
        assert!(on_missing > 0.0, "missing → positive leaf, got {on_missing}");
        assert!(on_present < 0.0, "present → negative leaf, got {on_present}");
    }

    #[test]
    fn gamma_prunes_all_splits() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { gamma: 1e9, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[0], &config);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn subtraction_is_exercised_and_counted() {
        // A depth-3 tree on splittable data must derive at least one larger
        // child by subtraction, and every histogram either came from rows or
        // from a subtraction — never both for the same node/feature.
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 31) % 200) as f64).collect();
        let labels: Vec<u8> = (0..200).map(|i| ((i / 25) % 2) as u8).collect();
        let binned = binned_of(vec![x, y]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { max_depth: 3, ..GbmConfig::default() };
        let mut stats = GrowStats::default();
        let tree =
            grow_tree_observed(&binned, &g, &h, (0..200).collect(), &[0, 1], &config, &mut stats);
        assert!(tree.depth() >= 2, "need internal structure for this test");
        assert!(stats.histogram_subtractions > 0, "{stats:?}");
        assert!(stats.histogram_builds > 0, "{stats:?}");
    }

    #[test]
    fn stable_partition_preserves_relative_row_order() {
        let x = vec![5.0, 1.0, 5.0, 1.0, 5.0, 1.0];
        let binned = binned_of(vec![x]);
        let split = SplitInfo { feature: 0, split_bin: 0, gain: 1.0, default_left: false };
        let mut rows: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        let mut scratch = vec![0u32; 6];
        let n_left = partition_in_place(&binned, &mut rows, &mut scratch, &split);
        assert_eq!(n_left, 3);
        assert_eq!(&rows[..3], &[1, 3, 5], "left side keeps original order");
        assert_eq!(&rows[3..], &[0, 2, 4], "right side keeps original order");
    }
}
