//! Greedy tree construction over binned features.

use crate::binner::BinnedMatrix;
use crate::config::GbmConfig;
use crate::histogram::{best_split_for_feature, build_histogram, leaf_weight, SplitInfo};
use crate::tree::{Tree, TreeNode};

/// Construction telemetry for one (or several accumulated) grown trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrowStats {
    /// Per-feature histograms built during split finding.
    pub histogram_builds: u64,
    /// Nodes (internal + leaf) created at each depth; index = depth.
    pub nodes_per_depth: Vec<u64>,
}

impl GrowStats {
    /// Fold another tree's stats into this accumulator.
    pub fn merge(&mut self, other: &GrowStats) {
        self.histogram_builds += other.histogram_builds;
        if self.nodes_per_depth.len() < other.nodes_per_depth.len() {
            self.nodes_per_depth.resize(other.nodes_per_depth.len(), 0);
        }
        for (acc, &n) in self.nodes_per_depth.iter_mut().zip(&other.nodes_per_depth) {
            *acc += n;
        }
    }

    /// Total nodes across all depths.
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_depth.iter().sum()
    }

    fn count_node(&mut self, depth: usize) {
        if self.nodes_per_depth.len() <= depth {
            self.nodes_per_depth.resize(depth + 1, 0);
        }
        self.nodes_per_depth[depth] += 1;
    }
}

/// Grow one regression tree on the given row/feature subsets.
///
/// `grads`/`hesss` are full-length per-row derivative vectors; `rows` selects
/// the (possibly subsampled) training rows; `features` the (possibly
/// column-subsampled) candidate split features. Leaf values are already
/// multiplied by the learning rate.
pub fn grow_tree(
    binned: &BinnedMatrix,
    grads: &[f64],
    hesss: &[f64],
    rows: Vec<u32>,
    features: &[usize],
    config: &GbmConfig,
) -> Tree {
    let mut stats = GrowStats::default();
    grow_tree_observed(binned, grads, hesss, rows, features, config, &mut stats)
}

/// [`grow_tree`], additionally accumulating construction telemetry into
/// `stats` (histogram builds, nodes created per depth).
pub fn grow_tree_observed(
    binned: &BinnedMatrix,
    grads: &[f64],
    hesss: &[f64],
    rows: Vec<u32>,
    features: &[usize],
    config: &GbmConfig,
    stats: &mut GrowStats,
) -> Tree {
    let mut tree = Tree::default();
    tree.nodes.clear();
    build_node(&mut tree, binned, grads, hesss, rows, features, config, 0, stats);
    tree
}

/// Recursively build the subtree rooted at the next free arena slot and
/// return that slot's index.
#[allow(clippy::too_many_arguments)]
fn build_node(
    tree: &mut Tree,
    binned: &BinnedMatrix,
    grads: &[f64],
    hesss: &[f64],
    rows: Vec<u32>,
    features: &[usize],
    config: &GbmConfig,
    depth: usize,
    stats: &mut GrowStats,
) -> usize {
    stats.count_node(depth);
    let (g, h) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
        (g + grads[r as usize], h + hesss[r as usize])
    });
    let totals = (g, h, rows.len() as u32);

    let split = if depth >= config.max_depth || rows.len() < 2 {
        None
    } else {
        find_best_split(binned, grads, hesss, &rows, features, totals, config, stats)
    };

    match split {
        None => {
            let value = leaf_weight(g, h, config.lambda) * config.learning_rate;
            tree.nodes.push(TreeNode::Leaf { value });
            tree.nodes.len() - 1
        }
        Some(split) => {
            let (left_rows, right_rows) = partition_rows(binned, &rows, &split);
            debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());
            let threshold = binned.mappers[split.feature].threshold(split.split_bin);
            // Reserve this node's slot before the children claim theirs.
            let idx = tree.nodes.len();
            tree.nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
            let left =
                build_node(tree, binned, grads, hesss, left_rows, features, config, depth + 1, stats);
            let right =
                build_node(tree, binned, grads, hesss, right_rows, features, config, depth + 1, stats);
            tree.nodes[idx] = TreeNode::Internal {
                feature: split.feature,
                threshold,
                default_left: split.default_left,
                left,
                right,
                gain: split.gain,
            };
            idx
        }
    }
}

/// Best split across the candidate features, histograms built in parallel.
#[allow(clippy::too_many_arguments)]
fn find_best_split(
    binned: &BinnedMatrix,
    grads: &[f64],
    hesss: &[f64],
    rows: &[u32],
    features: &[usize],
    totals: (f64, f64, u32),
    config: &GbmConfig,
    stats: &mut GrowStats,
) -> Option<SplitInfo> {
    // Counted serially before the parallel map so no atomics are needed:
    // exactly the features with split candidates get a histogram below.
    stats.histogram_builds += features
        .iter()
        .filter(|&&f| binned.mappers[f].n_split_candidates() > 0)
        .count() as u64;
    let candidates: Vec<Option<SplitInfo>> =
        safe_stats::par::par_map_slice(config.parallelism, features, |&f| {
            let mapper = &binned.mappers[f];
            if mapper.n_split_candidates() == 0 {
                return None;
            }
            let hist = build_histogram(&binned.bins[f], rows, grads, hesss, mapper.n_bins());
            best_split_for_feature(
                f,
                &hist,
                mapper.n_value_bins(),
                totals,
                config.lambda,
                config.gamma,
                config.min_child_weight,
            )
        });
    candidates
        .into_iter()
        .flatten()
        .max_by(|a, b| a.gain.total_cmp(&b.gain))
}

/// Route each row left or right according to the chosen split.
fn partition_rows(binned: &BinnedMatrix, rows: &[u32], split: &SplitInfo) -> (Vec<u32>, Vec<u32>) {
    let bins = &binned.bins[split.feature];
    let missing = binned.mappers[split.feature].missing_bin();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        let b = bins[r as usize];
        let go_left = if b == missing {
            split.default_left
        } else {
            b <= split.split_bin
        };
        if go_left {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Objective;
    use safe_data::dataset::Dataset;

    fn binned_of(cols: Vec<Vec<f64>>) -> BinnedMatrix {
        let names = (0..cols.len()).map(|i| format!("f{i}")).collect();
        let ds = Dataset::from_columns(names, cols, None).unwrap();
        BinnedMatrix::from_dataset(&ds, 256)
    }

    fn grads_for(labels: &[u8]) -> (Vec<f64>, Vec<f64>) {
        // Logistic derivatives at margin 0.
        labels
            .iter()
            .map(|&y| crate::loss::grad_hess(Objective::Logistic, 0.0, y as f64))
            .unzip()
    }

    #[test]
    fn grows_a_single_split_for_a_step_function() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { max_depth: 3, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[0], &config);
        assert!(tree.depth() >= 1);
        // Predictions on both sides of the step must differ in sign.
        let lo = tree.predict_row(&[10.0]);
        let hi = tree.predict_row(&[90.0]);
        assert!(lo < 0.0 && hi > 0.0, "lo={lo} hi={hi}");
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..256).map(|i| ((i / 2) % 2) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        for depth in 1..=4 {
            let config = GbmConfig { max_depth: depth, ..GbmConfig::default() };
            let tree = grow_tree(&binned, &g, &h, (0..256).collect(), &[0], &config);
            assert!(tree.depth() <= depth, "depth {} > cap {depth}", tree.depth());
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let labels = vec![1u8; 50];
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..50).collect(), &[0], &GbmConfig::default());
        assert_eq!(tree.n_leaves(), 1, "uniform gradients should not split");
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of two binary features, with *asymmetric* corner counts: a
        // perfectly balanced XOR gives every first split exactly zero gain
        // (greedy boosters, including XGBoost, rightly refuse it), so the
        // corners are weighted 60/50/50/40 to break the tie.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (x, y, count) in [(0.0, 0.0, 60), (0.0, 1.0, 50), (1.0, 0.0, 50), (1.0, 1.0, 40)] {
            for _ in 0..count {
                a.push(x);
                b.push(y);
            }
        }
        let n = a.len();
        let labels: Vec<u8> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| ((x as i32) ^ (y as i32)) as u8)
            .collect();
        let binned = binned_of(vec![a.clone(), b.clone()]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { max_depth: 2, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..n as u32).collect(), &[0, 1], &config);
        // All four corners correctly signed.
        for (x, y) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let pred = tree.predict_row(&[x, y]);
            let want_positive = (x as i32 ^ y as i32) == 1;
            assert_eq!(pred > 0.0, want_positive, "corner ({x},{y}) pred={pred}");
        }
    }

    #[test]
    fn feature_subset_is_honored() {
        // Feature 0 is perfectly predictive, feature 1 is noise — but only
        // feature 1 is offered.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let noise: Vec<f64> = (0..100).map(|i| ((i * 7919) % 100) as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x, noise]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[1], &GbmConfig::default());
        for (f, _) in tree.split_gains() {
            assert_eq!(f, 1, "must only split on the offered feature");
        }
    }

    #[test]
    fn row_subset_is_honored() {
        // Only rows < 50 participate; there the label is constant → leaf.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..50).collect(), &[0], &GbmConfig::default());
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn missing_rows_are_routed_and_learned() {
        // Feature is NaN exactly for positives: the split must exploit the
        // missing bin via default direction.
        let n = 100;
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let x: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l == 1 { f64::NAN } else { i as f64 })
            .collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let tree = grow_tree(&binned, &g, &h, (0..n as u32).collect(), &[0], &GbmConfig::default());
        let on_missing = tree.predict_row(&[f64::NAN]);
        let on_present = tree.predict_row(&[4.0]);
        assert!(on_missing > 0.0, "missing → positive leaf, got {on_missing}");
        assert!(on_present < 0.0, "present → negative leaf, got {on_present}");
    }

    #[test]
    fn gamma_prunes_all_splits() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..100).map(|i| (i >= 50) as u8).collect();
        let binned = binned_of(vec![x]);
        let (g, h) = grads_for(&labels);
        let config = GbmConfig { gamma: 1e9, ..GbmConfig::default() };
        let tree = grow_tree(&binned, &g, &h, (0..100).collect(), &[0], &config);
        assert_eq!(tree.n_leaves(), 1);
    }
}
