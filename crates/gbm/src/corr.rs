//! Binned Pearson correlation over shared `u16` bin columns.
//!
//! The exact redundancy filter computes `pearson` over full `f64` columns:
//! two passes of float loads, finiteness checks, and multiplies per pair —
//! O(d²·n) with poor cache behaviour once `d` is large. This module trades
//! a small, *documented* amount of precision for an integer kernel that
//! reuses the quantized columns the booster already produced via
//! [`BinCache`](crate::BinCache):
//!
//! 1. each column is reduced to its `u16` bin codes plus one
//!    *representative value* per bin (the mean of the raw finite values
//!    that landed in the bin),
//! 2. a pair is correlated by accumulating an integer co-occurrence table
//!    `counts[bin_a][bin_b] += 1` in a single pass over the rows — no
//!    float work in the hot loop — and
//! 3. the Pearson statistic is reduced from the (sparse) occupied cells of
//!    that table, weighting each `(rep_a, rep_b)` pair by its count.
//!
//! Missing values keep the exact kernel's *pairwise deletion* semantics:
//! `BinMapper::bin` maps every non-finite value to the dedicated missing
//! bin, and rows where either column is in its missing bin are skipped —
//! exactly the rows `safe_stats::pearson::pearson` skips. The degenerate
//! contracts also match bit-for-bit: fewer than two co-occurring rows → 0.0,
//! zero variance on either side → 0.0, result clamped to [-1, 1].
//!
//! ## Precision contract
//!
//! When binning is lossless — every bin holds a single distinct value,
//! i.e. the column has fewer distinct values than `max_bins` — the binned
//! statistic equals the exact one up to f64 summation order (≤ ~1e-9 in
//! practice; `tests` pin 1e-9). When binning is lossy the statistic is the
//! correlation of the *bin representatives*, which for equal-frequency
//! bins at the default `max_bins = 256` tracks the exact value closely
//! (pinned at ±0.02 on smooth data). Callers that need exact ρ must use
//! `safe_stats::pearson::pearson`; the staged selection path accepts the
//! tolerance because its threshold test (|ρ| > θ) is itself a heuristic.
//!
//! The ±0.02 figure does **not** hold for heavy-tailed columns whose
//! variance is dominated by a handful of extreme rows (nested-division
//! candidates routinely produce them): when an outlier shares a bin with
//! ordinary values the bin mean dilutes it, and the binned statistic can
//! sit arbitrarily far from the exact one. Each [`CorrColumn`] therefore
//! carries a *trust signal* — [`CorrColumn::rep_variance_ratio`], the
//! fraction of the column's exact variance its bin representatives retain.
//! Smooth columns retain essentially all of it (ratio → 1); an
//! outlier-diluted column loses a visible chunk, and callers that need
//! decisions consistent with exact ρ (the staged redundancy filter) fall
//! back to the `f64` kernel for any pair touching a low-ratio column.
//!
//! The scratch table is caller-owned ([`CorrScratch`]) and cleared by
//! replaying only the cells a pair touched, so repeated calls never pay a
//! full `max_bins²` memset.

use crate::binner::BinMapper;

/// A column prepared for binned correlation: bin codes, the missing-bin
/// sentinel, and one representative raw value per value bin.
#[derive(Debug, Clone)]
pub struct CorrColumn {
    bins: Vec<u16>,
    missing: u16,
    /// `reps[b]` = mean of the finite raw values that binned into `b`.
    /// Bins unoccupied in `raw` keep the mapper's upper threshold so the
    /// kernel stays total if bins were fit on different rows.
    reps: Vec<f64>,
    /// Fraction of the column's exact (finite-value) variance retained by
    /// the bin representatives; see [`CorrColumn::rep_variance_ratio`].
    rep_variance_ratio: f64,
}

impl CorrColumn {
    /// Prepare a column from its shared bin codes and the raw values the
    /// mapper was fit on. `bins` and `raw` must be row-aligned.
    pub fn new(bins: &[u16], mapper: &BinMapper, raw: &[f64]) -> CorrColumn {
        let n_value_bins = mapper.n_value_bins();
        let mut sums = vec![0.0f64; n_value_bins];
        let mut counts = vec![0u64; n_value_bins];
        for (&b, &v) in bins.iter().zip(raw) {
            let b = b as usize;
            if b < n_value_bins && v.is_finite() {
                sums[b] += v;
                counts[b] += 1;
            }
        }
        // The last value bin is open-ended (no upper cut), so an unoccupied
        // bin falls back to the nearest interior cut, or 0.0 for a column
        // with no cuts at all. In normal use every value bin is occupied —
        // the mapper was fit on these same rows — so the fallback only
        // keeps the kernel total for mismatched inputs.
        let n_cuts = mapper.n_split_candidates();
        let reps: Vec<f64> = (0..n_value_bins)
            .map(|b| {
                if counts[b] > 0 {
                    sums[b] / counts[b] as f64
                } else if b < n_cuts {
                    mapper.threshold(b as u16)
                } else if n_cuts > 0 {
                    mapper.threshold((n_cuts - 1) as u16)
                } else {
                    0.0
                }
            })
            .collect();
        // Trust signal: how much of the column's variance survives the
        // bin-mean quantization. Both variances share the exact mean of
        // the finite values, so the ratio isolates within-bin loss.
        let n_finite: u64 = counts.iter().sum();
        let rep_variance_ratio = if n_finite == 0 {
            1.0
        } else {
            let mean = sums.iter().sum::<f64>() / n_finite as f64;
            let exact_var: f64 = raw
                .iter()
                .filter(|v| v.is_finite())
                .map(|&v| (v - mean) * (v - mean))
                .sum();
            if exact_var <= 0.0 {
                1.0 // constant column: binned and exact both report ρ = 0
            } else {
                let rep_var: f64 = (0..n_value_bins)
                    .map(|b| {
                        let d = reps[b] - mean;
                        counts[b] as f64 * d * d
                    })
                    .sum();
                (rep_var / exact_var).clamp(0.0, 1.0)
            }
        };
        CorrColumn { bins: bins.to_vec(), missing: mapper.missing_bin(), reps, rep_variance_ratio }
    }

    /// Fraction of the column's exact finite-value variance that the bin
    /// representatives retain, in `[0, 1]`.
    ///
    /// Lossless binning (distinct values ≤ bins) and smooth columns sit at
    /// ~1.0 — within-bin spread is tiny relative to between-bin spread.
    /// A column whose variance is carried by a few extreme rows that share
    /// bins with ordinary values loses a visible fraction (the bin mean
    /// dilutes the outlier), and every pair statistic built on its
    /// representatives inherits that distortion. Columns with no finite
    /// values or zero variance report 1.0: the binned kernel and the exact
    /// one agree exactly (both return 0.0) on such degenerate inputs.
    pub fn rep_variance_ratio(&self) -> f64 {
        self.rep_variance_ratio
    }

    /// Number of value bins (excluding the missing bin).
    pub fn n_value_bins(&self) -> usize {
        self.reps.len()
    }

    /// Number of rows the column covers.
    pub fn n_rows(&self) -> usize {
        self.bins.len()
    }
}

/// Reusable workspace for [`binned_pearson`]: the co-occurrence table plus
/// the list of occupied cells (so clearing is O(occupied), not O(table)).
#[derive(Debug, Default)]
pub struct CorrScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl CorrScratch {
    /// Fresh scratch; the table grows on demand and is reused across pairs.
    pub fn new() -> CorrScratch {
        CorrScratch::default()
    }

    fn ensure(&mut self, cells: usize) {
        if self.counts.len() < cells {
            self.counts.resize(cells, 0);
        }
        self.touched.clear();
    }
}

/// Pearson correlation of two binned columns via integer co-occurrence
/// accumulation. Mirrors `safe_stats::pearson::pearson`'s edge cases:
/// pairwise missing deletion, `n < 2 → 0.0`, zero variance → 0.0, clamped
/// to [-1, 1]. See the module docs for the precision contract.
///
/// # Panics
/// Panics if the columns have different row counts (caller bug: the
/// columns must come from the same dataset).
pub fn binned_pearson(a: &CorrColumn, b: &CorrColumn, scratch: &mut CorrScratch) -> f64 {
    assert_eq!(a.bins.len(), b.bins.len(), "binned_pearson: row count mismatch");
    let nb = b.reps.len();
    scratch.ensure(a.reps.len() * nb);

    // Pass 1 — integer co-occurrence accumulation. The only float work in
    // the row loop is none at all: two u16 loads, a compare, an increment.
    for (&ba, &bb) in a.bins.iter().zip(&b.bins) {
        if ba == a.missing || bb == b.missing {
            continue;
        }
        let cell = ba as usize * nb + bb as usize;
        if scratch.counts[cell] == 0 {
            scratch.touched.push(cell as u32);
        }
        scratch.counts[cell] += 1;
    }

    // Pass 2 — weighted means over the occupied cells.
    let mut n = 0u64;
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    for &cell in &scratch.touched {
        let c = scratch.counts[cell as usize] as f64;
        let i = cell as usize / nb;
        let j = cell as usize % nb;
        n += scratch.counts[cell as usize] as u64;
        sx += c * a.reps[i];
        sy += c * b.reps[j];
    }
    if n < 2 {
        for &cell in &scratch.touched {
            scratch.counts[cell as usize] = 0;
        }
        return 0.0;
    }
    let mx = sx / n as f64;
    let my = sy / n as f64;

    // Pass 3 — weighted centered moments, then clear the touched cells so
    // the scratch table is all-zero for the next pair.
    let mut num = 0.0f64;
    let mut dx = 0.0f64;
    let mut dy = 0.0f64;
    for &cell in &scratch.touched {
        let c = scratch.counts[cell as usize] as f64;
        let i = cell as usize / nb;
        let j = cell as usize % nb;
        let ax = a.reps[i] - mx;
        let by = b.reps[j] - my;
        num += c * ax * by;
        dx += c * ax * ax;
        dy += c * by * by;
        scratch.counts[cell as usize] = 0;
    }
    if dx <= 0.0 || dy <= 0.0 {
        return 0.0;
    }
    (num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_stats::pearson::pearson;

    fn corr_pair(x: &[f64], y: &[f64], max_bins: usize) -> (f64, f64) {
        let ma = BinMapper::fit(x, max_bins);
        let mb = BinMapper::fit(y, max_bins);
        let bx: Vec<u16> = x.iter().map(|&v| ma.bin(v)).collect();
        let by: Vec<u16> = y.iter().map(|&v| mb.bin(v)).collect();
        let ca = CorrColumn::new(&bx, &ma, x);
        let cb = CorrColumn::new(&by, &mb, y);
        let mut scratch = CorrScratch::new();
        (binned_pearson(&ca, &cb, &mut scratch), pearson(x, y))
    }

    /// Lossless binning (distinct values < max_bins): the binned statistic
    /// must pin the exact f64 `pearson` to summation-order precision.
    #[test]
    fn lossless_binning_matches_exact_pearson() {
        let x: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i % 13) as f64) * 2.0 + ((i % 5) as f64)).collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert!(
            (binned - exact).abs() < 1e-9,
            "lossless binned {binned} vs exact {exact}"
        );
    }

    /// Lossy binning on smooth data: documented tolerance of ±0.02 at the
    /// booster's default 256-bin budget.
    #[test]
    fn lossy_binning_within_documented_tolerance() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..2000).map(|_| rand() * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.7 * v + rand()).collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert!(
            (binned - exact).abs() < 0.02,
            "lossy binned {binned} vs exact {exact}"
        );
    }

    /// Anti-correlated data must come out negative and close to exact.
    #[test]
    fn negative_correlation_tracks_exact() {
        let x: Vec<f64> = (0..300).map(|i| (i % 100) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| -v).collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert!((exact + 1.0).abs() < 1e-12);
        assert!((binned - exact).abs() < 1e-9, "binned {binned} vs exact {exact}");
    }

    /// Constant column: zero variance must yield exactly 0.0 in both
    /// kernels (edge case with no prior direct coverage).
    #[test]
    fn constant_column_is_exactly_zero() {
        let x = vec![7.0; 64];
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert_eq!(exact, 0.0);
        assert_eq!(binned, 0.0);
    }

    /// All-missing column: every row is pairwise-deleted, so both kernels
    /// must return exactly 0.0 (n < 2 contract).
    #[test]
    fn all_missing_column_is_exactly_zero() {
        let x = vec![f64::NAN; 48];
        let y: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert_eq!(exact, 0.0);
        assert_eq!(binned, 0.0);
    }

    /// Pairwise deletion: rows missing in either column are skipped, and on
    /// lossless data the surviving rows reproduce the exact statistic.
    #[test]
    fn pairwise_missing_matches_exact_on_lossless_data() {
        let x: Vec<f64> = (0..120)
            .map(|i| if i % 7 == 0 { f64::NAN } else { (i % 11) as f64 })
            .collect();
        let y: Vec<f64> = (0..120)
            .map(|i| if i % 13 == 0 { f64::INFINITY } else { (i % 11) as f64 + (i % 3) as f64 })
            .collect();
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert!((binned - exact).abs() < 1e-9, "binned {binned} vs exact {exact}");
    }

    /// One co-occurring row (everything else pairwise-missing): n < 2 → 0.0.
    #[test]
    fn single_surviving_row_is_zero() {
        let x = vec![1.0, f64::NAN, f64::NAN];
        let y = vec![2.0, 3.0, f64::NAN];
        let (binned, exact) = corr_pair(&x, &y, 256);
        assert_eq!(exact, 0.0);
        assert_eq!(binned, 0.0);
    }

    fn corr_column(x: &[f64], max_bins: usize) -> CorrColumn {
        let m = BinMapper::fit(x, max_bins);
        let bx: Vec<u16> = x.iter().map(|&v| m.bin(v)).collect();
        CorrColumn::new(&bx, &m, x)
    }

    /// Smooth and lossless columns retain essentially all their variance
    /// through the bin representatives; degenerate columns report exactly
    /// 1.0 by contract.
    #[test]
    fn variance_ratio_is_high_on_well_behaved_columns() {
        let lossless: Vec<f64> = (0..300).map(|i| (i % 40) as f64).collect();
        assert!(corr_column(&lossless, 256).rep_variance_ratio() > 1.0 - 1e-9);
        let smooth: Vec<f64> = (0..4000).map(|i| (i as f64).sin() * 5.0 + i as f64 / 100.0).collect();
        assert!(corr_column(&smooth, 256).rep_variance_ratio() > 0.999);
        assert_eq!(corr_column(&vec![3.0; 50], 256).rep_variance_ratio(), 1.0);
        assert_eq!(corr_column(&vec![f64::NAN; 50], 256).rep_variance_ratio(), 1.0);
    }

    /// An outlier forced to share a bin with ordinary values is diluted by
    /// the bin mean, and the trust signal must flag the variance loss —
    /// this is the column shape (nested-division candidates) on which the
    /// binned statistic deviates unboundedly from exact ρ.
    #[test]
    fn variance_ratio_flags_outlier_diluted_columns() {
        // 4-bin budget: the 1e6 outlier lands in the top bin next to
        // values ~[0.75, 1.0), so its bin mean collapses it.
        let mut x: Vec<f64> = (0..400).map(|i| (i % 100) as f64 / 100.0).collect();
        x.push(1.0e6);
        let ratio = corr_column(&x, 4).rep_variance_ratio();
        assert!(
            ratio < 0.9,
            "outlier dilution not flagged: rep_variance_ratio = {ratio}"
        );
    }

    /// The scratch table must be self-clearing: correlating an uncorrelated
    /// pair after a perfectly correlated one must not inherit stale counts.
    #[test]
    fn scratch_reuse_is_clean_across_pairs() {
        let x: Vec<f64> = (0..100).map(|i| (i % 17) as f64).collect();
        let y = x.clone();
        let z: Vec<f64> = (0..100).map(|i| ((i * 31 + 7) % 17) as f64).collect();
        let ma = BinMapper::fit(&x, 256);
        let mb = BinMapper::fit(&y, 256);
        let mc = BinMapper::fit(&z, 256);
        let bx: Vec<u16> = x.iter().map(|&v| ma.bin(v)).collect();
        let by: Vec<u16> = y.iter().map(|&v| mb.bin(v)).collect();
        let bz: Vec<u16> = z.iter().map(|&v| mc.bin(v)).collect();
        let ca = CorrColumn::new(&bx, &ma, &x);
        let cb = CorrColumn::new(&by, &mb, &y);
        let cc = CorrColumn::new(&bz, &mc, &z);
        let mut scratch = CorrScratch::new();
        let first = binned_pearson(&ca, &cb, &mut scratch);
        assert!((first - 1.0).abs() < 1e-12);
        let reused = binned_pearson(&ca, &cc, &mut scratch);
        let mut fresh = CorrScratch::new();
        let clean = binned_pearson(&ca, &cc, &mut fresh);
        assert_eq!(reused.to_bits(), clean.to_bits());
    }
}
