//! # safe-gbm — gradient-boosted trees with path extraction
//!
//! A from-scratch reproduction of the XGBoost-style booster that SAFE uses
//! three times per iteration:
//!
//! 1. **combination mining** — the split-feature *paths* of the trained trees
//!    define the candidate feature combinations (Section IV-B1, Fig. 2),
//! 2. **feature ranking** — surviving candidates are ordered by average split
//!    gain (Section IV-C3),
//! 3. **evaluation** — "XGB" is one of the nine downstream classifiers in
//!    Tables III and VIII.
//!
//! The implementation is a second-order (Newton) booster:
//!
//! - logistic and squared-error objectives ([`loss`]),
//! - histogram split finding over quantized feature bins ([`binner`],
//!   [`histogram`]) — with `max_bins` ≥ the number of distinct values this
//!   degenerates to exact greedy search,
//! - L2 regularization `λ`, split penalty `γ`, `min_child_weight`, depth
//!   limit, learning-rate shrinkage, row and column subsampling,
//! - sparsity-aware missing-value handling (each split learns a default
//!   direction for the missing bin),
//! - optional early stopping on validation AUC,
//! - per-feature gain/count importance ([`importance`]) and root→leaf-parent
//!   path enumeration ([`tree::Tree::paths`]).
//!
//! Histogram construction is parallelized across features with the
//! scoped-thread helper from `safe-stats`, mirroring the paper's
//! "distributed computing" requirement.
//!
//! Training failures surface as typed [`GbmError`]s rather than panics;
//! with the `failpoints` feature the loop exposes named fault-injection
//! points (`gbm/fit-begin`, `gbm/train-round`) for degradation testing.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod binner;
pub mod booster;
pub mod codec;
pub mod corr;
pub mod dump;
pub mod config;
pub mod error;
pub mod grow;
pub mod histogram;
pub mod importance;
pub mod loss;
pub mod tree;

pub use binner::{BinCache, BinMapper, BinnedDataset};
pub use corr::{binned_pearson, CorrColumn, CorrScratch};
pub use booster::{Gbm, GbmFitStats, GbmModel};
pub use error::GbmError;
pub use grow::GrowStats;
pub use dump::{dump_model, dump_tree};
pub use config::{GbmConfig, Objective};
pub use importance::{FeatureImportance, ImportanceKind};
pub use tree::{SplitPath, Tree, TreeNode};
