//! Human-readable model dumps — tree structure as indented text, the same
//! shape XGBoost's `dump_model` emits. Industrial review (model risk,
//! regulators) reads these; the SAFE paper lists interpretability among its
//! industrial requirements.

use crate::booster::GbmModel;
use crate::tree::{Tree, TreeNode};

/// Render one tree as indented text. `feature_names` supplies column labels
/// (falls back to `f<idx>`).
pub fn dump_tree(tree: &Tree, feature_names: &[&str]) -> String {
    let mut out = String::new();
    fn name(feature_names: &[&str], f: usize) -> String {
        feature_names
            .get(f)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("f{f}"))
    }
    fn walk(
        tree: &Tree,
        idx: usize,
        depth: usize,
        feature_names: &[&str],
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        match &tree.nodes[idx] {
            TreeNode::Leaf { value } => {
                out.push_str(&format!("{pad}leaf = {value:.6}\n"));
            }
            TreeNode::Internal {
                feature,
                threshold,
                default_left,
                left,
                right,
                gain,
            } => {
                let miss = if *default_left { "left" } else { "right" };
                out.push_str(&format!(
                    "{pad}[{} <= {threshold:.6}] gain={gain:.4} missing->{miss}\n",
                    name(feature_names, *feature)
                ));
                walk(tree, *left, depth + 1, feature_names, out);
                walk(tree, *right, depth + 1, feature_names, out);
            }
        }
    }
    if !tree.nodes.is_empty() {
        walk(tree, 0, 0, feature_names, &mut out);
    }
    out
}

/// Render the whole ensemble, one `booster[i]` section per tree.
pub fn dump_model(model: &GbmModel, feature_names: &[&str]) -> String {
    let mut out = String::new();
    for (i, tree) in model.trees().iter().enumerate() {
        out.push_str(&format!("booster[{i}]\n"));
        out.push_str(&dump_tree(tree, feature_names));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNode;

    fn tiny() -> Tree {
        Tree {
            nodes: vec![
                TreeNode::Internal {
                    feature: 0,
                    threshold: 1.5,
                    default_left: true,
                    left: 1,
                    right: 2,
                    gain: 3.25,
                },
                TreeNode::Leaf { value: -0.4 },
                TreeNode::Leaf { value: 0.4 },
            ],
        }
    }

    #[test]
    fn dump_contains_structure() {
        let text = dump_tree(&tiny(), &["age", "income"]);
        assert!(text.contains("[age <= 1.5"));
        assert!(text.contains("gain=3.2500"));
        assert!(text.contains("missing->left"));
        assert!(text.contains("leaf = -0.4"));
        // Children indented one level deeper than the root.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("  "));
        assert!(!lines[0].starts_with(' '));
    }

    #[test]
    fn unknown_feature_index_falls_back() {
        let text = dump_tree(&tiny(), &[]);
        assert!(text.contains("[f0 <= 1.5"));
    }

    #[test]
    fn leaf_only_tree() {
        let text = dump_tree(&Tree::leaf(0.123), &[]);
        assert_eq!(text.trim(), "leaf = 0.123000");
    }

    #[test]
    fn model_dump_enumerates_boosters() {
        use safe_data::dataset::Dataset;
        let ds = Dataset::from_columns(
            vec!["x".into()],
            vec![(0..100).map(|i| i as f64).collect()],
            Some((0..100).map(|i| (i >= 50) as u8).collect()),
        )
        .unwrap();
        let model = crate::booster::Gbm::new(crate::config::GbmConfig {
            n_rounds: 3,
            ..Default::default()
        })
        .fit(&ds, None)
        .unwrap();
        let text = dump_model(&model, &["x"]);
        assert!(text.contains("booster[0]"));
        assert!(text.contains("booster[2]"));
        assert!(text.contains("[x <= "));
    }
}
