//! Booster hyper-parameters.
//!
//! Section IV-E1 of the paper (strong applicability): the only knobs SAFE
//! exposes control complexity — tree count, depth — so the defaults here are
//! deliberately ordinary XGBoost defaults that work across datasets.

use safe_stats::par::Parallelism;

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Binary logistic regression; predictions are probabilities.
    Logistic,
    /// Squared error; predictions are raw scores.
    Squared,
}

/// Hyper-parameters of the gradient booster.
#[derive(Debug, Clone, PartialEq)]
pub struct GbmConfig {
    /// Number of boosting rounds (trees). Paper notation `K`.
    pub n_rounds: usize,
    /// Shrinkage η applied to every leaf value.
    pub learning_rate: f64,
    /// Maximum tree depth. Paper notation `D`; "trees in XGBoost are usually
    /// not deep".
    pub max_depth: usize,
    /// Minimum sum of hessian in each child; blocks statistically tiny leaves.
    pub min_child_weight: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum loss reduction γ to accept a split.
    pub gamma: f64,
    /// Maximum histogram bins per feature (≥ distinct values → exact greedy).
    pub max_bins: usize,
    /// Row subsample fraction per tree, in (0, 1].
    pub subsample: f64,
    /// Column subsample fraction per tree, in (0, 1].
    pub colsample: f64,
    /// Training objective.
    pub objective: Objective,
    /// Stop when validation AUC hasn't improved for this many rounds.
    pub early_stopping_rounds: Option<usize>,
    /// RNG seed for subsampling.
    pub seed: u64,
    /// Worker-thread budget for histogram construction and feature binning.
    /// `threads = 0` auto-detects, `threads = 1` is the serial path; any
    /// setting yields bit-identical models (fixed-order reductions only).
    pub parallelism: Parallelism,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_rounds: 50,
            learning_rate: 0.3,
            max_depth: 6,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
            max_bins: 256,
            subsample: 1.0,
            colsample: 1.0,
            objective: Objective::Logistic,
            early_stopping_rounds: None,
            seed: 0,
            parallelism: Parallelism::auto(),
        }
    }
}

impl GbmConfig {
    /// Light configuration used by SAFE's *mining* stage: few, shallow trees
    /// keep the candidate-combination count `2^D·K·A²_D` small (Eq. 13 shows
    /// the end-to-end complexity is governed by these two knobs).
    pub fn miner() -> Self {
        GbmConfig {
            n_rounds: 20,
            max_depth: 4,
            ..GbmConfig::default()
        }
    }

    /// Configuration used when GBM acts as a downstream classifier.
    pub fn classifier() -> Self {
        GbmConfig {
            n_rounds: 100,
            learning_rate: 0.3,
            max_depth: 6,
            ..GbmConfig::default()
        }
    }

    /// Validate ranges; called once at fit time.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_rounds == 0 {
            return Err("n_rounds must be positive".into());
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(format!("learning_rate {} not in (0, 1]", self.learning_rate));
        }
        if self.max_depth == 0 {
            return Err("max_depth must be at least 1".into());
        }
        if self.max_bins < 2 {
            return Err("max_bins must be at least 2".into());
        }
        if self.max_bins > u16::MAX as usize {
            return Err(format!("max_bins {} exceeds u16 bin index", self.max_bins));
        }
        for (name, v) in [("subsample", self.subsample), ("colsample", self.colsample)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} {v} not in (0, 1]"));
            }
        }
        if self.lambda < 0.0 || self.gamma < 0.0 || self.min_child_weight < 0.0 {
            return Err("lambda, gamma, min_child_weight must be non-negative".into());
        }
        self.parallelism.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(GbmConfig::default().validate().is_ok());
        assert!(GbmConfig::miner().validate().is_ok());
        assert!(GbmConfig::classifier().validate().is_ok());
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = GbmConfig::default();
        c.n_rounds = 0;
        assert!(c.validate().is_err());

        let mut c = GbmConfig::default();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());

        let mut c = GbmConfig::default();
        c.subsample = 1.5;
        assert!(c.validate().is_err());

        let mut c = GbmConfig::default();
        c.max_bins = 1;
        assert!(c.validate().is_err());

        let mut c = GbmConfig::default();
        c.lambda = -0.1;
        assert!(c.validate().is_err());

        let mut c = GbmConfig::default();
        c.parallelism = Parallelism::new(100_000);
        assert!(c.validate().is_err());
    }

    #[test]
    fn explicit_thread_counts_validate() {
        for threads in [0, 1, 2, 4, 7] {
            let c = GbmConfig { parallelism: Parallelism::new(threads), ..GbmConfig::default() };
            assert!(c.validate().is_ok(), "threads={threads}");
        }
    }

    #[test]
    fn miner_is_smaller_than_classifier() {
        let m = GbmConfig::miner();
        let c = GbmConfig::classifier();
        assert!(m.n_rounds < c.n_rounds);
        assert!(m.max_depth < c.max_depth);
    }
}
