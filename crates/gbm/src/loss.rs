//! Second-order loss functions: per-record gradient/hessian pairs.

use crate::config::Objective;

/// Numerically stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Gradient/hessian of one record at margin `pred` for label `y`.
///
/// Logistic: `g = p − y`, `h = p(1−p)` with `p = σ(pred)`.
/// Squared:  `g = pred − y`, `h = 1`.
pub fn grad_hess(objective: Objective, pred: f64, y: f64) -> (f64, f64) {
    match objective {
        Objective::Logistic => {
            let p = sigmoid(pred);
            (p - y, (p * (1.0 - p)).max(1e-16))
        }
        Objective::Squared => (pred - y, 1.0),
    }
}

/// Initial margin (base score) from the label mean.
///
/// Logistic: log-odds of the positive rate. Squared: the mean itself.
pub fn base_margin(objective: Objective, labels: &[u8]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mean = labels.iter().map(|&l| l as f64).sum::<f64>() / labels.len() as f64;
    match objective {
        Objective::Logistic => {
            let p = mean.clamp(1e-6, 1.0 - 1e-6);
            (p / (1.0 - p)).ln()
        }
        Objective::Squared => mean,
    }
}

/// Map a raw margin to the output scale (probability for logistic).
pub fn transform(objective: Objective, margin: f64) -> f64 {
    match objective {
        Objective::Logistic => sigmoid(margin),
        Objective::Squared => margin,
    }
}

/// Mean training loss at the given margins (for the monotonicity tests and
/// verbose logging).
pub fn mean_loss(objective: Objective, margins: &[f64], labels: &[u8]) -> f64 {
    assert_eq!(margins.len(), labels.len());
    if margins.is_empty() {
        return 0.0;
    }
    let total: f64 = margins
        .iter()
        .zip(labels)
        .map(|(&m, &y)| {
            let y = y as f64;
            match objective {
                Objective::Logistic => {
                    // log(1 + e^{-m}) + (1-y) m, stable form.
                    let p = sigmoid(m).clamp(1e-15, 1.0 - 1e-15);
                    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                }
                Objective::Squared => {
                    let d = m - y;
                    0.5 * d * d
                }
            }
        })
        .sum();
    total / margins.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_limits_and_center() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(40.0) > 1.0 - 1e-12);
        assert!(sigmoid(-40.0) < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0, "no underflow panic");
    }

    #[test]
    fn sigmoid_is_symmetric() {
        for x in [-3.0, -1.0, 0.5, 2.7] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn logistic_grad_signs() {
        let (g_pos, h) = grad_hess(Objective::Logistic, 0.0, 1.0);
        assert!(g_pos < 0.0, "positive label pulls margin up");
        assert!(h > 0.0);
        let (g_neg, _) = grad_hess(Objective::Logistic, 0.0, 0.0);
        assert!(g_neg > 0.0, "negative label pushes margin down");
    }

    #[test]
    fn logistic_hessian_peaks_at_center() {
        let (_, h0) = grad_hess(Objective::Logistic, 0.0, 1.0);
        let (_, h3) = grad_hess(Objective::Logistic, 3.0, 1.0);
        assert!(h0 > h3);
        assert!((h0 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn squared_loss_derivatives() {
        let (g, h) = grad_hess(Objective::Squared, 2.0, 0.5);
        assert!((g - 1.5).abs() < 1e-15);
        assert_eq!(h, 1.0);
    }

    #[test]
    fn base_margin_matches_log_odds() {
        let labels = vec![1, 1, 1, 0]; // 75% positive
        let m = base_margin(Objective::Logistic, &labels);
        assert!((sigmoid(m) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn base_margin_extreme_rates_are_finite() {
        assert!(base_margin(Objective::Logistic, &[1, 1, 1]).is_finite());
        assert!(base_margin(Objective::Logistic, &[0, 0]).is_finite());
        assert_eq!(base_margin(Objective::Logistic, &[]), 0.0);
    }

    #[test]
    fn mean_loss_decreases_toward_truth() {
        let labels = vec![1, 0, 1, 0];
        let bad = vec![0.0; 4];
        let good = vec![2.0, -2.0, 2.0, -2.0];
        assert!(
            mean_loss(Objective::Logistic, &good, &labels)
                < mean_loss(Objective::Logistic, &bad, &labels)
        );
    }
}
