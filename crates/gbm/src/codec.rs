//! Text serialization of trained boosters.
//!
//! A [`GbmModel`] serializes to a line-oriented, tab-separated text format
//! mirroring the `FeaturePlan` codec in `safe-core`: a versioned header,
//! one record per line, and every `f64` written as its 16-hex-digit IEEE-754
//! bit pattern so a round trip is lossless to the bit. The serving subsystem
//! (`safe-serve`) embeds this block inside a `SafeArtifact` so a fitted
//! scorer can be persisted next to the feature plan it consumes.
//!
//! Format (version 1):
//!
//! ```text
//! SAFEGBM\t1
//! BASE\t<hex f64>
//! OBJECTIVE\tlogistic|squared
//! NFEATURES\t<usize>
//! TREE\t<n_nodes>
//! I\t<feature>\t<hex threshold>\t<0|1 default_left>\t<left>\t<right>\t<hex gain>
//! L\t<hex value>
//! ...
//! ```
//!
//! Nodes appear in arena order (index 0 is the root), `n_nodes` lines per
//! `TREE` record. `eval_history` is training-time telemetry, not part of the
//! scoring function, and is deliberately not serialized.

use crate::booster::GbmModel;
use crate::config::Objective;
use crate::error::GbmError;
use crate::tree::{Tree, TreeNode};

/// Current codec format version.
pub const GBM_FORMAT_VERSION: u32 = 1;

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_err(line: usize, message: impl Into<String>) -> GbmError {
    GbmError::Parse {
        line: line + 1,
        message: message.into(),
    }
}

fn parse_hex(s: &str, line: usize) -> Result<f64, GbmError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| parse_err(line, format!("bad f64 hex '{s}'")))
}

impl GbmModel {
    /// Serialize to the versioned text codec (lossless f64 round trip).
    pub fn to_text(&self) -> String {
        let mut out = String::from("SAFEGBM\t1\n");
        out.push_str(&format!("BASE\t{}\n", hex(self.base)));
        let obj = match self.objective {
            Objective::Logistic => "logistic",
            Objective::Squared => "squared",
        };
        out.push_str(&format!("OBJECTIVE\t{obj}\n"));
        out.push_str(&format!("NFEATURES\t{}\n", self.n_features));
        for tree in &self.trees {
            out.push_str(&format!("TREE\t{}\n", tree.nodes.len()));
            for node in &tree.nodes {
                match node {
                    TreeNode::Internal {
                        feature,
                        threshold,
                        default_left,
                        left,
                        right,
                        gain,
                    } => out.push_str(&format!(
                        "I\t{feature}\t{}\t{}\t{left}\t{right}\t{}\n",
                        hex(*threshold),
                        u8::from(*default_left),
                        hex(*gain),
                    )),
                    TreeNode::Leaf { value } => {
                        out.push_str(&format!("L\t{}\n", hex(*value)))
                    }
                }
            }
        }
        out
    }

    /// Parse the text codec. Validates the header version, node counts, and
    /// child indices (every internal node must point inside its own arena).
    pub fn from_text(text: &str) -> Result<GbmModel, GbmError> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (i, header) = lines.next().ok_or_else(|| parse_err(0, "empty model"))?;
        if header != "SAFEGBM\t1" {
            return Err(parse_err(i, "bad header (expected SAFEGBM v1)"));
        }

        let mut base: Option<f64> = None;
        let mut objective: Option<Objective> = None;
        let mut n_features: Option<usize> = None;
        let mut trees: Vec<Tree> = Vec::new();
        // Nodes still owed to the TREE record currently being filled.
        let mut pending: usize = 0;

        for (i, line) in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "BASE" if fields.len() == 2 => base = Some(parse_hex(fields[1], i)?),
                "OBJECTIVE" if fields.len() == 2 => {
                    objective = Some(match fields[1] {
                        "logistic" => Objective::Logistic,
                        "squared" => Objective::Squared,
                        other => return Err(parse_err(i, format!("unknown objective '{other}'"))),
                    })
                }
                "NFEATURES" if fields.len() == 2 => {
                    n_features = Some(
                        fields[1]
                            .parse()
                            .map_err(|_| parse_err(i, "bad feature count"))?,
                    )
                }
                "TREE" if fields.len() == 2 => {
                    if pending > 0 {
                        return Err(parse_err(i, "previous TREE record is short of nodes"));
                    }
                    pending = fields[1]
                        .parse()
                        .map_err(|_| parse_err(i, "bad node count"))?;
                    if pending == 0 {
                        return Err(parse_err(i, "TREE must have at least one node"));
                    }
                    trees.push(Tree { nodes: Vec::with_capacity(pending) });
                }
                "I" if fields.len() == 7 => {
                    let tree = match (pending, trees.last_mut()) {
                        (p, Some(t)) if p > 0 => t,
                        _ => return Err(parse_err(i, "node outside a TREE record")),
                    };
                    let feature: usize = fields[1]
                        .parse()
                        .map_err(|_| parse_err(i, "bad feature index"))?;
                    let threshold = parse_hex(fields[2], i)?;
                    let default_left = match fields[3] {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(parse_err(i, format!("bad default flag '{other}'")))
                        }
                    };
                    let left: usize =
                        fields[4].parse().map_err(|_| parse_err(i, "bad left index"))?;
                    let right: usize =
                        fields[5].parse().map_err(|_| parse_err(i, "bad right index"))?;
                    let gain = parse_hex(fields[6], i)?;
                    tree.nodes.push(TreeNode::Internal {
                        feature,
                        threshold,
                        default_left,
                        left,
                        right,
                        gain,
                    });
                    pending -= 1;
                }
                "L" if fields.len() == 2 => {
                    let tree = match (pending, trees.last_mut()) {
                        (p, Some(t)) if p > 0 => t,
                        _ => return Err(parse_err(i, "node outside a TREE record")),
                    };
                    let value = parse_hex(fields[1], i)?;
                    tree.nodes.push(TreeNode::Leaf { value });
                    pending -= 1;
                }
                other => return Err(parse_err(i, format!("unrecognized record '{other}'"))),
            }
        }
        if pending > 0 {
            return Err(parse_err(0, "final TREE record is short of nodes"));
        }

        let base = base.ok_or_else(|| parse_err(0, "missing BASE record"))?;
        let objective = objective.ok_or_else(|| parse_err(0, "missing OBJECTIVE record"))?;
        let n_features = n_features.ok_or_else(|| parse_err(0, "missing NFEATURES record"))?;

        // Structural audit: child indices must stay inside the arena and
        // split features inside the declared schema, so a corrupted file is
        // rejected here rather than panicking at predict time.
        for (t, tree) in trees.iter().enumerate() {
            for node in &tree.nodes {
                if let TreeNode::Internal { feature, left, right, .. } = node {
                    if *left >= tree.nodes.len() || *right >= tree.nodes.len() {
                        return Err(parse_err(
                            0,
                            format!("tree {t}: child index out of bounds"),
                        ));
                    }
                    if *feature >= n_features {
                        return Err(parse_err(
                            0,
                            format!("tree {t}: split feature {feature} >= NFEATURES {n_features}"),
                        ));
                    }
                }
            }
        }

        Ok(GbmModel {
            trees,
            base,
            objective,
            n_features,
            eval_history: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::Gbm;
    use crate::config::GbmConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use safe_data::dataset::Dataset;

    fn toy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![Vec::with_capacity(n); 3];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let c: f64 = rng.gen_range(-1.0..1.0);
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(c);
            labels.push((a + 0.5 * b > 0.0) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            cols,
            Some(labels),
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_score_bits() {
        let train = toy(400, 1);
        let model = Gbm::new(GbmConfig { n_rounds: 12, ..GbmConfig::default() })
            .fit(&train, None)
            .unwrap();
        let back = GbmModel::from_text(&model.to_text()).unwrap();
        assert_eq!(back.n_trees(), model.n_trees());
        assert_eq!(back.n_features(), model.n_features());
        let direct = model.predict(&train);
        let recoded = back.predict(&train);
        for (a, b) in direct.iter().zip(&recoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "score bits must survive the codec");
        }
    }

    #[test]
    fn text_is_stable_under_recode() {
        let train = toy(200, 2);
        let model = Gbm::default_trainer().fit(&train, None).unwrap();
        let text = model.to_text();
        let recoded = GbmModel::from_text(&text).unwrap().to_text();
        assert_eq!(text, recoded);
    }

    #[test]
    fn squared_objective_round_trips() {
        let train = toy(200, 3);
        let model = Gbm::new(GbmConfig {
            objective: Objective::Squared,
            n_rounds: 5,
            ..GbmConfig::default()
        })
        .fit(&train, None)
        .unwrap();
        let back = GbmModel::from_text(&model.to_text()).unwrap();
        assert_eq!(back.objective(), Objective::Squared);
        assert_eq!(back.base_margin().to_bits(), model.base_margin().to_bits());
    }

    #[test]
    fn gnarly_leaf_values_survive() {
        let model = GbmModel {
            trees: vec![Tree {
                nodes: vec![TreeNode::Internal {
                    feature: 0,
                    threshold: 0.1 + 0.2,
                    default_left: false,
                    left: 1,
                    right: 2,
                    gain: 1e-300,
                },
                TreeNode::Leaf { value: -0.0 },
                TreeNode::Leaf { value: f64::MIN_POSITIVE }],
            }],
            base: f64::NAN,
            objective: Objective::Logistic,
            n_features: 1,
            eval_history: Vec::new(),
        };
        let back = GbmModel::from_text(&model.to_text()).unwrap();
        assert!(back.base_margin().is_nan());
        match &back.trees[0].nodes[1] {
            TreeNode::Leaf { value } => assert_eq!(value.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected leaf, got {other:?}"),
        }
        match &back.trees[0].nodes[0] {
            TreeNode::Internal { threshold, .. } => {
                assert_eq!(threshold.to_bits(), (0.1f64 + 0.2).to_bits())
            }
            other => panic!("expected internal, got {other:?}"),
        }
    }

    #[test]
    fn bad_text_rejected_with_line_numbers() {
        assert!(GbmModel::from_text("").is_err());
        assert!(GbmModel::from_text("NOTAGBM\t1\n").is_err());
        // Unknown record kind.
        let err = GbmModel::from_text("SAFEGBM\t1\nBOGUS\tx\n").unwrap_err();
        assert!(matches!(err, GbmError::Parse { line: 2, .. }), "{err:?}");
        // Node outside any TREE record.
        assert!(GbmModel::from_text(
            "SAFEGBM\t1\nBASE\t0000000000000000\nOBJECTIVE\tlogistic\nNFEATURES\t1\nL\t0000000000000000\n"
        )
        .is_err());
        // Short TREE record.
        assert!(GbmModel::from_text(
            "SAFEGBM\t1\nBASE\t0000000000000000\nOBJECTIVE\tlogistic\nNFEATURES\t1\nTREE\t2\nL\t0000000000000000\n"
        )
        .is_err());
    }

    #[test]
    fn corrupt_indices_rejected() {
        // Child index out of bounds.
        let text = "SAFEGBM\t1\nBASE\t0000000000000000\nOBJECTIVE\tlogistic\nNFEATURES\t2\n\
                    TREE\t3\nI\t0\t0000000000000000\t1\t1\t9\t0000000000000000\n\
                    L\t0000000000000000\nL\t0000000000000000\n";
        assert!(GbmModel::from_text(text).is_err());
        // Split feature outside the declared schema.
        let text = "SAFEGBM\t1\nBASE\t0000000000000000\nOBJECTIVE\tlogistic\nNFEATURES\t1\n\
                    TREE\t3\nI\t5\t0000000000000000\t1\t1\t2\t0000000000000000\n\
                    L\t0000000000000000\nL\t0000000000000000\n";
        assert!(GbmModel::from_text(text).is_err());
    }
}
