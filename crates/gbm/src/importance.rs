//! Feature importance over a trained ensemble.
//!
//! SAFE ranks candidate features "by the average gain across all splits in
//! which the feature is used" (Section IV-C3); total gain and split count
//! are provided as well for diagnostics and the Fig. 3 experiment.

use crate::tree::Tree;

/// Which importance statistic to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportanceKind {
    /// Sum of loss reductions over all splits on the feature.
    TotalGain,
    /// Mean loss reduction per split (the paper's ranking statistic).
    AverageGain,
    /// Number of splits on the feature.
    SplitCount,
}

/// Per-feature importance scores, indexed by feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// `scores[f]` is the statistic for feature `f`; 0 when unused.
    pub scores: Vec<f64>,
}

impl FeatureImportance {
    /// Compute importance across an ensemble.
    pub fn from_trees(trees: &[Tree], n_features: usize, kind: ImportanceKind) -> Self {
        let mut gain = vec![0.0f64; n_features];
        let mut count = vec![0usize; n_features];
        for tree in trees {
            for (f, g) in tree.split_gains() {
                gain[f] += g;
                count[f] += 1;
            }
        }
        let scores = match kind {
            ImportanceKind::TotalGain => gain,
            ImportanceKind::SplitCount => count.iter().map(|&c| c as f64).collect(),
            ImportanceKind::AverageGain => gain
                .iter()
                .zip(&count)
                .map(|(&g, &c)| if c > 0 { g / c as f64 } else { 0.0 })
                .collect(),
        };
        FeatureImportance { scores }
    }

    /// Feature indices sorted by descending score (stable for ties).
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }

    /// Features that were used in at least one split.
    pub fn used_features(&self) -> Vec<usize> {
        (0..self.scores.len())
            .filter(|&f| self.scores[f] > 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNode;

    fn two_trees() -> Vec<Tree> {
        // Tree A: splits on f0 (gain 10) then f1 (gain 2).
        let a = Tree {
            nodes: vec![
                TreeNode::Internal { feature: 0, threshold: 0.5, default_left: true, left: 1, right: 2, gain: 10.0 },
                TreeNode::Internal { feature: 1, threshold: 0.5, default_left: true, left: 3, right: 4, gain: 2.0 },
                TreeNode::Leaf { value: 0.1 },
                TreeNode::Leaf { value: 0.2 },
                TreeNode::Leaf { value: 0.3 },
            ],
        };
        // Tree B: splits on f0 (gain 4).
        let b = Tree {
            nodes: vec![
                TreeNode::Internal { feature: 0, threshold: 0.7, default_left: true, left: 1, right: 2, gain: 4.0 },
                TreeNode::Leaf { value: -0.1 },
                TreeNode::Leaf { value: 0.1 },
            ],
        };
        vec![a, b]
    }

    #[test]
    fn total_gain_sums() {
        let imp = FeatureImportance::from_trees(&two_trees(), 3, ImportanceKind::TotalGain);
        assert_eq!(imp.scores, vec![14.0, 2.0, 0.0]);
    }

    #[test]
    fn average_gain_divides_by_count() {
        let imp = FeatureImportance::from_trees(&two_trees(), 3, ImportanceKind::AverageGain);
        assert_eq!(imp.scores, vec![7.0, 2.0, 0.0]);
    }

    #[test]
    fn split_count_counts() {
        let imp = FeatureImportance::from_trees(&two_trees(), 3, ImportanceKind::SplitCount);
        assert_eq!(imp.scores, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn ranking_descends_with_stable_ties() {
        let imp = FeatureImportance {
            scores: vec![1.0, 5.0, 5.0, 0.0],
        };
        assert_eq!(imp.ranking(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn used_features_excludes_unused() {
        let imp = FeatureImportance::from_trees(&two_trees(), 3, ImportanceKind::TotalGain);
        assert_eq!(imp.used_features(), vec![0, 1]);
    }

    #[test]
    fn empty_ensemble_is_all_zero() {
        let imp = FeatureImportance::from_trees(&[], 2, ImportanceKind::AverageGain);
        assert_eq!(imp.scores, vec![0.0, 0.0]);
        assert!(imp.used_features().is_empty());
    }
}
