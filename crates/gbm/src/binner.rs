//! Feature quantization for histogram split finding.
//!
//! Each feature column is mapped once, up front, to small integer bin
//! indices (`u16`) via equal-frequency quantile cuts — the "block" structure
//! the XGBoost paper describes, which both bounds split-search cost per node
//! and gives cache-friendly access. With `max_bins` at least the number of
//! distinct values, the quantization is lossless and split finding is exact
//! greedy.
//!
//! # Incremental binning and the cross-iteration cache
//!
//! SAFE retrains a GBM every iteration on a matrix that is mostly *unchanged*:
//! survivors of the previous selection keep their exact values (selection
//! copies columns, it never rewrites them), and only the freshly generated
//! candidates X̃ are new. [`BinnedDataset`] therefore exposes an incremental
//! surface — [`BinnedDataset::fit`] for a whole dataset,
//! [`BinnedDataset::extend_with`] to append further columns — and a
//! [`BinCache`] that keys finished `(mapper, bin column)` pairs by **column
//! provenance** (the column name: generated names encode operator + parents,
//! names are unique within a dataset, and a name's values are immutable
//! within a run). A cache hit hands back shared [`Arc`]s, so re-binning a
//! surviving column costs a map lookup instead of an `O(n_rows)` quantile
//! fit — and is *bit-identical* to refitting, because quantization is a
//! deterministic function of the (unchanged) values.
//!
//! The cache is guarded by row count: entries are keyed by `(name,
//! max_bins)` and the whole cache self-invalidates when a fit arrives with a
//! different `n_rows` (a different dataset, not a different iteration).
//! Fields of [`BinnedDataset`] are module-private so these invariants cannot
//! be bypassed.

use std::collections::HashMap;
use std::sync::Arc;

use safe_data::binning::{BinEdges, BinStrategy};
use safe_data::column::{ColumnRead, ColumnView};
use safe_data::dataset::Dataset;
use safe_stats::par::{par_map, Parallelism};

use crate::error::GbmError;

/// Per-feature mapping between raw values and bin indices.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// Interior cut points; bin `b` covers `(cuts[b-1], cuts[b]]`.
    edges: BinEdges,
    /// Number of bins for finite values.
    n_value_bins: usize,
}

impl BinMapper {
    /// Fit equal-frequency cuts on a raw column.
    pub fn fit(values: &[f64], max_bins: usize) -> BinMapper {
        // Reserve one index for the missing bin: quantize finite values into
        // at most max_bins - 1 bins. The bin count is clamped to >= 1, so the
        // only possible fit error (zero bins) is unreachable; fall back to a
        // single unsplittable bin rather than panic.
        let edges = BinEdges::fit(values, max_bins.saturating_sub(1).max(1), BinStrategy::EqualFrequency)
            .unwrap_or_else(|_| BinEdges::from_cuts(Vec::new()));
        let n_value_bins = edges.n_value_bins();
        BinMapper { edges, n_value_bins }
    }

    /// Number of bins for finite values; the missing bin is always
    /// `n_value_bins()` (reserved even when the training column had no
    /// missing values, so inference-time NaNs have somewhere to go).
    pub fn n_value_bins(&self) -> usize {
        self.n_value_bins
    }

    /// Total bins including the trailing missing bin.
    pub fn n_bins(&self) -> usize {
        self.n_value_bins + 1
    }

    /// Bin index of the missing value.
    pub fn missing_bin(&self) -> u16 {
        self.n_value_bins as u16
    }

    /// Quantize one value.
    pub fn bin(&self, v: f64) -> u16 {
        if v.is_finite() {
            self.edges.bin_of(v) as u16
        } else {
            self.missing_bin()
        }
    }

    /// Raw-value threshold of a split at bin `b` ("go left iff value ≤
    /// threshold"). Only bins `0..n_value_bins-1` are valid split points.
    pub fn threshold(&self, b: u16) -> f64 {
        self.edges.cuts()[b as usize]
    }

    /// Number of usable split positions.
    pub fn n_split_candidates(&self) -> usize {
        self.edges.cuts().len()
    }
}

/// One finished column of a [`BinnedDataset`]: the fitted mapper plus the
/// quantized `u16` column, shareable between the cache and any number of
/// binned datasets.
#[derive(Debug, Clone)]
struct BinnedColumn {
    mapper: Arc<BinMapper>,
    bins: Arc<Vec<u16>>,
}

fn quantize(values: &[f64], max_bins: usize) -> BinnedColumn {
    let mapper = BinMapper::fit(values, max_bins);
    let bins = values.iter().map(|&v| mapper.bin(v)).collect();
    BinnedColumn { mapper: Arc::new(mapper), bins: Arc::new(bins) }
}

/// Cross-iteration cache of quantized columns, keyed by column provenance.
///
/// The key is `(column name, max_bins)`. Within one SAFE run a column name
/// is a stable identity: generated names encode the operator and parent
/// names, [`Dataset`] rejects duplicate names, and selection copies column
/// values verbatim — so equal name ⇒ equal values ⇒ the cached quantization
/// is exactly what a fresh fit would produce. The cache self-invalidates
/// (drops every entry) when asked to bin a dataset with a different row
/// count, which is the one observable way "same name, different column" can
/// happen across runs.
#[derive(Debug, Default)]
pub struct BinCache {
    entries: HashMap<(String, usize), BinnedColumn>,
    n_rows: Option<usize>,
    hits: u64,
    misses: u64,
}

impl BinCache {
    /// An empty cache.
    pub fn new() -> BinCache {
        BinCache::default()
    }

    /// Cumulative cache hits (columns reused instead of re-binned).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative cache misses (columns quantized fresh).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no columns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cached entry keys `(column name, max_bins)`, sorted. Provenance
    /// metadata for the `SAFECKPT` checkpoint — the keys say which columns
    /// a resumed run will find warm, without persisting the binned values
    /// themselves (they are rebuilt bit-identically from the data).
    pub fn keys(&self) -> Vec<(String, usize)> {
        let mut keys: Vec<(String, usize)> =
            self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Drop every entry (counters are kept — they describe the run, not the
    /// current contents).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.n_rows = None;
    }

    /// Guard an incoming fit: a row-count change means a different dataset,
    /// so every cached column is stale.
    fn guard_rows(&mut self, n_rows: usize) {
        if self.n_rows != Some(n_rows) {
            if self.n_rows.is_some() {
                self.invalidate();
            }
            self.n_rows = Some(n_rows);
        }
    }
}

/// A dataset quantized for training: column-major `u16` bin indices plus the
/// per-feature mappers. Construct with [`BinnedDataset::fit`] (optionally
/// through a [`BinCache`]) and grow with [`BinnedDataset::extend_with`];
/// fields are private so the cache-sharing and shape invariants hold by
/// construction.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    columns: Vec<BinnedColumn>,
    n_rows: usize,
    max_bins: usize,
}

impl BinnedDataset {
    /// Quantize every feature of a dataset. Mapper fitting and column
    /// quantization run across up to `par.resolve()` scoped threads;
    /// per-feature results are merged in column order, so the matrix is
    /// identical for any thread count.
    pub fn fit(ds: &Dataset, max_bins: usize, par: Parallelism) -> BinnedDataset {
        let mut out = BinnedDataset {
            columns: Vec::new(),
            n_rows: ds.n_rows(),
            max_bins,
        };
        out.extend_columns(ds, par, None);
        out
    }

    /// [`BinnedDataset::fit`] through a cross-iteration cache: columns whose
    /// `(name, max_bins)` key is cached are shared (no work); the rest are
    /// quantized fresh (in parallel) and inserted. Bit-identical to an
    /// uncached [`BinnedDataset::fit`] of the same dataset.
    pub fn fit_cached(
        ds: &Dataset,
        max_bins: usize,
        par: Parallelism,
        cache: &mut BinCache,
    ) -> BinnedDataset {
        cache.guard_rows(ds.n_rows());
        let mut out = BinnedDataset {
            columns: Vec::new(),
            n_rows: ds.n_rows(),
            max_bins,
        };
        out.extend_columns(ds, par, Some(cache));
        out
    }

    /// Append every column of `ds` (same rows, new features) to this binned
    /// dataset — the incremental path for SAFE's per-iteration candidates
    /// X̃, which re-bins **only** the appended columns. Equals a fresh
    /// [`BinnedDataset::fit`] of the concatenated matrix.
    pub fn extend_with(&mut self, ds: &Dataset, par: Parallelism) -> Result<(), GbmError> {
        if ds.n_rows() != self.n_rows {
            return Err(GbmError::Config(format!(
                "extend_with row mismatch: binned dataset has {} rows, appended columns have {}",
                self.n_rows,
                ds.n_rows()
            )));
        }
        self.extend_columns(ds, par, None);
        Ok(())
    }

    /// Shared tail of `fit`/`fit_cached`/`extend_with`: quantize (or look
    /// up) each column of `ds` and append in column order.
    fn extend_columns(&mut self, ds: &Dataset, par: Parallelism, cache: Option<&mut BinCache>) {
        // Quantization sorts a copy of the column, so each worker
        // materializes its column through the view API: zero-copy when
        // resident, a per-worker scratch gather when chunked/spilled — at
        // most one f64 column per thread is resident at a time.
        let views: Vec<ColumnView<'_>> = ds.column_views().collect();
        let quantize_col = |f: usize| {
            let mut scratch = Vec::new();
            let col = match views[f].materialize(&mut scratch) {
                Ok(c) => c,
                Err(e) => panic!("column read failed during binning: {e}"),
            };
            quantize(col, self.max_bins)
        };
        match cache {
            None => {
                let fitted = par_map(par, views.len(), quantize_col);
                self.columns.extend(fitted);
            }
            Some(cache) => {
                let names = ds.feature_names();
                // Resolve hits serially (map lookups), quantize the misses in
                // parallel, then merge back in column order.
                let mut resolved: Vec<Option<BinnedColumn>> = Vec::with_capacity(views.len());
                let mut miss_idx: Vec<usize> = Vec::new();
                for (f, name) in names.iter().enumerate() {
                    match cache.entries.get(&(name.to_string(), self.max_bins)) {
                        Some(hit) => {
                            cache.hits += 1;
                            resolved.push(Some(hit.clone()));
                        }
                        None => {
                            miss_idx.push(f);
                            resolved.push(None);
                        }
                    }
                }
                let fitted = par_map(par, miss_idx.len(), |i| quantize_col(miss_idx[i]));
                for (&f, col) in miss_idx.iter().zip(fitted) {
                    cache.misses += 1;
                    cache
                        .entries
                        .insert((names[f].to_string(), self.max_bins), col.clone());
                    resolved[f] = Some(col);
                }
                for (f, col) in resolved.into_iter().enumerate() {
                    self.columns.push(match col {
                        Some(col) => col,
                        // Unreachable: every index is a hit or in miss_idx.
                        None => quantize_col(f),
                    });
                }
            }
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Quantization budget the columns were fitted with.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// The `u16` bin column of feature `f` (`bins(f)[row]` = bin index).
    pub fn bins(&self, f: usize) -> &[u16] {
        &self.columns[f].bins
    }

    /// The fitted mapper of feature `f`.
    pub fn mapper(&self, f: usize) -> &BinMapper {
        &self.columns[f].mapper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_data::dataset::Dataset;

    #[test]
    fn lossless_when_bins_exceed_distinct_values() {
        let values = vec![3.0, 1.0, 2.0, 1.0, 3.0, 2.0];
        let m = BinMapper::fit(&values, 64);
        assert_eq!(m.n_value_bins(), 3);
        // Distinct values land in distinct bins, order preserved.
        assert!(m.bin(1.0) < m.bin(2.0));
        assert!(m.bin(2.0) < m.bin(3.0));
    }

    #[test]
    fn quantization_is_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let m = BinMapper::fit(&values, 16);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            assert!(m.bin(w[0]) <= m.bin(w[1]));
        }
    }

    #[test]
    fn caps_bin_count() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = BinMapper::fit(&values, 32);
        assert!(m.n_value_bins() <= 31, "one index reserved for missing");
        assert!(m.n_value_bins() >= 16);
    }

    #[test]
    fn missing_goes_to_reserved_bin() {
        let values = vec![1.0, f64::NAN, 2.0];
        let m = BinMapper::fit(&values, 8);
        assert_eq!(m.bin(f64::NAN), m.missing_bin());
        assert!(m.bin(1.5) < m.missing_bin());
    }

    #[test]
    fn threshold_separates_bins() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = BinMapper::fit(&values, 10);
        for b in 0..m.n_split_candidates() as u16 {
            let t = m.threshold(b);
            // Everything binned <= b is <= t; everything binned > b is > t.
            for &v in &values {
                if m.bin(v) <= b {
                    assert!(v <= t, "v={v} bin={} t={t}", m.bin(v));
                } else {
                    assert!(v > t, "v={v} bin={} t={t}", m.bin(v));
                }
            }
        }
    }

    fn two_col_dataset() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![9.0, 8.0, 7.0]],
            None,
        )
        .unwrap()
    }

    #[test]
    fn binned_dataset_shape() {
        let bm = BinnedDataset::fit(&two_col_dataset(), 16, Parallelism::auto());
        assert_eq!(bm.n_features(), 2);
        assert_eq!(bm.n_rows(), 3);
        assert_eq!(bm.bins(0).len(), 3);
        assert_eq!(bm.max_bins(), 16);
    }

    #[test]
    fn constant_column_has_no_split_candidates() {
        let m = BinMapper::fit(&[5.0; 20], 8);
        assert_eq!(m.n_split_candidates(), 0);
        assert_eq!(m.n_value_bins(), 1);
    }

    fn assert_binned_eq(a: &BinnedDataset, b: &BinnedDataset) {
        assert_eq!(a.n_features(), b.n_features());
        assert_eq!(a.n_rows(), b.n_rows());
        for f in 0..a.n_features() {
            assert_eq!(a.bins(f), b.bins(f), "bin column {f} differs");
            assert_eq!(
                a.mapper(f).n_value_bins(),
                b.mapper(f).n_value_bins(),
                "mapper {f} differs"
            );
            for s in 0..a.mapper(f).n_split_candidates() as u16 {
                assert_eq!(
                    a.mapper(f).threshold(s).to_bits(),
                    b.mapper(f).threshold(s).to_bits(),
                    "threshold {s} of feature {f} differs"
                );
            }
        }
    }

    #[test]
    fn extend_with_equals_fresh_fit_of_concatenation() {
        let base = two_col_dataset();
        let extra = Dataset::from_columns(
            vec!["c".into()],
            vec![vec![0.5, f64::NAN, 2.5]],
            None,
        )
        .unwrap();
        let mut incremental = BinnedDataset::fit(&base, 16, Parallelism::auto());
        incremental.extend_with(&extra, Parallelism::auto()).unwrap();

        let concat = Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![1.0, 2.0, 3.0], vec![9.0, 8.0, 7.0], vec![0.5, f64::NAN, 2.5]],
            None,
        )
        .unwrap();
        let fresh = BinnedDataset::fit(&concat, 16, Parallelism::auto());
        assert_binned_eq(&incremental, &fresh);
    }

    #[test]
    fn extend_with_rejects_row_mismatch() {
        let mut bm = BinnedDataset::fit(&two_col_dataset(), 16, Parallelism::auto());
        let wrong = Dataset::from_columns(vec!["c".into()], vec![vec![1.0, 2.0]], None).unwrap();
        assert!(bm.extend_with(&wrong, Parallelism::auto()).is_err());
    }

    #[test]
    fn cache_hits_are_bit_identical_to_cold_fits() {
        let ds = two_col_dataset();
        let mut cache = BinCache::new();
        let first = BinnedDataset::fit_cached(&ds, 16, Parallelism::auto(), &mut cache);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        let second = BinnedDataset::fit_cached(&ds, 16, Parallelism::auto(), &mut cache);
        assert_eq!(cache.hits(), 2, "second fit must be all hits");
        let cold = BinnedDataset::fit(&ds, 16, Parallelism::auto());
        assert_binned_eq(&first, &cold);
        assert_binned_eq(&second, &cold);
    }

    #[test]
    fn cache_keys_by_max_bins() {
        let ds = two_col_dataset();
        let mut cache = BinCache::new();
        let _ = BinnedDataset::fit_cached(&ds, 16, Parallelism::auto(), &mut cache);
        let _ = BinnedDataset::fit_cached(&ds, 8, Parallelism::auto(), &mut cache);
        assert_eq!(cache.hits(), 0, "different max_bins must not hit");
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cache_invalidates_on_row_count_change() {
        let ds = two_col_dataset();
        let mut cache = BinCache::new();
        let _ = BinnedDataset::fit_cached(&ds, 16, Parallelism::auto(), &mut cache);
        assert_eq!(cache.len(), 2);
        let other = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            None,
        )
        .unwrap();
        let _ = BinnedDataset::fit_cached(&other, 16, Parallelism::auto(), &mut cache);
        assert_eq!(cache.len(), 2, "stale 3-row entries dropped, 2-row entries in");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn cached_subset_selection_reuses_columns() {
        // Selection drops/reorders columns but keeps values: binning the
        // subset through the cache must be pure hits.
        let ds = Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![1.0, 2.0, 3.0], vec![9.0, 8.0, 7.0], vec![4.0, 5.0, 6.0]],
            None,
        )
        .unwrap();
        let mut cache = BinCache::new();
        let _ = BinnedDataset::fit_cached(&ds, 16, Parallelism::auto(), &mut cache);
        let subset = ds.select_columns(&[2, 0]).unwrap();
        let binned = BinnedDataset::fit_cached(&subset, 16, Parallelism::auto(), &mut cache);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 3);
        let cold = BinnedDataset::fit(&subset, 16, Parallelism::auto());
        assert_binned_eq(&binned, &cold);
    }
}
