//! Feature quantization for histogram split finding.
//!
//! Each feature column is mapped once, up front, to small integer bin
//! indices (`u16`) via equal-frequency quantile cuts — the "block" structure
//! the XGBoost paper describes, which both bounds split-search cost per node
//! and gives cache-friendly access. With `max_bins` at least the number of
//! distinct values, the quantization is lossless and split finding is exact
//! greedy.

use safe_data::binning::{BinEdges, BinStrategy};
use safe_data::dataset::Dataset;

/// Per-feature mapping between raw values and bin indices.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// Interior cut points; bin `b` covers `(cuts[b-1], cuts[b]]`.
    edges: BinEdges,
    /// Number of bins for finite values.
    n_value_bins: usize,
}

impl BinMapper {
    /// Fit equal-frequency cuts on a raw column.
    pub fn fit(values: &[f64], max_bins: usize) -> BinMapper {
        // Reserve one index for the missing bin: quantize finite values into
        // at most max_bins - 1 bins. The bin count is clamped to >= 1, so the
        // only possible fit error (zero bins) is unreachable; fall back to a
        // single unsplittable bin rather than panic.
        let edges = BinEdges::fit(values, max_bins.saturating_sub(1).max(1), BinStrategy::EqualFrequency)
            .unwrap_or_else(|_| BinEdges::from_cuts(Vec::new()));
        let n_value_bins = edges.n_value_bins();
        BinMapper { edges, n_value_bins }
    }

    /// Number of bins for finite values; the missing bin is always
    /// `n_value_bins()` (reserved even when the training column had no
    /// missing values, so inference-time NaNs have somewhere to go).
    pub fn n_value_bins(&self) -> usize {
        self.n_value_bins
    }

    /// Total bins including the trailing missing bin.
    pub fn n_bins(&self) -> usize {
        self.n_value_bins + 1
    }

    /// Bin index of the missing value.
    pub fn missing_bin(&self) -> u16 {
        self.n_value_bins as u16
    }

    /// Quantize one value.
    pub fn bin(&self, v: f64) -> u16 {
        if v.is_finite() {
            self.edges.bin_of(v) as u16
        } else {
            self.missing_bin()
        }
    }

    /// Raw-value threshold of a split at bin `b` ("go left iff value ≤
    /// threshold"). Only bins `0..n_value_bins-1` are valid split points.
    pub fn threshold(&self, b: u16) -> f64 {
        self.edges.cuts()[b as usize]
    }

    /// Number of usable split positions.
    pub fn n_split_candidates(&self) -> usize {
        self.edges.cuts().len()
    }
}

/// A dataset quantized for training: column-major `u16` bin indices plus the
/// per-feature mappers.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// `bins[f][row]` = bin index of feature `f` at `row`.
    pub bins: Vec<Vec<u16>>,
    /// Per-feature mappers (same order as `bins`).
    pub mappers: Vec<BinMapper>,
    /// Number of rows.
    pub n_rows: usize,
}

impl BinnedMatrix {
    /// Quantize every feature of a dataset with auto-detected parallelism.
    pub fn from_dataset(ds: &Dataset, max_bins: usize) -> BinnedMatrix {
        Self::from_dataset_par(ds, max_bins, safe_stats::par::Parallelism::auto())
    }

    /// Quantize every feature of a dataset. Mapper fitting and column
    /// quantization run across up to `par.resolve()` scoped threads;
    /// per-feature results are merged in column order, so the matrix is
    /// identical for any thread count.
    pub fn from_dataset_par(
        ds: &Dataset,
        max_bins: usize,
        par: safe_stats::par::Parallelism,
    ) -> BinnedMatrix {
        let n_cols = ds.n_cols();
        let cols: Vec<&[f64]> = ds.columns().collect();
        let per_feature: Vec<(BinMapper, Vec<u16>)> =
            safe_stats::par::par_map(par, n_cols, |f| {
                let col = cols[f];
                let mapper = BinMapper::fit(col, max_bins);
                let binned = col.iter().map(|&v| mapper.bin(v)).collect();
                (mapper, binned)
            });
        let mut mappers = Vec::with_capacity(n_cols);
        let mut bins = Vec::with_capacity(n_cols);
        for (m, b) in per_feature {
            mappers.push(m);
            bins.push(b);
        }
        BinnedMatrix {
            bins,
            mappers,
            n_rows: ds.n_rows(),
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.bins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_data::dataset::Dataset;

    #[test]
    fn lossless_when_bins_exceed_distinct_values() {
        let values = vec![3.0, 1.0, 2.0, 1.0, 3.0, 2.0];
        let m = BinMapper::fit(&values, 64);
        assert_eq!(m.n_value_bins(), 3);
        // Distinct values land in distinct bins, order preserved.
        assert!(m.bin(1.0) < m.bin(2.0));
        assert!(m.bin(2.0) < m.bin(3.0));
    }

    #[test]
    fn quantization_is_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let m = BinMapper::fit(&values, 16);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            assert!(m.bin(w[0]) <= m.bin(w[1]));
        }
    }

    #[test]
    fn caps_bin_count() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = BinMapper::fit(&values, 32);
        assert!(m.n_value_bins() <= 31, "one index reserved for missing");
        assert!(m.n_value_bins() >= 16);
    }

    #[test]
    fn missing_goes_to_reserved_bin() {
        let values = vec![1.0, f64::NAN, 2.0];
        let m = BinMapper::fit(&values, 8);
        assert_eq!(m.bin(f64::NAN), m.missing_bin());
        assert!(m.bin(1.5) < m.missing_bin());
    }

    #[test]
    fn threshold_separates_bins() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = BinMapper::fit(&values, 10);
        for b in 0..m.n_split_candidates() as u16 {
            let t = m.threshold(b);
            // Everything binned <= b is <= t; everything binned > b is > t.
            for &v in &values {
                if m.bin(v) <= b {
                    assert!(v <= t, "v={v} bin={} t={t}", m.bin(v));
                } else {
                    assert!(v > t, "v={v} bin={} t={t}", m.bin(v));
                }
            }
        }
    }

    #[test]
    fn binned_matrix_shape() {
        let ds = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![9.0, 8.0, 7.0]],
            None,
        )
        .unwrap();
        let bm = BinnedMatrix::from_dataset(&ds, 16);
        assert_eq!(bm.n_features(), 2);
        assert_eq!(bm.n_rows, 3);
        assert_eq!(bm.bins[0].len(), 3);
    }

    #[test]
    fn constant_column_has_no_split_candidates() {
        let m = BinMapper::fit(&[5.0; 20], 8);
        assert_eq!(m.n_split_candidates(), 0);
        assert_eq!(m.n_value_bins(), 1);
    }
}
