//! Gradient histograms and best-split search.

/// Accumulated first/second-order statistics of one histogram bin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistBin {
    /// Sum of gradients of rows in this bin.
    pub grad: f64,
    /// Sum of hessians of rows in this bin.
    pub hess: f64,
    /// Row count.
    pub count: u32,
}

/// Build the gradient histogram of one feature over the rows of a node.
pub fn build_histogram(
    feature_bins: &[u16],
    rows: &[u32],
    grads: &[f64],
    hesss: &[f64],
    n_bins: usize,
) -> Vec<HistBin> {
    let mut hist = vec![HistBin::default(); n_bins];
    for &r in rows {
        let r = r as usize;
        let b = feature_bins[r] as usize;
        let cell = &mut hist[b];
        cell.grad += grads[r];
        cell.hess += hesss[r];
        cell.count += 1;
    }
    hist
}

/// Leaf objective term `G² / (H + λ)`.
#[inline]
fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Optimal leaf weight `−G / (H + λ)`.
#[inline]
pub fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

/// A candidate split of one node on one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitInfo {
    /// Feature index.
    pub feature: usize,
    /// Split bin: rows with `bin ≤ split_bin` go left.
    pub split_bin: u16,
    /// Loss reduction (already γ-penalized).
    pub gain: f64,
    /// Whether the missing bin travels left.
    pub default_left: bool,
}

/// Scan a feature histogram for its best split.
///
/// The last value bin carries the missing-value mass separately
/// (`missing = hist[n_value_bins]`); each split position is evaluated with
/// the missing mass on either side (sparsity-aware default direction) and
/// the better direction kept.
///
/// `totals` are the node's (G, H, count). Returns `None` when no split
/// clears `gamma`, `min_child_weight`, or non-empty-children constraints.
pub fn best_split_for_feature(
    feature: usize,
    hist: &[HistBin],
    n_value_bins: usize,
    totals: (f64, f64, u32),
    lambda: f64,
    gamma: f64,
    min_child_weight: f64,
) -> Option<SplitInfo> {
    let (g_total, h_total, n_total) = totals;
    let parent_score = score(g_total, h_total, lambda);
    let missing = hist
        .get(n_value_bins)
        .copied()
        .unwrap_or_default();

    let mut best: Option<SplitInfo> = None;
    let mut g_left = 0.0;
    let mut h_left = 0.0;
    let mut n_left: u32 = 0;

    // Split positions: after each value bin except the last.
    for b in 0..n_value_bins.saturating_sub(1) {
        let cell = hist[b];
        g_left += cell.grad;
        h_left += cell.hess;
        n_left += cell.count;

        for default_left in [false, true] {
            let (gl, hl, nl) = if default_left {
                (g_left + missing.grad, h_left + missing.hess, n_left + missing.count)
            } else {
                (g_left, h_left, n_left)
            };
            let gr = g_total - gl;
            let hr = h_total - hl;
            let nr = n_total - nl;
            if nl == 0 || nr == 0 {
                continue;
            }
            if hl < min_child_weight || hr < min_child_weight {
                continue;
            }
            let gain = 0.5 * (score(gl, hl, lambda) + score(gr, hr, lambda) - parent_score) - gamma;
            if gain <= 0.0 {
                continue;
            }
            if best.map(|s| gain > s.gain).unwrap_or(true) {
                best = Some(SplitInfo {
                    feature,
                    split_bin: b as u16,
                    gain,
                    default_left,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals_of(hist: &[HistBin]) -> (f64, f64, u32) {
        hist.iter().fold((0.0, 0.0, 0), |(g, h, n), b| {
            (g + b.grad, h + b.hess, n + b.count)
        })
    }

    #[test]
    fn histogram_accumulates() {
        let bins = vec![0u16, 1, 1, 2];
        let rows = vec![0u32, 1, 2, 3];
        let grads = vec![1.0, 2.0, 3.0, 4.0];
        let hesss = vec![0.1, 0.2, 0.3, 0.4];
        let h = build_histogram(&bins, &rows, &grads, &hesss, 4);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[1].count, 2);
        assert!((h[1].grad - 5.0).abs() < 1e-15);
        assert!((h[1].hess - 0.5).abs() < 1e-15);
        assert_eq!(h[3].count, 0);
    }

    #[test]
    fn histogram_respects_row_subset() {
        let bins = vec![0u16, 0, 1, 1];
        let rows = vec![0u32, 2];
        let grads = vec![1.0; 4];
        let hesss = vec![1.0; 4];
        let h = build_histogram(&bins, &rows, &grads, &hesss, 3);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[1].count, 1);
    }

    #[test]
    fn finds_obvious_split() {
        // Bin 0 pure-negative gradient, bin 1 pure-positive.
        let hist = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin::default(), // missing bin, empty
        ];
        let split =
            best_split_for_feature(3, &hist, 2, totals_of(&hist), 1.0, 0.0, 0.0).unwrap();
        assert_eq!(split.feature, 3);
        assert_eq!(split.split_bin, 0);
        assert!(split.gain > 0.0);
    }

    #[test]
    fn no_split_on_uniform_gradient() {
        // Same gradient density everywhere: zero gain.
        let hist = vec![
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin::default(),
        ];
        assert!(
            best_split_for_feature(0, &hist, 3, totals_of(&hist), 1.0, 0.0, 0.0).is_none()
        );
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let hist = vec![
            HistBin { grad: -1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin::default(),
        ];
        let t = totals_of(&hist);
        let free = best_split_for_feature(0, &hist, 2, t, 1.0, 0.0, 0.0).unwrap();
        assert!(best_split_for_feature(0, &hist, 2, t, 1.0, free.gain + 1.0, 0.0).is_none());
    }

    #[test]
    fn min_child_weight_blocks_thin_children() {
        let hist = vec![
            HistBin { grad: -1.0, hess: 0.1, count: 1 },
            HistBin { grad: 5.0, hess: 10.0, count: 50 },
            HistBin::default(),
        ];
        let t = totals_of(&hist);
        assert!(best_split_for_feature(0, &hist, 2, t, 1.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn missing_mass_chooses_helpful_direction() {
        // Missing rows have strongly positive gradients, matching bin 1:
        // sending them right must win.
        let hist = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin { grad: 4.0, hess: 1.0, count: 5 }, // missing bin
        ];
        let split =
            best_split_for_feature(0, &hist, 2, totals_of(&hist), 1.0, 0.0, 0.0).unwrap();
        assert!(!split.default_left);

        // Flip: missing gradients look like the left child.
        let hist2 = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin { grad: -4.0, hess: 1.0, count: 5 },
        ];
        let split2 =
            best_split_for_feature(0, &hist2, 2, totals_of(&hist2), 1.0, 0.0, 0.0).unwrap();
        assert!(split2.default_left);
    }

    #[test]
    fn single_bin_feature_cannot_split() {
        let hist = vec![HistBin { grad: 3.0, hess: 4.0, count: 9 }, HistBin::default()];
        assert!(
            best_split_for_feature(0, &hist, 1, totals_of(&hist), 1.0, 0.0, 0.0).is_none()
        );
    }

    #[test]
    fn leaf_weight_is_newton_step() {
        assert!((leaf_weight(4.0, 3.0, 1.0) + 1.0).abs() < 1e-15);
        assert_eq!(leaf_weight(0.0, 5.0, 1.0), 0.0);
    }
}
