//! Gradient histograms and best-split search.

/// Accumulated first/second-order statistics of one histogram bin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistBin {
    /// Sum of gradients of rows in this bin.
    pub grad: f64,
    /// Sum of hessians of rows in this bin.
    pub hess: f64,
    /// Row count.
    pub count: u32,
}

/// Build the gradient histogram of one feature over the rows of a node.
pub fn build_histogram(
    feature_bins: &[u16],
    rows: &[u32],
    grads: &[f64],
    hesss: &[f64],
    n_bins: usize,
) -> Vec<HistBin> {
    let mut hist = vec![HistBin::default(); n_bins];
    for &r in rows {
        let r = r as usize;
        let b = feature_bins[r] as usize;
        let cell = &mut hist[b];
        cell.grad += grads[r];
        cell.hess += hesss[r];
        cell.count += 1;
    }
    hist
}

/// Derive a sibling histogram by subtraction: `parent − child`, per bin, in
/// place on the parent's storage (which becomes the sibling's histogram).
///
/// This is the histogram-subtraction trick: a node's histogram is exactly
/// the per-bin sum of its children's, so after building only the *smaller*
/// child the larger one costs `O(n_bins)` instead of `O(n_rows)`. The
/// subtraction result is used consistently on both the cached and cold
/// training paths, so differential bit-identity is unaffected by the
/// floating-point difference between `parent − child` and direct
/// accumulation.
pub fn subtract_sibling(parent: &mut [HistBin], child: &[HistBin]) {
    debug_assert_eq!(parent.len(), child.len());
    for (p, c) in parent.iter_mut().zip(child) {
        p.grad -= c.grad;
        p.hess -= c.hess;
        p.count -= c.count;
    }
}

/// Leaf objective term `G² / (H + λ)`.
#[inline]
fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Optimal leaf weight `−G / (H + λ)`.
#[inline]
pub fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

/// A candidate split of one node on one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitInfo {
    /// Feature index.
    pub feature: usize,
    /// Split bin: rows with `bin ≤ split_bin` go left.
    pub split_bin: u16,
    /// Loss reduction (already γ-penalized).
    pub gain: f64,
    /// Whether the missing bin travels left.
    pub default_left: bool,
}

/// Scan a feature histogram for its best split.
///
/// The last value bin carries the missing-value mass separately
/// (`missing = hist[n_value_bins]`); each split position is evaluated with
/// the missing mass on either side (sparsity-aware default direction) and
/// the better direction kept.
///
/// `totals` are the node's (G, H, count). Returns `None` when no split
/// clears `gamma`, `min_child_weight`, or non-empty-children constraints.
pub fn best_split_for_feature(
    feature: usize,
    hist: &[HistBin],
    n_value_bins: usize,
    totals: (f64, f64, u32),
    lambda: f64,
    gamma: f64,
    min_child_weight: f64,
) -> Option<SplitInfo> {
    let (g_total, h_total, n_total) = totals;
    let parent_score = score(g_total, h_total, lambda);
    let missing = hist
        .get(n_value_bins)
        .copied()
        .unwrap_or_default();

    let mut best: Option<SplitInfo> = None;
    let mut g_left = 0.0;
    let mut h_left = 0.0;
    let mut n_left: u32 = 0;

    // Split positions: after each value bin except the last.
    for b in 0..n_value_bins.saturating_sub(1) {
        let cell = hist[b];
        g_left += cell.grad;
        h_left += cell.hess;
        n_left += cell.count;

        // With no missing rows both default directions carry identical
        // child statistics, and the strict `>` below would keep the first
        // (`false`) candidate anyway — so scanning `true` is pure waste.
        // An empty missing bin has exactly zero grad/hess (it is either a
        // sum over zero rows or a subtraction of two bitwise-equal sums),
        // so skipping it is bit-identical, not just approximately equal.
        let directions: &[bool] = if missing.count == 0 { &[false] } else { &[false, true] };
        for &default_left in directions {
            let (gl, hl, nl) = if default_left {
                (g_left + missing.grad, h_left + missing.hess, n_left + missing.count)
            } else {
                (g_left, h_left, n_left)
            };
            let gr = g_total - gl;
            let hr = h_total - hl;
            let nr = n_total - nl;
            if nl == 0 || nr == 0 {
                continue;
            }
            if hl < min_child_weight || hr < min_child_weight {
                continue;
            }
            let gain = 0.5 * (score(gl, hl, lambda) + score(gr, hr, lambda) - parent_score) - gamma;
            if gain <= 0.0 {
                continue;
            }
            if best.map(|s| gain > s.gain).unwrap_or(true) {
                best = Some(SplitInfo {
                    feature,
                    split_bin: b as u16,
                    gain,
                    default_left,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals_of(hist: &[HistBin]) -> (f64, f64, u32) {
        hist.iter().fold((0.0, 0.0, 0), |(g, h, n), b| {
            (g + b.grad, h + b.hess, n + b.count)
        })
    }

    #[test]
    fn histogram_accumulates() {
        let bins = vec![0u16, 1, 1, 2];
        let rows = vec![0u32, 1, 2, 3];
        let grads = vec![1.0, 2.0, 3.0, 4.0];
        let hesss = vec![0.1, 0.2, 0.3, 0.4];
        let h = build_histogram(&bins, &rows, &grads, &hesss, 4);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[1].count, 2);
        assert!((h[1].grad - 5.0).abs() < 1e-15);
        assert!((h[1].hess - 0.5).abs() < 1e-15);
        assert_eq!(h[3].count, 0);
    }

    #[test]
    fn histogram_respects_row_subset() {
        let bins = vec![0u16, 0, 1, 1];
        let rows = vec![0u32, 2];
        let grads = vec![1.0; 4];
        let hesss = vec![1.0; 4];
        let h = build_histogram(&bins, &rows, &grads, &hesss, 3);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[1].count, 1);
    }

    #[test]
    fn finds_obvious_split() {
        // Bin 0 pure-negative gradient, bin 1 pure-positive.
        let hist = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin::default(), // missing bin, empty
        ];
        let split =
            best_split_for_feature(3, &hist, 2, totals_of(&hist), 1.0, 0.0, 0.0).unwrap();
        assert_eq!(split.feature, 3);
        assert_eq!(split.split_bin, 0);
        assert!(split.gain > 0.0);
    }

    #[test]
    fn no_split_on_uniform_gradient() {
        // Same gradient density everywhere: zero gain.
        let hist = vec![
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin::default(),
        ];
        assert!(
            best_split_for_feature(0, &hist, 3, totals_of(&hist), 1.0, 0.0, 0.0).is_none()
        );
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let hist = vec![
            HistBin { grad: -1.0, hess: 1.0, count: 5 },
            HistBin { grad: 1.0, hess: 1.0, count: 5 },
            HistBin::default(),
        ];
        let t = totals_of(&hist);
        let free = best_split_for_feature(0, &hist, 2, t, 1.0, 0.0, 0.0).unwrap();
        assert!(best_split_for_feature(0, &hist, 2, t, 1.0, free.gain + 1.0, 0.0).is_none());
    }

    #[test]
    fn min_child_weight_blocks_thin_children() {
        let hist = vec![
            HistBin { grad: -1.0, hess: 0.1, count: 1 },
            HistBin { grad: 5.0, hess: 10.0, count: 50 },
            HistBin::default(),
        ];
        let t = totals_of(&hist);
        assert!(best_split_for_feature(0, &hist, 2, t, 1.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn missing_mass_chooses_helpful_direction() {
        // Missing rows have strongly positive gradients, matching bin 1:
        // sending them right must win.
        let hist = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin { grad: 4.0, hess: 1.0, count: 5 }, // missing bin
        ];
        let split =
            best_split_for_feature(0, &hist, 2, totals_of(&hist), 1.0, 0.0, 0.0).unwrap();
        assert!(!split.default_left);

        // Flip: missing gradients look like the left child.
        let hist2 = vec![
            HistBin { grad: -5.0, hess: 2.0, count: 10 },
            HistBin { grad: 5.0, hess: 2.0, count: 10 },
            HistBin { grad: -4.0, hess: 1.0, count: 5 },
        ];
        let split2 =
            best_split_for_feature(0, &hist2, 2, totals_of(&hist2), 1.0, 0.0, 0.0).unwrap();
        assert!(split2.default_left);
    }

    #[test]
    fn single_bin_feature_cannot_split() {
        let hist = vec![HistBin { grad: 3.0, hess: 4.0, count: 9 }, HistBin::default()];
        assert!(
            best_split_for_feature(0, &hist, 1, totals_of(&hist), 1.0, 0.0, 0.0).is_none()
        );
    }

    #[test]
    fn leaf_weight_is_newton_step() {
        assert!((leaf_weight(4.0, 3.0, 1.0) + 1.0).abs() < 1e-15);
        assert_eq!(leaf_weight(0.0, 5.0, 1.0), 0.0);
    }

    /// Reference scan that always evaluates both default directions — the
    /// pre-fix behavior. With an empty missing bin the fixed fast path must
    /// pin the exact same split (bin, direction, gain bits).
    fn reference_both_directions(
        feature: usize,
        hist: &[HistBin],
        n_value_bins: usize,
        totals: (f64, f64, u32),
        lambda: f64,
        gamma: f64,
        min_child_weight: f64,
    ) -> Option<SplitInfo> {
        let (g_total, h_total, n_total) = totals;
        let parent_score = g_total * g_total / (h_total + lambda);
        let missing = hist.get(n_value_bins).copied().unwrap_or_default();
        let mut best: Option<SplitInfo> = None;
        let (mut g_left, mut h_left, mut n_left) = (0.0, 0.0, 0u32);
        for b in 0..n_value_bins.saturating_sub(1) {
            let cell = hist[b];
            g_left += cell.grad;
            h_left += cell.hess;
            n_left += cell.count;
            for default_left in [false, true] {
                let (gl, hl, nl) = if default_left {
                    (g_left + missing.grad, h_left + missing.hess, n_left + missing.count)
                } else {
                    (g_left, h_left, n_left)
                };
                let (gr, hr, nr) = (g_total - gl, h_total - hl, n_total - nl);
                if nl == 0 || nr == 0 || hl < min_child_weight || hr < min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                    - gamma;
                if gain <= 0.0 {
                    continue;
                }
                if best.map(|s| gain > s.gain).unwrap_or(true) {
                    best = Some(SplitInfo { feature, split_bin: b as u16, gain, default_left });
                }
            }
        }
        best
    }

    /// Regression: skipping the missing-direction rescan when a feature has
    /// no NaNs must pin identical splits to the double-scan it replaced,
    /// across a grid of histogram shapes.
    #[test]
    fn empty_missing_bin_skip_pins_identical_splits() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n_value_bins in [1usize, 2, 3, 8, 17] {
            for trial in 0..50 {
                let mut hist: Vec<HistBin> = (0..n_value_bins)
                    .map(|_| HistBin {
                        grad: next() * 5.0,
                        hess: next().abs() + 0.01,
                        count: 1 + (trial % 7) as u32,
                    })
                    .collect();
                hist.push(HistBin::default()); // empty missing bin
                let t = totals_of(&hist);
                for (lambda, gamma, mcw) in
                    [(1.0, 0.0, 0.0), (0.5, 0.1, 0.0), (1.0, 0.0, 0.5)]
                {
                    let fast = best_split_for_feature(2, &hist, n_value_bins, t, lambda, gamma, mcw);
                    let slow =
                        reference_both_directions(2, &hist, n_value_bins, t, lambda, gamma, mcw);
                    match (fast, slow) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.split_bin, b.split_bin);
                            assert_eq!(a.default_left, b.default_left);
                            assert_eq!(a.gain.to_bits(), b.gain.to_bits());
                        }
                        (a, b) => panic!("fast={a:?} slow={b:?} diverged"),
                    }
                }
            }
        }
    }

    #[test]
    fn subtraction_recovers_sibling_exactly_for_disjoint_rows() {
        // Parent rows = left ∪ right with left ⊂ parent in parent order: the
        // subtracted sibling must equal the directly built one bit-for-bit
        // when every bin's mass moves wholesale (count reaches zero), and to
        // within accumulation error otherwise.
        let bins = vec![0u16, 1, 2, 0, 1, 2, 3, 3];
        let rows: Vec<u32> = (0..8).collect();
        let grads = vec![0.5, -1.25, 2.0, 0.125, -0.75, 1.5, -2.25, 0.0625];
        let hesss = vec![0.25, 0.5, 0.125, 1.0, 0.75, 0.3125, 0.5, 0.25];
        let left: Vec<u32> = vec![0, 3, 6, 7]; // bins 0,0,3,3 — full bins move
        let right: Vec<u32> = vec![1, 2, 4, 5];
        let parent = build_histogram(&bins, &rows, &grads, &hesss, 5);
        let left_h = build_histogram(&bins, &left, &grads, &hesss, 5);
        let right_h = build_histogram(&bins, &right, &grads, &hesss, 5);
        let mut derived = parent.clone();
        subtract_sibling(&mut derived, &left_h);
        for (d, r) in derived.iter().zip(&right_h) {
            assert_eq!(d.count, r.count);
            assert!((d.grad - r.grad).abs() < 1e-12, "{} vs {}", d.grad, r.grad);
            assert!((d.hess - r.hess).abs() < 1e-12);
        }
        // Bins fully drained by the child are exactly zero, not epsilon.
        assert_eq!(derived[0].count, 0);
        assert_eq!(derived[0].grad.to_bits(), 0.0f64.to_bits());
        assert_eq!(derived[3].count, 0);
        assert_eq!(derived[3].grad.to_bits(), 0.0f64.to_bits());
    }
}
