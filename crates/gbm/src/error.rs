//! Typed errors for the boosting layer.

use std::fmt;

use safe_data::error::DataError;

/// Everything that can go wrong while training a [`crate::Gbm`].
#[derive(Debug, Clone, PartialEq)]
pub enum GbmError {
    /// The [`crate::GbmConfig`] failed validation.
    Config(String),
    /// The named dataset (train/validation) has no labels attached.
    NoLabels {
        /// Which dataset: `"training"` or `"validation"`.
        which: &'static str,
    },
    /// The training dataset has no rows or no columns.
    EmptyTraining,
    /// Validation feature count differs from training.
    FeatureMismatch {
        /// Features in the training set.
        train: usize,
        /// Features in the validation set.
        valid: usize,
    },
    /// A data-layer failure (binning, column access).
    Data(DataError),
    /// A serialized model (see [`crate::codec`]) failed to parse.
    Parse {
        /// 1-based line in the text (0 = whole-document check).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A fault-injection point fired (tests only; see the `failpoints`
    /// feature of `safe-data`). Carries the failpoint name.
    Injected(&'static str),
}

impl fmt::Display for GbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbmError::Config(msg) => write!(f, "invalid gbm config: {msg}"),
            GbmError::NoLabels { which } => write!(f, "{which} dataset has no labels"),
            GbmError::EmptyTraining => write!(f, "training dataset is empty"),
            GbmError::FeatureMismatch { train, valid } => {
                write!(f, "validation has {valid} features, train has {train}")
            }
            GbmError::Data(e) => write!(f, "data error during training: {e}"),
            GbmError::Parse { line, message } => {
                write!(f, "model text line {line}: {message}")
            }
            GbmError::Injected(name) => write!(f, "injected fault at '{name}'"),
        }
    }
}

impl std::error::Error for GbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GbmError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for GbmError {
    fn from(e: DataError) -> Self {
        GbmError::Data(e)
    }
}

/// Callers that still speak stringly-typed errors (benches, quick scripts)
/// can keep using `?` after the switch to typed errors.
impl From<GbmError> for String {
    fn from(e: GbmError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(GbmError::NoLabels { which: "training" }
            .to_string()
            .contains("training"));
        assert!(GbmError::FeatureMismatch { train: 3, valid: 5 }
            .to_string()
            .contains('5'));
        let s: String = GbmError::EmptyTraining.into();
        assert!(s.contains("empty"));
    }

    #[test]
    fn data_errors_chain_as_source() {
        use std::error::Error;
        let e = GbmError::Data(DataError::ZeroBins);
        assert!(e.source().is_some());
    }
}
