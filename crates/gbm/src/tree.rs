//! Flat regression-tree structure, prediction, and path extraction.
//!
//! Path extraction implements the notation of Fig. 2: for every parent `l_j`
//! of a leaf, the distinct split features on the chain root→`l_j` form the
//! combination `p_j`, each feature carrying the (possibly multiple) split
//! values `V_i` seen along the chain. SAFE's generation stage consumes
//! exactly these.

use std::collections::BTreeMap;

/// One node of a flat tree arena; index 0 is the root.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Internal decision node: `value ≤ threshold` (or missing with
    /// `default_left`) goes to `left`, otherwise `right`.
    Internal {
        /// Feature column index.
        feature: usize,
        /// Raw-value threshold.
        threshold: f64,
        /// Where missing values go.
        default_left: bool,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
        /// Loss reduction achieved by this split.
        gain: f64,
    },
    /// Terminal node carrying the (already shrunk) weight.
    Leaf {
        /// Leaf output added to the margin.
        value: f64,
    },
}

/// A single regression tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tree {
    /// Node arena; entry 0 is the root. A freshly created tree is a single
    /// zero leaf.
    pub nodes: Vec<TreeNode>,
}

/// One root→leaf-parent path: the unit of SAFE's combination mining.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPath {
    /// Distinct split features, in order of first appearance on the path.
    pub features: Vec<usize>,
    /// All split values seen per feature along the path (the `V_i` sets of
    /// Algorithm 2 — a feature can split more than once on one path).
    pub split_values: BTreeMap<usize, Vec<f64>>,
}

impl Tree {
    /// A stub tree predicting `value` everywhere.
    pub fn leaf(value: f64) -> Tree {
        Tree {
            nodes: vec![TreeNode::Leaf { value }],
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }

    /// Maximum depth (root = depth 0).
    pub fn depth(&self) -> usize {
        fn walk(tree: &Tree, idx: usize) -> usize {
            match &tree.nodes[idx] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Internal { left, right, .. } => {
                    1 + walk(tree, *left).max(walk(tree, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(self, 0)
        }
    }

    /// Margin contribution for one row of raw feature values.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Internal {
                    feature,
                    threshold,
                    default_left,
                    left,
                    right,
                    ..
                } => {
                    let v = row[*feature];
                    let go_left = if v.is_finite() {
                        v <= *threshold
                    } else {
                        *default_left
                    };
                    idx = if go_left { *left } else { *right };
                }
            }
        }
    }

    /// Margin contribution per row, reading from column slices (avoids
    /// materializing row vectors when scoring a whole dataset).
    pub fn predict_into(&self, columns: &[&[f64]], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            let mut idx = 0usize;
            loop {
                match &self.nodes[idx] {
                    TreeNode::Leaf { value } => {
                        *slot += *value;
                        break;
                    }
                    TreeNode::Internal {
                        feature,
                        threshold,
                        default_left,
                        left,
                        right,
                        ..
                    } => {
                        let v = columns[*feature][i];
                        let go_left = if v.is_finite() {
                            v <= *threshold
                        } else {
                            *default_left
                        };
                        idx = if go_left { *left } else { *right };
                    }
                }
            }
        }
    }

    /// Margin contribution per record of a row-major flat batch (`n_cols`
    /// values per record), accumulated into `out`. Scoring a whole batch
    /// through one tree at a time keeps this tree's nodes hot in cache —
    /// the ensemble is typically far larger than L2, so the row-at-a-time
    /// loop that walks every tree per record thrashes where this does not.
    pub fn predict_rows_into(&self, rows: &[f64], n_cols: usize, out: &mut [f64]) {
        for (slot, row) in out.iter_mut().zip(rows.chunks_exact(n_cols)) {
            *slot += self.predict_row(row);
        }
    }

    /// Enumerate root→leaf-parent paths (Fig. 2 semantics). Each internal
    /// node with at least one leaf child contributes one path consisting of
    /// the split features from the root down to *and including* that node.
    pub fn paths(&self) -> Vec<SplitPath> {
        let mut out = Vec::new();
        if self.nodes.is_empty() || matches!(self.nodes[0], TreeNode::Leaf { .. }) {
            return out;
        }
        // DFS carrying the (feature, value) chain of ancestors + self.
        let mut stack: Vec<(usize, Vec<(usize, f64)>)> = vec![(0, Vec::new())];
        while let Some((idx, chain)) = stack.pop() {
            let TreeNode::Internal {
                feature,
                threshold,
                left,
                right,
                ..
            } = &self.nodes[idx]
            else {
                continue;
            };
            let mut chain_here = chain.clone();
            chain_here.push((*feature, *threshold));
            let left_is_leaf = matches!(self.nodes[*left], TreeNode::Leaf { .. });
            let right_is_leaf = matches!(self.nodes[*right], TreeNode::Leaf { .. });
            if left_is_leaf || right_is_leaf {
                out.push(Self::chain_to_path(&chain_here));
            }
            if !left_is_leaf {
                stack.push((*left, chain_here.clone()));
            }
            if !right_is_leaf {
                stack.push((*right, chain_here));
            }
        }
        out
    }

    fn chain_to_path(chain: &[(usize, f64)]) -> SplitPath {
        let mut features = Vec::new();
        let mut split_values: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for &(f, v) in chain {
            if !features.contains(&f) {
                features.push(f);
            }
            let values = split_values.entry(f).or_default();
            if !values.contains(&v) {
                values.push(v);
            }
        }
        SplitPath {
            features,
            split_values,
        }
    }

    /// Iterate `(feature, gain)` over all internal nodes — raw material for
    /// gain importance.
    pub fn split_gains(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            TreeNode::Internal { feature, gain, .. } => Some((*feature, *gain)),
            TreeNode::Leaf { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2-shaped tree:
    ///
    /// ```text
    ///            x1 ≤ 5
    ///           /       \
    ///        x2 ≤ 3     leaf(9)
    ///        /     \
    ///    x3 ≤ 1   x4 ≤ 2
    ///     /  \     /  \
    ///   l(1) l(2) l(3) l(4)
    /// ```
    fn fig2_tree() -> Tree {
        Tree {
            nodes: vec![
                TreeNode::Internal { feature: 1, threshold: 5.0, default_left: true, left: 1, right: 2, gain: 10.0 },
                TreeNode::Internal { feature: 2, threshold: 3.0, default_left: true, left: 3, right: 4, gain: 6.0 },
                TreeNode::Leaf { value: 9.0 },
                TreeNode::Internal { feature: 3, threshold: 1.0, default_left: false, left: 5, right: 6, gain: 4.0 },
                TreeNode::Internal { feature: 4, threshold: 2.0, default_left: true, left: 7, right: 8, gain: 3.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
                TreeNode::Leaf { value: 3.0 },
                TreeNode::Leaf { value: 4.0 },
            ],
        }
    }

    #[test]
    fn prediction_routes_correctly() {
        let t = fig2_tree();
        // x = [_, x1, x2, x3, x4] with feature indices 1..=4 used.
        assert_eq!(t.predict_row(&[0.0, 9.0, 0.0, 0.0, 0.0]), 9.0);
        assert_eq!(t.predict_row(&[0.0, 1.0, 1.0, 0.5, 0.0]), 1.0);
        assert_eq!(t.predict_row(&[0.0, 1.0, 1.0, 2.0, 0.0]), 2.0);
        assert_eq!(t.predict_row(&[0.0, 1.0, 7.0, 0.0, 1.0]), 3.0);
        assert_eq!(t.predict_row(&[0.0, 1.0, 7.0, 0.0, 5.0]), 4.0);
    }

    #[test]
    fn missing_values_follow_default_direction() {
        let t = fig2_tree();
        // Root default_left=true: NaN on x1 goes left; then NaN on x2 left;
        // node 3 default_left=false: NaN on x3 goes right → leaf 2.
        assert_eq!(t.predict_row(&[0.0, f64::NAN, f64::NAN, f64::NAN, 0.0]), 2.0);
    }

    #[test]
    fn paths_match_fig2() {
        let t = fig2_tree();
        let mut paths = t.paths();
        paths.sort_by_key(|p| p.features.clone());
        // Three leaf parents: root (leaf(9) child), node 3, node 4.
        assert_eq!(paths.len(), 3);
        let feats: Vec<Vec<usize>> = paths.iter().map(|p| p.features.clone()).collect();
        assert!(feats.contains(&vec![1]));          // root alone (right leaf)
        assert!(feats.contains(&vec![1, 2, 3]));    // p1 in the paper
        assert!(feats.contains(&vec![1, 2, 4]));    // p2 in the paper
    }

    #[test]
    fn path_split_values_recorded() {
        let t = fig2_tree();
        let paths = t.paths();
        let p = paths.iter().find(|p| p.features == vec![1, 2, 3]).unwrap();
        assert_eq!(p.split_values[&1], vec![5.0]);
        assert_eq!(p.split_values[&2], vec![3.0]);
        assert_eq!(p.split_values[&3], vec![1.0]);
    }

    #[test]
    fn repeated_feature_on_path_dedups_but_collects_values() {
        // x0 ≤ 5 → x0 ≤ 2 → leaves.
        let t = Tree {
            nodes: vec![
                TreeNode::Internal { feature: 0, threshold: 5.0, default_left: true, left: 1, right: 2, gain: 1.0 },
                TreeNode::Internal { feature: 0, threshold: 2.0, default_left: true, left: 3, right: 4, gain: 1.0 },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: -1.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
        };
        let paths = t.paths();
        // Root has a leaf child (right) AND node 1 has leaf children.
        assert_eq!(paths.len(), 2);
        let deep = paths.iter().find(|p| p.split_values[&0].len() == 2).unwrap();
        assert_eq!(deep.features, vec![0]);
        assert_eq!(deep.split_values[&0], vec![5.0, 2.0]);
    }

    #[test]
    fn single_leaf_tree_has_no_paths() {
        assert!(Tree::leaf(0.3).paths().is_empty());
    }

    #[test]
    fn depth_and_leaves() {
        let t = fig2_tree();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.n_leaves(), 5);
        assert_eq!(Tree::leaf(0.0).depth(), 0);
        assert_eq!(Tree::leaf(0.0).n_leaves(), 1);
    }

    #[test]
    fn predict_into_accumulates() {
        let t = fig2_tree();
        let c0 = vec![0.0, 0.0];
        let c1 = vec![9.0, 1.0];
        let c2 = vec![0.0, 1.0];
        let c3 = vec![0.0, 0.5];
        let c4 = vec![0.0, 0.0];
        let cols: Vec<&[f64]> = vec![&c0, &c1, &c2, &c3, &c4];
        let mut out = vec![100.0, 100.0];
        t.predict_into(&cols, &mut out);
        assert_eq!(out, vec![109.0, 101.0]);
    }

    #[test]
    fn split_gains_lists_internal_nodes() {
        let t = fig2_tree();
        let gains: Vec<(usize, f64)> = t.split_gains().collect();
        assert_eq!(gains.len(), 4);
        assert!(gains.contains(&(1, 10.0)));
        assert!(gains.contains(&(4, 3.0)));
    }
}
