//! Robustness and failure-injection tests for the booster beyond the unit
//! suite: degenerate data, extreme hyper-parameters, NaN-heavy columns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;
use safe_gbm::booster::Gbm;
use safe_gbm::config::{GbmConfig, Objective};
use safe_stats::auc::auc;

fn toy(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x1: f64 = rng.gen_range(-1.0..1.0);
        let x2: f64 = rng.gen_range(-1.0..1.0);
        a.push(x1);
        b.push(x2);
        y.push((x1 - x2 > 0.0) as u8);
    }
    Dataset::from_columns(vec!["a".into(), "b".into()], vec![a, b], Some(y)).unwrap()
}

#[test]
fn single_class_training_is_total() {
    let ds = Dataset::from_columns(
        vec!["x".into()],
        vec![(0..50).map(|i| i as f64).collect()],
        Some(vec![1u8; 50]),
    )
    .unwrap();
    let model = Gbm::default_trainer().fit(&ds, None).unwrap();
    let preds = model.predict(&ds);
    assert!(preds.iter().all(|p| p.is_finite() && *p > 0.5));
}

#[test]
fn constant_features_yield_base_rate() {
    let ds = Dataset::from_columns(
        vec!["x".into()],
        vec![vec![7.0; 100]],
        Some((0..100).map(|i| (i % 4 == 0) as u8).collect()),
    )
    .unwrap();
    let model = Gbm::default_trainer().fit(&ds, None).unwrap();
    let preds = model.predict(&ds);
    // No split possible → every prediction equals the base rate.
    for p in &preds {
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }
}

#[test]
fn mostly_missing_feature_still_trains() {
    let n = 400;
    let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    // 80% NaN; where present the value encodes the label. (Present rows
    // must cover both parities, i.e. both classes.)
    let x: Vec<f64> = (0..n)
        .map(|i| {
            if i % 10 < 2 {
                labels[i] as f64 * 10.0
            } else {
                f64::NAN
            }
        })
        .collect();
    let noise: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64).collect();
    let ds = Dataset::from_columns(
        vec!["sparse".into(), "noise".into()],
        vec![x, noise],
        Some(labels.clone()),
    )
    .unwrap();
    let model = Gbm::default_trainer().fit(&ds, None).unwrap();
    let preds = model.predict(&ds);
    assert!(preds.iter().all(|p| p.is_finite()));
    // On the 10% of rows with data, the model should separate the classes.
    let present: Vec<usize> = (0..n).filter(|i| i % 10 < 2).collect();
    let sub_preds: Vec<f64> = present.iter().map(|&i| preds[i]).collect();
    let sub_labels: Vec<u8> = present.iter().map(|&i| labels[i]).collect();
    assert!(auc(&sub_preds, &sub_labels) > 0.95);
}

#[test]
fn extreme_subsampling_still_learns() {
    let train = toy(2_000, 1);
    let test = toy(500, 2);
    let model = Gbm::new(GbmConfig {
        subsample: 0.1,
        colsample: 0.5,
        n_rounds: 60,
        ..GbmConfig::default()
    })
    .fit(&train, None)
    .unwrap();
    let a = auc(&model.predict(&test), test.labels().unwrap());
    assert!(a > 0.9, "auc = {a}");
}

#[test]
fn tiny_max_bins_degrades_gracefully() {
    let train = toy(1_000, 3);
    let model = Gbm::new(GbmConfig {
        max_bins: 4, // 3 value bins + missing
        ..GbmConfig::default()
    })
    .fit(&train, None)
    .unwrap();
    let a = auc(&model.predict(&train), train.labels().unwrap());
    assert!(a > 0.8, "coarse bins still capture the signal, auc = {a}");
}

#[test]
fn depth_one_is_additive_stumps() {
    let train = toy(1_000, 4);
    let model = Gbm::new(GbmConfig {
        max_depth: 1,
        n_rounds: 80,
        ..GbmConfig::default()
    })
    .fit(&train, None)
    .unwrap();
    for t in model.trees() {
        assert!(t.depth() <= 1);
    }
    let a = auc(&model.predict(&train), train.labels().unwrap());
    assert!(a > 0.9, "boosted stumps fit an additive boundary, auc = {a}");
}

#[test]
fn squared_objective_regresses() {
    let train = toy(800, 5);
    let model = Gbm::new(GbmConfig {
        objective: Objective::Squared,
        n_rounds: 40,
        ..GbmConfig::default()
    })
    .fit(&train, None)
    .unwrap();
    // Squared-loss scores still rank correctly even if uncalibrated.
    let a = auc(&model.predict(&train), train.labels().unwrap());
    assert!(a > 0.95, "auc = {a}");
}

#[test]
fn eval_history_tracks_rounds() {
    let train = toy(800, 6);
    let valid = toy(300, 7);
    let model = Gbm::new(GbmConfig {
        n_rounds: 25,
        ..GbmConfig::default()
    })
    .fit(&train, Some(&valid))
    .unwrap();
    assert_eq!(model.eval_history.len(), 25);
    assert!(model.eval_history.iter().all(|a| (0.0..=1.0).contains(a)));
    // Late AUC should beat round-0 AUC on this easy task.
    assert!(model.eval_history.last().unwrap() >= &model.eval_history[0]);
}

#[test]
fn importance_is_stable_across_identical_fits() {
    let train = toy(600, 8);
    let m1 = Gbm::default_trainer().fit(&train, None).unwrap();
    let m2 = Gbm::default_trainer().fit(&train, None).unwrap();
    assert_eq!(
        m1.importance(safe_gbm::importance::ImportanceKind::TotalGain).scores,
        m2.importance(safe_gbm::importance::ImportanceKind::TotalGain).scores
    );
}

#[test]
fn paths_respect_depth_bound() {
    let train = toy(1_500, 9);
    let model = Gbm::new(GbmConfig {
        max_depth: 3,
        ..GbmConfig::default()
    })
    .fit(&train, None)
    .unwrap();
    for p in model.paths() {
        assert!(p.features.len() <= 3, "path features bounded by depth");
        // Split values per feature bounded by repeats along one path.
        for vals in p.split_values.values() {
            assert!(vals.len() <= 3);
        }
    }
}
