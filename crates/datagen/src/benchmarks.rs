//! The 12 benchmark datasets of Table IV, as seeded synthetic stand-ins
//! with identical shapes.

use safe_data::split::{train_valid_test_split, DatasetSplit};

use crate::synth::{generate, SyntheticConfig};
use crate::DatasetSpec;

/// The 12 benchmark datasets, in Table IV order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// valley — 900/–/312, 100 dims.
    Valley,
    /// banknote — 1,000/–/372, 4 dims.
    Banknote,
    /// gina — 2,800/–/668, 970 dims.
    Gina,
    /// spambase — 3,800/–/801, 57 dims.
    Spambase,
    /// phoneme — 4,500/–/904, 5 dims.
    Phoneme,
    /// wind — 5,000/–/1,574, 14 dims.
    Wind,
    /// ailerons — 9,000/2,000/2,750, 40 dims.
    Ailerons,
    /// eeg-eye — 10,000/2,000/2,980, 14 dims.
    EegEye,
    /// magic — 13,000/3,000/3,020, 10 dims.
    Magic,
    /// nomao — 22,000/6,000/6,000, 118 dims.
    Nomao,
    /// bank — 35,211/4,000/6,000, 51 dims.
    Bank,
    /// vehicle — 60,000/18,528/20,000, 100 dims.
    Vehicle,
}

impl BenchmarkId {
    /// All benchmarks, in Table IV order.
    pub const ALL: [BenchmarkId; 12] = [
        BenchmarkId::Valley,
        BenchmarkId::Banknote,
        BenchmarkId::Gina,
        BenchmarkId::Spambase,
        BenchmarkId::Phoneme,
        BenchmarkId::Wind,
        BenchmarkId::Ailerons,
        BenchmarkId::EegEye,
        BenchmarkId::Magic,
        BenchmarkId::Nomao,
        BenchmarkId::Bank,
        BenchmarkId::Vehicle,
    ];

    /// Shape spec exactly as printed in Table IV.
    pub fn spec(self) -> DatasetSpec {
        match self {
            BenchmarkId::Valley => DatasetSpec { name: "valley", n_train: 900, n_valid: 0, n_test: 312, dim: 100 },
            BenchmarkId::Banknote => DatasetSpec { name: "banknote", n_train: 1_000, n_valid: 0, n_test: 372, dim: 4 },
            BenchmarkId::Gina => DatasetSpec { name: "gina", n_train: 2_800, n_valid: 0, n_test: 668, dim: 970 },
            BenchmarkId::Spambase => DatasetSpec { name: "spambase", n_train: 3_800, n_valid: 0, n_test: 801, dim: 57 },
            BenchmarkId::Phoneme => DatasetSpec { name: "phoneme", n_train: 4_500, n_valid: 0, n_test: 904, dim: 5 },
            BenchmarkId::Wind => DatasetSpec { name: "wind", n_train: 5_000, n_valid: 0, n_test: 1_574, dim: 14 },
            BenchmarkId::Ailerons => DatasetSpec { name: "ailerons", n_train: 9_000, n_valid: 2_000, n_test: 2_750, dim: 40 },
            BenchmarkId::EegEye => DatasetSpec { name: "eeg-eye", n_train: 10_000, n_valid: 2_000, n_test: 2_980, dim: 14 },
            BenchmarkId::Magic => DatasetSpec { name: "magic", n_train: 13_000, n_valid: 3_000, n_test: 3_020, dim: 10 },
            BenchmarkId::Nomao => DatasetSpec { name: "nomao", n_train: 22_000, n_valid: 6_000, n_test: 6_000, dim: 118 },
            BenchmarkId::Bank => DatasetSpec { name: "bank", n_train: 35_211, n_valid: 4_000, n_test: 6_000, dim: 51 },
            BenchmarkId::Vehicle => DatasetSpec { name: "vehicle", n_train: 60_000, n_valid: 18_528, n_test: 20_000, dim: 100 },
        }
    }

    /// Stable per-dataset generator personality (interaction mix, noise).
    fn generator_config(self, spec: &DatasetSpec, seed: u64) -> SyntheticConfig {
        let idx = BenchmarkId::ALL.iter().position(|&b| b == self).unwrap() as u64;
        let n_signal = (spec.dim / 8).clamp(3, 12).min(spec.dim);
        let n_redundant = (spec.dim / 20).min(spec.dim.saturating_sub(n_signal));
        SyntheticConfig {
            n_rows: spec.total_rows(),
            dim: spec.dim,
            n_signal,
            n_interactions: (n_signal / 2 + 1 + (idx as usize % 3)).max(2),
            marginal_weight: 0.2 + 0.05 * (idx % 4) as f64,
            noise: 0.25 + 0.1 * (idx % 3) as f64,
            n_redundant,
            missing_rate: if idx % 4 == 2 { 0.02 } else { 0.0 },
            positive_rate: 0.5 - 0.05 * (idx % 5) as f64,
            seed: seed ^ (0xB5E5_u64 << 16) ^ idx,
        }
    }

    /// Generate the dataset at an arbitrary shape (used by `scaled` runs).
    pub fn generate_with_spec(self, spec: &DatasetSpec, seed: u64) -> DatasetSplit {
        let config = self.generator_config(spec, seed);
        let full = generate(&config);
        train_valid_test_split(&full, spec.n_train, spec.n_valid, spec.n_test, seed)
            .expect("spec sizes sum to total rows")
    }
}

/// Generate the benchmark at full Table IV size.
pub fn generate_benchmark(id: BenchmarkId, seed: u64) -> DatasetSplit {
    id.generate_with_spec(&id.spec(), seed)
}

/// Generate a fraction-scaled version (faster harness runs; shape ratios and
/// dimensionality preserved).
pub fn generate_benchmark_scaled(id: BenchmarkId, fraction: f64, seed: u64) -> DatasetSplit {
    let spec = id.spec().scaled(fraction);
    id.generate_with_spec(&spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table4() {
        assert_eq!(BenchmarkId::Valley.spec().n_train, 900);
        assert_eq!(BenchmarkId::Gina.spec().dim, 970);
        assert_eq!(BenchmarkId::Vehicle.spec().total_rows(), 98_528);
        assert_eq!(BenchmarkId::Bank.spec().n_valid, 4_000);
        let small: Vec<&str> = BenchmarkId::ALL[..6].iter().map(|b| b.spec().name).collect();
        assert_eq!(small, vec!["valley", "banknote", "gina", "spambase", "phoneme", "wind"]);
        // Paper convention: datasets under 10k samples have no validation split.
        for id in BenchmarkId::ALL {
            let s = id.spec();
            if s.n_train < 9_000 {
                assert_eq!(s.n_valid, 0, "{}", s.name);
            }
        }
    }

    #[test]
    fn generated_split_matches_spec() {
        let split = generate_benchmark(BenchmarkId::Banknote, 1);
        let spec = BenchmarkId::Banknote.spec();
        assert_eq!(split.train.n_rows(), spec.n_train);
        assert!(split.valid.is_none());
        assert_eq!(split.test.n_rows(), spec.n_test);
        assert_eq!(split.train.n_cols(), spec.dim);
    }

    #[test]
    fn validation_split_present_for_large_sets() {
        let split = generate_benchmark_scaled(BenchmarkId::Magic, 0.05, 1);
        assert!(split.valid.is_some());
        assert_eq!(split.train.n_cols(), 10);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = generate_benchmark_scaled(BenchmarkId::Phoneme, 0.1, 3);
        let b = generate_benchmark_scaled(BenchmarkId::Phoneme, 0.1, 3);
        let c = generate_benchmark_scaled(BenchmarkId::Phoneme, 0.1, 4);
        assert_eq!(a.train, b.train);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn datasets_have_both_classes() {
        for id in [BenchmarkId::Banknote, BenchmarkId::Wind, BenchmarkId::Magic] {
            let split = generate_benchmark_scaled(id, 0.1, 5);
            let rate = split.train.positive_rate().unwrap();
            assert!(rate > 0.1 && rate < 0.9, "{}: rate {rate}", id.spec().name);
        }
    }

    #[test]
    fn scaled_keeps_dim_and_floors() {
        let spec = BenchmarkId::Valley.spec().scaled(0.01);
        assert_eq!(spec.dim, 100);
        assert!(spec.n_train >= 50);
        assert!(spec.n_test >= 20);
    }
}
