//! The three Ant Financial fraud datasets of Table VII, as synthetic
//! fraud-shaped stand-ins.
//!
//! The real data (2.5M–8M training rows of transaction features) is
//! proprietary; these generators preserve the properties that drive the
//! Table VIII experiment: heavy class imbalance (fraud is rare), mixed
//! feature quality, heavy-tailed monetary features, ratio/product
//! interaction signal, and — at full scale — row counts that punish any
//! method with super-linear complexity. The default harness scale is 1% of
//! the paper's sizes; pass `scale = 1.0` to reproduce the full shape.

use safe_data::split::{train_valid_test_split, DatasetSplit};

use crate::synth::{generate, SyntheticConfig};
use crate::DatasetSpec;

/// The three business datasets, in Table VII order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusinessId {
    /// Data1 — 2,502,617 / 625,655 / 625,655 rows, 81 dims.
    Data1,
    /// Data2 — 7,282,428 / 1,820,607 / 1,820,607 rows, 44 dims.
    Data2,
    /// Data3 — 8,000,000 / 2,000,000 / 2,000,000 rows, 73 dims.
    Data3,
}

impl BusinessId {
    /// All business datasets, in Table VII order.
    pub const ALL: [BusinessId; 3] = [BusinessId::Data1, BusinessId::Data2, BusinessId::Data3];

    /// Shape spec exactly as printed in Table VII.
    pub fn spec(self) -> DatasetSpec {
        match self {
            BusinessId::Data1 => DatasetSpec { name: "Data1", n_train: 2_502_617, n_valid: 625_655, n_test: 625_655, dim: 81 },
            BusinessId::Data2 => DatasetSpec { name: "Data2", n_train: 7_282_428, n_valid: 1_820_607, n_test: 1_820_607, dim: 44 },
            BusinessId::Data3 => DatasetSpec { name: "Data3", n_train: 8_000_000, n_valid: 2_000_000, n_test: 2_000_000, dim: 73 },
        }
    }

    /// Fraud-flavoured generator personality.
    fn generator_config(self, spec: &DatasetSpec, seed: u64) -> SyntheticConfig {
        let idx = BusinessId::ALL.iter().position(|&b| b == self).unwrap() as u64;
        let n_signal = (spec.dim / 6).clamp(4, 14);
        SyntheticConfig {
            n_rows: spec.total_rows(),
            dim: spec.dim,
            n_signal,
            n_interactions: n_signal, // fraud signal is interaction-rich
            marginal_weight: 0.15,
            noise: 0.35,
            n_redundant: spec.dim / 15,
            missing_rate: 0.03, // production tables are never complete
            positive_rate: 0.03 + 0.01 * idx as f64, // fraud is rare
            seed: seed ^ (0xF4A7_u64 << 20) ^ idx,
        }
    }
}

/// Generate a business dataset at `scale` × the paper's row counts
/// (dimension always exact). `scale = 1.0` reproduces Table VII sizes.
pub fn generate_business(id: BusinessId, scale: f64, seed: u64) -> DatasetSplit {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let spec = id.spec().scaled(scale);
    let config = id.generator_config(&spec, seed);
    let full = generate(&config);
    train_valid_test_split(&full, spec.n_train, spec.n_valid, spec.n_test, seed)
        .expect("spec sizes sum to total rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table7() {
        assert_eq!(BusinessId::Data1.spec().n_train, 2_502_617);
        assert_eq!(BusinessId::Data2.spec().dim, 44);
        assert_eq!(BusinessId::Data3.spec().n_test, 2_000_000);
    }

    #[test]
    fn scaled_generation_is_imbalanced() {
        let split = generate_business(BusinessId::Data1, 0.002, 1);
        let rate = split.train.positive_rate().unwrap();
        assert!(rate < 0.1, "fraud rate should be small, got {rate}");
        assert!(rate > 0.005, "but not vanishing, got {rate}");
        assert_eq!(split.train.n_cols(), 81);
        assert!(split.valid.is_some());
    }

    #[test]
    fn scaled_rows_are_proportional() {
        let split = generate_business(BusinessId::Data2, 0.001, 2);
        let spec = BusinessId::Data2.spec();
        let expected = (spec.n_train as f64 * 0.001) as usize;
        assert_eq!(split.train.n_rows(), expected);
    }

    #[test]
    fn contains_missing_values() {
        let split = generate_business(BusinessId::Data3, 0.001, 3);
        let any_nan = (0..split.train.n_cols()).any(|f| {
            split.train.column(f).unwrap().iter().any(|v| v.is_nan())
        });
        assert!(any_nan, "production-like data should carry missing cells");
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        generate_business(BusinessId::Data1, 0.0, 0);
    }
}
