//! # safe-datagen — synthetic stand-ins for the paper's datasets
//!
//! The paper evaluates on 12 OpenML benchmark datasets (Table IV) and three
//! Ant Financial fraud datasets (Table VII). Neither is available offline,
//! so this crate generates seeded synthetic datasets with the **same shapes**
//! (#train / #valid / #test / #dim) and with label signal planted in
//! **pairwise feature interactions** — products, ratios, differences — plus
//! weak marginal effects, redundant near-copies and noise columns.
//!
//! Why this substitution preserves the experiments (see DESIGN.md §4): every
//! experiment in Section V measures a feature-engineering method's ability
//! to *find the interactions that carry signal* under selection safeguards
//! (IV filter, redundancy removal). Interaction-planted synthetic data
//! exercises exactly that axis, so method orderings (SAFE vs IMP vs RAND vs
//! TFC vs FCTree vs ORIG) remain meaningful even though absolute AUC values
//! differ from the paper's.

#![warn(missing_docs)]

pub mod business;
pub mod benchmarks;
pub mod synth;

pub use benchmarks::{generate_benchmark, BenchmarkId};
pub use business::{generate_business, BusinessId};
pub use synth::{generate, SyntheticConfig};

/// Shape descriptor for one paper dataset (Table IV / Table VII rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Training rows.
    pub n_train: usize,
    /// Validation rows (0 = the paper splits no validation set).
    pub n_valid: usize,
    /// Test rows.
    pub n_test: usize,
    /// Feature count.
    pub dim: usize,
}

impl DatasetSpec {
    /// Total rows across splits.
    pub fn total_rows(&self) -> usize {
        self.n_train + self.n_valid + self.n_test
    }

    /// The spec scaled down by `fraction` (for quick harness runs), keeping
    /// at least 50 train rows and 20 test rows.
    pub fn scaled(&self, fraction: f64) -> DatasetSpec {
        let s = |v: usize, min: usize| (((v as f64) * fraction) as usize).max(min);
        DatasetSpec {
            name: self.name,
            n_train: s(self.n_train, 50),
            n_valid: if self.n_valid == 0 { 0 } else { s(self.n_valid, 20) },
            n_test: s(self.n_test, 20),
            dim: self.dim,
        }
    }
}
