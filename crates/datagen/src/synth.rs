//! The core synthetic generator: interaction-planted binary classification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_data::dataset::Dataset;

/// How one planted interaction combines its two parent features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// `x_i · x_j` — the signature multiplicative interaction.
    Product,
    /// `x_i / (|x_j| + 0.5)` — ratio-style signal (fraud amount / balance).
    Ratio,
    /// `x_i − x_j` — difference signal.
    Difference,
    /// `(x_i > 0) ⊕ (x_j > 0)` — hard XOR region, invisible to marginals.
    Xor,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Total rows.
    pub n_rows: usize,
    /// Total feature columns.
    pub dim: usize,
    /// Number of informative base features (≤ dim).
    pub n_signal: usize,
    /// Number of planted pairwise interactions among the signal features.
    pub n_interactions: usize,
    /// Weight of weak marginal (single-feature linear) effects.
    pub marginal_weight: f64,
    /// Standard deviation of label noise added to the score.
    pub noise: f64,
    /// Number of redundant near-copies of signal features (exercises
    /// Algorithm 4).
    pub n_redundant: usize,
    /// Fraction of cells set to NaN in every 7th column.
    pub missing_rate: f64,
    /// Target positive rate (label = score above the (1−rate) quantile).
    pub positive_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_rows: 1000,
            dim: 10,
            n_signal: 4,
            n_interactions: 3,
            marginal_weight: 0.3,
            noise: 0.3,
            n_redundant: 1,
            missing_rate: 0.0,
            positive_rate: 0.5,
            seed: 0,
        }
    }
}

/// Standard normal via Box–Muller (rand 0.8 ships no Gaussian sampler).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate a labeled dataset per the configuration.
///
/// Layout: columns `x0..x{n_signal-1}` are the informative bases,
/// the next `n_redundant` columns are affine near-copies of signal features,
/// and the remainder is standard-normal noise. The label score is
///
/// `Σ_k w_k · interaction_k + marginal_weight · Σ_s c_s x_s + noise · ε`,
///
/// thresholded at the empirical `(1 − positive_rate)` quantile so the class
/// balance is exact.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    assert!(config.n_signal >= 1, "need at least one signal feature");
    assert!(config.n_signal <= config.dim, "n_signal exceeds dim");
    assert!(
        config.n_signal + config.n_redundant <= config.dim,
        "signal + redundant features exceed dim"
    );
    assert!(
        (0.0..=1.0).contains(&config.positive_rate),
        "positive_rate must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_rows;

    // Base feature matrix.
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(config.dim);
    for f in 0..config.dim {
        let mut col = Vec::with_capacity(n);
        // Alternate shapes so quantile-binning sees varied distributions.
        match f % 3 {
            0 => {
                for _ in 0..n {
                    col.push(gaussian(&mut rng));
                }
            }
            1 => {
                for _ in 0..n {
                    col.push(rng.gen_range(-1.0f64..1.0));
                }
            }
            _ => {
                // Log-normal-ish heavy tail, centred.
                for _ in 0..n {
                    col.push((gaussian(&mut rng) * 0.5).exp() - 1.0);
                }
            }
        }
        columns.push(col);
    }

    // Redundant near-copies of signal features.
    for r in 0..config.n_redundant {
        let src = r % config.n_signal;
        let slope: f64 = rng.gen_range(0.5..2.0);
        let intercept: f64 = rng.gen_range(-1.0..1.0);
        let dst = config.n_signal + r;
        for i in 0..n {
            let jitter = gaussian(&mut rng) * 0.01;
            columns[dst][i] = slope * columns[src][i] + intercept + jitter;
        }
    }

    // Planted interactions between signal features.
    let kinds = [
        InteractionKind::Product,
        InteractionKind::Ratio,
        InteractionKind::Difference,
        InteractionKind::Xor,
    ];
    let mut interactions = Vec::with_capacity(config.n_interactions);
    for k in 0..config.n_interactions {
        let i = k % config.n_signal;
        let j = (k + 1 + k / config.n_signal) % config.n_signal;
        let j = if i == j { (j + 1) % config.n_signal } else { j };
        let kind = kinds[k % kinds.len()];
        let weight: f64 = rng.gen_range(0.8..1.6);
        interactions.push((i, j, kind, weight));
    }
    let marginal_coefs: Vec<f64> = (0..config.n_signal)
        .map(|_| rng.gen_range(-1.0f64..1.0))
        .collect();

    // Score and labels.
    let mut scores = Vec::with_capacity(n);
    for row in 0..n {
        let mut s = 0.0;
        for &(i, j, kind, w) in &interactions {
            let a = columns[i][row];
            let b = columns[j][row];
            let term = match kind {
                InteractionKind::Product => a * b,
                InteractionKind::Ratio => a / (b.abs() + 0.5),
                InteractionKind::Difference => a - b,
                InteractionKind::Xor => {
                    if (a > 0.0) ^ (b > 0.0) {
                        1.0
                    } else {
                        -1.0
                    }
                }
            };
            s += w * term;
        }
        for (c, &coef) in marginal_coefs.iter().enumerate() {
            s += config.marginal_weight * coef * columns[c][row];
        }
        s += config.noise * gaussian(&mut rng);
        scores.push(s);
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let cut_idx = ((n as f64) * (1.0 - config.positive_rate)) as usize;
    let threshold = sorted[cut_idx.min(n - 1)];
    let labels: Vec<u8> = scores.iter().map(|&s| (s > threshold) as u8).collect();

    // Missing values in every 7th column.
    if config.missing_rate > 0.0 {
        for (f, col) in columns.iter_mut().enumerate() {
            if f % 7 == 3 {
                for v in col.iter_mut() {
                    if rng.gen_bool(config.missing_rate) {
                        *v = f64::NAN;
                    }
                }
            }
        }
    }

    let names: Vec<String> = (0..config.dim).map(|f| format!("x{f}")).collect();
    Dataset::from_columns(names, columns, Some(labels)).expect("shapes consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let ds = generate(&SyntheticConfig {
            n_rows: 500,
            dim: 20,
            ..Default::default()
        });
        assert_eq!(ds.n_rows(), 500);
        assert_eq!(ds.n_cols(), 20);
        assert!(ds.labels().is_some());
    }

    #[test]
    fn positive_rate_is_respected() {
        for rate in [0.5, 0.1, 0.03] {
            let ds = generate(&SyntheticConfig {
                n_rows: 10_000,
                positive_rate: rate,
                ..Default::default()
            });
            let actual = ds.positive_rate().unwrap();
            assert!(
                (actual - rate).abs() < 0.02,
                "wanted {rate}, got {actual}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = SyntheticConfig { seed: 7, ..Default::default() };
        assert_eq!(generate(&c), generate(&c));
        let d = SyntheticConfig { seed: 8, ..Default::default() };
        assert_ne!(generate(&c), generate(&d));
    }

    #[test]
    fn interactions_carry_signal_marginals_are_weak() {
        // The product of the first two signal features should predict the
        // label far better than any noise feature does.
        let ds = generate(&SyntheticConfig {
            n_rows: 4000,
            dim: 10,
            n_signal: 4,
            n_interactions: 1, // just x0·x1
            marginal_weight: 0.0,
            noise: 0.1,
            n_redundant: 0,
            ..Default::default()
        });
        let labels = ds.labels().unwrap();
        let x0 = ds.column(0).unwrap();
        let x1 = ds.column(1).unwrap();
        let product: Vec<f64> = x0.iter().zip(x1).map(|(a, b)| a * b).collect();
        let iv_product = safe_stats::iv::information_value(&product, labels, 10).unwrap();
        let iv_noise =
            safe_stats::iv::information_value(ds.column(9).unwrap(), labels, 10).unwrap();
        assert!(
            iv_product > 10.0 * iv_noise.max(0.01),
            "product IV {iv_product} vs noise IV {iv_noise}"
        );
    }

    #[test]
    fn redundant_columns_are_highly_correlated() {
        let ds = generate(&SyntheticConfig {
            n_rows: 2000,
            dim: 10,
            n_signal: 4,
            n_redundant: 2,
            ..Default::default()
        });
        // Column 4 is a near-copy of column 0.
        let rho = safe_stats::pearson::pearson(ds.column(0).unwrap(), ds.column(4).unwrap());
        assert!(rho.abs() > 0.95, "rho = {rho}");
    }

    #[test]
    fn missing_rate_plants_nans() {
        let ds = generate(&SyntheticConfig {
            n_rows: 1000,
            dim: 14,
            missing_rate: 0.2,
            ..Default::default()
        });
        // Column 3 and 10 are the `% 7 == 3` columns.
        let nan_count = ds.column(3).unwrap().iter().filter(|v| v.is_nan()).count();
        assert!(nan_count > 100, "expected ~200 NaNs, got {nan_count}");
        let clean = ds.column(0).unwrap().iter().filter(|v| v.is_nan()).count();
        assert_eq!(clean, 0);
    }

    #[test]
    #[should_panic(expected = "n_signal exceeds dim")]
    fn oversized_signal_panics() {
        generate(&SyntheticConfig {
            dim: 3,
            n_signal: 5,
            ..Default::default()
        });
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
