//! Shannon entropy, information gain and information gain ratio.
//!
//! Algorithm 2 of the paper scores each candidate feature combination by
//! partitioning all records according to the combination's split values and
//! computing the **information gain ratio** of that partition against the
//! binary label.

/// Shannon entropy (nats) of a discrete distribution given raw counts.
/// Zero-count cells contribute nothing. Returns 0 for an empty histogram.
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Entropy of a binary label vector.
pub fn label_entropy(labels: &[u8]) -> f64 {
    let pos = labels.iter().filter(|&&l| l == 1).count();
    entropy_from_counts(&[pos, labels.len() - pos])
}

/// Per-cell label histogram of a partition: `cells[i] = (pos, neg)` counts of
/// the records assigned to cell `i`.
fn cell_histograms(cells: &[usize], labels: &[u8], n_cells: usize) -> Vec<(usize, usize)> {
    let mut hist = vec![(0usize, 0usize); n_cells];
    for (&cell, &label) in cells.iter().zip(labels) {
        if label == 1 {
            hist[cell].0 += 1;
        } else {
            hist[cell].1 += 1;
        }
    }
    hist
}

/// Information gain of partitioning `labels` by `cells` (cell index per
/// record, values in `0..n_cells`).
///
/// `IG = H(Y) − Σ_i (n_i/n) · H(Y | cell = i)`.
pub fn information_gain(cells: &[usize], labels: &[u8], n_cells: usize) -> f64 {
    assert_eq!(cells.len(), labels.len(), "cells/labels length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let base = label_entropy(labels);
    let n = labels.len() as f64;
    let mut conditional = 0.0;
    for (pos, neg) in cell_histograms(cells, labels, n_cells) {
        let cell_n = pos + neg;
        if cell_n == 0 {
            continue;
        }
        conditional += (cell_n as f64 / n) * entropy_from_counts(&[pos, neg]);
    }
    (base - conditional).max(0.0)
}

/// Information gain ratio: gain normalized by the partition's *intrinsic*
/// entropy (split information). This is C4.5's correction that keeps
/// many-celled partitions from being favoured automatically — essential
/// here because a combination of q features yields up to ∏(|Vi|+1) cells.
///
/// Returns 0 when the split information is 0 (single non-empty cell).
pub fn gain_ratio(cells: &[usize], labels: &[u8], n_cells: usize) -> f64 {
    let gain = information_gain(cells, labels, n_cells);
    let mut counts = vec![0usize; n_cells];
    for &c in cells {
        counts[c] += 1;
    }
    let split_info = entropy_from_counts(&counts);
    if split_info <= f64::EPSILON {
        0.0
    } else {
        gain / split_info
    }
}

/// Combine per-feature bin assignments into a joint cell index:
/// the mixed-radix product partition used by Algorithm 2 (a combination of q
/// features with `b_1 … b_q` bins each yields `∏ b_i` cells).
///
/// `assignments[j]` is the (bins, n_bins) pair of feature j.
pub fn joint_cells(assignments: &[(&[usize], usize)]) -> (Vec<usize>, usize) {
    assert!(!assignments.is_empty(), "need at least one feature");
    let n_rows = assignments[0].0.len();
    let mut total_cells = 1usize;
    for (bins, n_bins) in assignments {
        assert_eq!(bins.len(), n_rows, "all assignments must cover all rows");
        total_cells = total_cells.saturating_mul(*n_bins);
    }
    let mut cells = vec![0usize; n_rows];
    for (bins, n_bins) in assignments {
        for (row, &b) in bins.iter().enumerate() {
            cells[row] = cells[row] * n_bins + b;
        }
    }
    (cells, total_cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn entropy_of_uniform_binary_is_ln2() {
        assert!((entropy_from_counts(&[5, 5]) - LN2).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_pure_is_zero() {
        assert_eq!(entropy_from_counts(&[10, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_maximal_at_uniform() {
        let u = entropy_from_counts(&[25, 25, 25, 25]);
        let skewed = entropy_from_counts(&[70, 10, 10, 10]);
        assert!(u > skewed);
        assert!((u - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_recovers_full_entropy() {
        // Cell 0 = all negatives, cell 1 = all positives.
        let cells = vec![0, 0, 1, 1];
        let labels = vec![0, 0, 1, 1];
        let ig = information_gain(&cells, &labels, 2);
        assert!((ig - LN2).abs() < 1e-12);
        // Gain ratio of this perfect balanced split is 1.
        assert!((gain_ratio(&cells, &labels, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_has_zero_gain() {
        let cells = vec![0, 1, 0, 1];
        let labels = vec![0, 0, 1, 1];
        let ig = information_gain(&cells, &labels, 2);
        assert!(ig.abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_penalizes_fragmentation() {
        // Both partitions separate classes perfectly, but the second one
        // shatters the data into singleton cells.
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let coarse = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let fine = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let g_coarse = gain_ratio(&coarse, &labels, 2);
        let g_fine = gain_ratio(&fine, &labels, 8);
        assert!(g_coarse > g_fine);
        // Plain information gain cannot tell them apart:
        let ig_c = information_gain(&coarse, &labels, 2);
        let ig_f = information_gain(&fine, &labels, 8);
        assert!((ig_c - ig_f).abs() < 1e-12);
    }

    #[test]
    fn single_cell_gain_ratio_is_zero() {
        let labels = vec![0, 1, 0, 1];
        let cells = vec![0, 0, 0, 0];
        assert_eq!(gain_ratio(&cells, &labels, 1), 0.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(information_gain(&[], &[], 1), 0.0);
    }

    #[test]
    fn joint_cells_mixed_radix() {
        // Feature A with 2 bins, feature B with 3 bins → 6 joint cells.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 2, 1, 2];
        let (cells, n) = joint_cells(&[(&a, 2), (&b, 3)]);
        assert_eq!(n, 6);
        assert_eq!(cells, vec![0, 2, 4, 5]);
    }

    #[test]
    fn joint_cells_distinct_pairs_distinct_cells() {
        let a = vec![0, 1, 0, 1];
        let b = vec![0, 0, 1, 1];
        let (cells, n) = joint_cells(&[(&a, 2), (&b, 2)]);
        assert_eq!(n, 4);
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "all four (a,b) pairs map to distinct cells");
    }

    #[test]
    fn joint_combination_beats_marginals_on_xor() {
        // XOR labels: neither feature alone has gain, the pair is perfect —
        // exactly the situation SAFE's combination mining exists to exploit.
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let labels: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| (x ^ y) as u8).collect();
        let ga = gain_ratio(&a, &labels, 2);
        let gb = gain_ratio(&b, &labels, 2);
        let (joint, n) = joint_cells(&[(&a, 2), (&b, 2)]);
        let gj = gain_ratio(&joint, &labels, n);
        assert!(ga < 1e-9 && gb < 1e-9);
        assert!(gj > 0.49, "joint gain ratio should be large, got {gj}");
    }
}
