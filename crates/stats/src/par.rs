//! Configurable parallel execution layer over `std::thread::scope`.
//!
//! The SAFE paper (Section IV-E) motivates per-feature parallelism for the
//! expensive stages: histogram construction, IG-ratio combination scoring,
//! operator application, IV binning, and pairwise Pearson. This module is
//! the single primitive those stages share:
//!
//! - [`Parallelism`] — the thread-count knob carried by `SafeConfig` and
//!   `GbmConfig` (`0` = auto-detect, `1` = the serial path, `n` = exactly
//!   `n` workers).
//! - [`par_chunks`] / [`par_map`] — chunked maps over index ranges whose
//!   results are merged in **fixed chunk-index order**, so output is
//!   bit-identical to a sequential loop regardless of thread count or
//!   scheduling.
//! - [`try_par_chunks`] / [`try_par_map`] — the same maps with worker
//!   panics captured and surfaced as a [`ParPanic`] error instead of
//!   unwinding. `std::thread::scope` joins every worker before returning,
//!   so a panicking worker can never leave the caller hanging.
//!
//! # Determinism contract
//!
//! Chunk boundaries depend only on `(n, resolved thread count)`, every
//! chunk writes to its own pre-assigned slot, and slots are concatenated
//! in chunk-index order after all workers have joined. No reduction here
//! is order-sensitive, so `threads = k` produces the same bytes as
//! `threads = 1` for any `k`. The serial-vs-parallel differential suite
//! (`tests/parallel_differential.rs`) enforces this end to end.

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Upper bound on an explicit thread request. Anything larger is a config
/// error: it would only oversubscribe the scheduler.
pub const MAX_THREADS: usize = 512;

/// Below this many items per worker, thread spawn overhead dominates and
/// the map runs inline on the calling thread.
pub const MIN_PER_THREAD: usize = 8;

/// Thread-count knob for the parallel stages.
///
/// `threads == 0` means "auto": resolve to `available_parallelism()` at
/// use time. `threads == 1` is the serial path (no worker threads are
/// spawned). Any other value spawns up to that many scoped workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Requested worker count; `0` = auto-detect from the machine.
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

impl Parallelism {
    /// Auto-detect: use `available_parallelism()` when the work is large
    /// enough to split.
    pub fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Force the serial path; equivalent to `new(1)`.
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// Request exactly `threads` workers (`0` = auto).
    pub fn new(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// The concrete thread budget: the explicit request, or the machine's
    /// available parallelism when auto.
    pub fn resolve(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Reject absurd explicit requests (more than [`MAX_THREADS`]).
    pub fn validate(self) -> Result<(), String> {
        if self.threads > MAX_THREADS {
            return Err(format!(
                "threads must be 0 (auto) or at most {MAX_THREADS}, got {}",
                self.threads
            ));
        }
        Ok(())
    }

    /// Number of chunks an `n`-item map will split into: `1` when serial
    /// or when the work is too small to amortize a thread spawn.
    pub fn chunk_count(self, n: usize) -> usize {
        let threads = self.resolve();
        if threads <= 1 || n < 2 * MIN_PER_THREAD {
            1
        } else {
            threads.min(n / MIN_PER_THREAD).max(1)
        }
    }
}

/// A worker thread panicked inside a parallel map.
///
/// Carries the stringified panic payload; callers in the pipeline convert
/// this into a `SafeError` so a poisoned stage degrades instead of
/// unwinding (or worse, deadlocking) the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParPanic {
    /// Panic payload rendered as text (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl fmt::Display for ParPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel worker thread panicked: {}", self.message)
    }
}

impl std::error::Error for ParPanic {}

fn payload_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Split `0..n` into contiguous chunks, run `f` on each chunk (in worker
/// threads when the knob allows), and return the per-chunk results in
/// chunk-index order. Worker panics are captured and returned as
/// [`ParPanic`]; every worker is joined before this function returns.
pub fn try_par_chunks<R, F>(par: Parallelism, n: usize, f: F) -> Result<Vec<R>, ParPanic>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let n_chunks = par.chunk_count(n);
    if n_chunks <= 1 {
        return match catch_unwind(AssertUnwindSafe(|| f(0..n))) {
            Ok(r) => Ok(vec![r]),
            Err(p) => Err(ParPanic {
                message: payload_message(p),
            }),
        };
    }

    let chunk = n.div_ceil(n_chunks);
    let ranges: Vec<Range<usize>> = (0..n_chunks)
        .map(|i| (i * chunk)..((i + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);

    let mut first_panic: Option<ParPanic> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for (range, slot) in ranges.into_iter().zip(slots.iter_mut()) {
            let f = &f;
            handles.push(scope.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| f(range))) {
                    Ok(r) => {
                        *slot = Some(r);
                        None
                    }
                    Err(p) => Some(ParPanic {
                        message: payload_message(p),
                    }),
                }
            }));
        }
        // Join in spawn order so the first chunk's panic wins
        // deterministically when several workers fail at once.
        for handle in handles {
            if let Ok(Some(panic)) = handle.join() {
                if first_panic.is_none() {
                    first_panic = Some(panic);
                }
            }
        }
    });

    match first_panic {
        Some(p) => Err(p),
        None => Ok(slots.into_iter().flatten().collect()),
    }
}

/// [`try_par_chunks`] that re-raises a captured worker panic on the
/// calling thread, matching plain sequential semantics.
pub fn par_chunks<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    match try_par_chunks(par, n, f) {
        Ok(v) => v,
        Err(p) => panic!("{p}"),
    }
}

/// Parallel map of `f` over `0..n`; results in index order, worker panics
/// surfaced as [`ParPanic`].
pub fn try_par_map<T, F>(par: Parallelism, n: usize, f: F) -> Result<Vec<T>, ParPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunks = try_par_chunks(par, n, |range| range.map(&f).collect::<Vec<T>>())?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Parallel map of `f` over `0..n`, re-raising worker panics.
pub fn par_map<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_par_map(par, n, f) {
        Ok(v) => v,
        Err(p) => panic!("{p}"),
    }
}

/// Parallel map over an explicit slice, panics surfaced as [`ParPanic`].
pub fn try_par_map_slice<I, T, F>(
    par: Parallelism,
    items: &[I],
    f: F,
) -> Result<Vec<T>, ParPanic>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    try_par_map(par, items.len(), |i| f(&items[i]))
}

/// Parallel map over an explicit slice, re-raising worker panics.
pub fn par_map_slice<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map(par, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn auto_is_default_and_zero() {
        assert_eq!(Parallelism::default(), Parallelism::auto());
        assert_eq!(Parallelism::auto().threads, 0);
        assert!(Parallelism::auto().resolve() >= 1);
    }

    #[test]
    fn explicit_resolve_is_identity() {
        assert_eq!(Parallelism::new(7).resolve(), 7);
        assert_eq!(Parallelism::serial().resolve(), 1);
    }

    #[test]
    fn validate_rejects_absurd_requests() {
        assert!(Parallelism::new(MAX_THREADS).validate().is_ok());
        assert!(Parallelism::new(MAX_THREADS + 1).validate().is_err());
        assert!(Parallelism::auto().validate().is_ok());
    }

    #[test]
    fn serial_spawns_single_chunk() {
        assert_eq!(Parallelism::serial().chunk_count(10_000), 1);
        assert_eq!(Parallelism::new(4).chunk_count(4), 1, "too small to split");
        assert!(Parallelism::new(4).chunk_count(10_000) > 1);
    }

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let expected: Vec<u64> = (0..500u64).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            let got = par_map(Parallelism::new(threads), 500, |i| i as u64 * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_range_in_order() {
        let chunks = par_chunks(Parallelism::new(4), 100, |r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn calls_each_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(Parallelism::new(4), 1_000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
        assert_eq!(out.len(), 1_000);
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = par_map(Parallelism::new(4), 0, |i| i);
        assert!(out.is_empty());
        assert!(try_par_chunks(Parallelism::new(4), 0, |r| r.len())
            .expect("empty is fine")
            .is_empty());
    }

    #[test]
    fn worker_panic_becomes_error_not_hang() {
        let err = try_par_map(Parallelism::new(4), 1_000, |i| {
            if i == 777 {
                panic!("poisoned item {i}");
            }
            i
        })
        .expect_err("panic must surface");
        assert!(err.message.contains("poisoned item 777"), "{err}");
    }

    #[test]
    fn serial_panic_also_becomes_error() {
        let err = try_par_map(Parallelism::serial(), 10, |i| {
            if i == 3 {
                panic!("serial poison");
            }
            i
        })
        .expect_err("panic must surface");
        assert!(err.message.contains("serial poison"));
    }

    #[test]
    fn first_chunk_panic_wins_deterministically() {
        for _ in 0..10 {
            let err = try_par_map(Parallelism::new(4), 1_000, |i| {
                if i % 250 == 10 {
                    panic!("chunk owning {i}");
                }
                i
            })
            .expect_err("panic must surface");
            assert!(err.message.contains("chunk owning 10"), "{err}");
        }
    }

    #[test]
    fn par_map_repanics_with_message() {
        let caught = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(2), 100, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        let payload = caught.expect_err("must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn oversubscription_preserves_order() {
        // More threads than items-per-chunk allows on any machine.
        let out = par_map(Parallelism::new(64), 256, |i| i);
        assert_eq!(out, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn non_copy_results() {
        let out = par_map(Parallelism::new(3), 100, |i| vec![i; 3]);
        assert_eq!(out[42], vec![42, 42, 42]);
    }

    #[test]
    fn slice_wrapper() {
        let items = vec!["a", "bb", "ccc"];
        assert_eq!(par_map_slice(Parallelism::new(2), &items, |s| s.len()), vec![1, 2, 3]);
        assert_eq!(
            try_par_map_slice(Parallelism::new(2), &items, |s| s.len()).expect("no panic"),
            vec![1, 2, 3]
        );
    }
}
