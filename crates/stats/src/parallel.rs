//! Scoped-thread parallel map over index ranges.
//!
//! Section IV-E of the paper requires that per-feature IV and per-pair
//! Pearson computations be parallelizable ("distributed computing"). This
//! helper chunks an index range across up to `available_parallelism()`
//! std scoped threads and preserves output order. No work stealing —
//! the workloads here (IV per column, Pearson per pair, histogram per
//! feature) are uniform enough that static chunking wins on simplicity.

/// Parallel map `f` over `0..n`, returning results in index order.
///
/// Falls back to a sequential loop for small `n` where thread spawn overhead
/// dominates, or when only one CPU is available.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    const MIN_PER_THREAD: usize = 8;
    if threads <= 1 || n < 2 * MIN_PER_THREAD {
        return (0..n).map(f).collect();
    }
    let n_chunks = threads.min(n / MIN_PER_THREAD).max(1);
    let chunk = n.div_ceil(n_chunks);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut out;
        let mut start = 0usize;
        while start < n {
            let len = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let begin = start;
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(begin + offset));
                }
            });
            start += len;
        }
        // Scope exit joins every worker; a panicking worker propagates here.
    });

    out.into_iter().flatten().collect()
}

/// Parallel map over an explicit slice of items (convenience wrapper).
pub fn par_map_slice<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_small() {
        let out = par_map_indexed(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn preserves_order_large() {
        let out = par_map_indexed(10_000, |i| i as u64 * 3 + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn calls_each_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map_indexed(1_000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
        assert_eq!(out.len(), 1_000);
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = par_map_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn slice_wrapper() {
        let items = vec!["a", "bb", "ccc"];
        let out = par_map_slice(&items, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn non_copy_results() {
        let out = par_map_indexed(100, |i| vec![i; 3]);
        assert_eq!(out[42], vec![42, 42, 42]);
    }
}
