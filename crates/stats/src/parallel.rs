//! Auto-parallel map over index ranges (legacy convenience wrappers).
//!
//! Section IV-E of the paper requires that per-feature IV and per-pair
//! Pearson computations be parallelizable ("distributed computing").
//! These helpers delegate to [`crate::par`] with [`Parallelism::auto`]:
//! the index range is chunked across up to `available_parallelism()`
//! scoped threads and results are merged in fixed chunk-index order.
//! Call sites that honour the config knob should use [`crate::par`]
//! directly and pass their `Parallelism` through.

use crate::par::{self, Parallelism};

/// Parallel map `f` over `0..n`, returning results in index order.
///
/// Falls back to a sequential loop for small `n` where thread spawn overhead
/// dominates, or when only one CPU is available.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par::par_map(Parallelism::auto(), n, f)
}

/// Parallel map over an explicit slice of items (convenience wrapper).
pub fn par_map_slice<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par::par_map_slice(Parallelism::auto(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_small() {
        let out = par_map_indexed(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn preserves_order_large() {
        let out = par_map_indexed(10_000, |i| i as u64 * 3 + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn calls_each_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map_indexed(1_000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
        assert_eq!(out.len(), 1_000);
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = par_map_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn slice_wrapper() {
        let items = vec!["a", "bb", "ccc"];
        let out = par_map_slice(&items, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn non_copy_results() {
        let out = par_map_indexed(100, |i| vec![i; 3]);
        assert_eq!(out[42], vec![42, 42, 42]);
    }
}
