//! Chi-square statistic over adjacent-interval class tables.
//!
//! The paper lists ChiMerge among the typical discretization methods; the
//! `safe-ops` ChiMerge operator merges the adjacent interval pair with the
//! lowest chi-square until a threshold or interval budget is met.

/// Chi-square statistic of a 2×k contingency table given as per-interval
/// `(pos, neg)` counts. Expected counts use the standard
/// `E_ij = row_i · col_j / n` with zero-expected cells skipped.
pub fn chi_square(cells: &[(usize, usize)]) -> f64 {
    let total_pos: usize = cells.iter().map(|c| c.0).sum();
    let total_neg: usize = cells.iter().map(|c| c.1).sum();
    let n = (total_pos + total_neg) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut chi = 0.0;
    for &(pos, neg) in cells {
        let row = (pos + neg) as f64;
        for (observed, col_total) in [(pos as f64, total_pos as f64), (neg as f64, total_neg as f64)]
        {
            let expected = row * col_total / n;
            if expected > 0.0 {
                let d = observed - expected;
                chi += d * d / expected;
            }
        }
    }
    chi
}

/// Chi-square of two adjacent intervals — the merge criterion of ChiMerge.
pub fn chi_square_pair(a: (usize, usize), b: (usize, usize)) -> f64 {
    chi_square(&[a, b])
}

/// Critical value of the chi-square distribution with 1 degree of freedom at
/// common significance levels, for threshold-based ChiMerge stopping.
pub fn chi2_critical_1df(significance: f64) -> f64 {
    // Tabulated: ChiMerge operates on 2 classes → df = k-1 = 1 per merge test.
    match significance {
        s if s <= 0.01 => 6.635,
        s if s <= 0.05 => 3.841,
        s if s <= 0.10 => 2.706,
        _ => 1.323, // p = 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_chi() {
        // Same class ratio in both intervals → no evidence to keep them apart.
        assert!(chi_square_pair((10, 20), (5, 10)) < 1e-12);
    }

    #[test]
    fn opposite_distributions_have_large_chi() {
        let chi = chi_square_pair((30, 0), (0, 30));
        assert!(chi > 50.0, "chi = {chi}");
    }

    #[test]
    fn chi_grows_with_contrast() {
        let weak = chi_square_pair((12, 10), (10, 12));
        let strong = chi_square_pair((20, 2), (2, 20));
        assert!(weak < strong);
    }

    #[test]
    fn empty_table_is_zero() {
        assert_eq!(chi_square(&[]), 0.0);
        assert_eq!(chi_square_pair((0, 0), (0, 0)), 0.0);
    }

    #[test]
    fn matches_hand_computed_example() {
        // Table: interval A (pos 10, neg 10), interval B (pos 20, neg 0).
        // n = 40, col totals: pos 30, neg 10. Row A = 20, Row B = 20.
        // E(A,pos)=15, E(A,neg)=5, E(B,pos)=15, E(B,neg)=5.
        // chi = (10-15)^2/15 + (10-5)^2/5 + (20-15)^2/15 + (0-5)^2/5
        //     = 25/15 + 25/5 + 25/15 + 25/5 = 13.333...
        let chi = chi_square_pair((10, 10), (20, 0));
        assert!((chi - (25.0 / 15.0 + 5.0 + 25.0 / 15.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn critical_values_are_monotone() {
        assert!(chi2_critical_1df(0.01) > chi2_critical_1df(0.05));
        assert!(chi2_critical_1df(0.05) > chi2_critical_1df(0.10));
    }
}
