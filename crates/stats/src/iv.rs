//! Information Value (IV) and Weight of Evidence (WoE).
//!
//! Eq. (6) of the paper:
//!
//! `IV = Σ_i (n_p^i/n_p − n_n^i/n_n) · ln( (n_p^i/n_p) / (n_n^i/n_n) )`
//!
//! Algorithm 3 packs each feature into β equal-frequency bins and drops
//! features with IV ≤ α (default α = 0.1, the lower edge of Table I's
//! "medium predictor" band).

use safe_data::binning::{bin_column, BinStrategy};
use safe_data::error::DataError;

/// Table I of the paper: rule-of-thumb predictive-power bands for IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvBand {
    /// IV in \[0, 0.02\): useless for prediction.
    Useless,
    /// IV in \[0.02, 0.1\): weak predictor.
    Weak,
    /// IV in \[0.1, 0.3\): medium predictor.
    Medium,
    /// IV in \[0.3, 0.5\): strong predictor.
    Strong,
    /// IV ≥ 0.5: extremely strong predictor (often "too good to be true").
    ExtremelyStrong,
}

impl IvBand {
    /// Classify an IV value into its Table I band.
    pub fn of(iv: f64) -> IvBand {
        if iv < 0.02 {
            IvBand::Useless
        } else if iv < 0.1 {
            IvBand::Weak
        } else if iv < 0.3 {
            IvBand::Medium
        } else if iv < 0.5 {
            IvBand::Strong
        } else {
            IvBand::ExtremelyStrong
        }
    }

    /// Human description as printed in Table I.
    pub fn description(self) -> &'static str {
        match self {
            IvBand::Useless => "Useless for prediction",
            IvBand::Weak => "Weak predictor",
            IvBand::Medium => "Medium predictor",
            IvBand::Strong => "Strong predictor",
            IvBand::ExtremelyStrong => "Extremely strong predictor",
        }
    }

    /// The `[lo, hi)` IV range of this band (`hi = ∞` for the top band).
    pub fn range(self) -> (f64, f64) {
        match self {
            IvBand::Useless => (0.0, 0.02),
            IvBand::Weak => (0.02, 0.1),
            IvBand::Medium => (0.1, 0.3),
            IvBand::Strong => (0.3, 0.5),
            IvBand::ExtremelyStrong => (0.5, f64::INFINITY),
        }
    }
}

/// Per-bin WoE summary.
#[derive(Debug, Clone, PartialEq)]
pub struct WoeBin {
    /// Positive-record count in the bin.
    pub n_pos: usize,
    /// Negative-record count in the bin.
    pub n_neg: usize,
    /// Weight of evidence `ln((n_p^i/n_p)/(n_n^i/n_n))` (Laplace-smoothed).
    pub woe: f64,
    /// The bin's additive contribution to the total IV.
    pub iv_contribution: f64,
}

/// Laplace smoothing constant guarding against empty-class bins; standard
/// scorecard practice (0-count bins otherwise produce ±∞ WoE).
const SMOOTH: f64 = 0.5;

/// Compute WoE per bin from precomputed bin indices.
pub fn woe_from_bins(bins: &[usize], n_bins: usize, labels: &[u8]) -> Vec<WoeBin> {
    assert_eq!(bins.len(), labels.len(), "bins/labels length mismatch");
    let mut pos = vec![0usize; n_bins];
    let mut neg = vec![0usize; n_bins];
    for (&b, &l) in bins.iter().zip(labels) {
        if l == 1 {
            pos[b] += 1;
        } else {
            neg[b] += 1;
        }
    }
    let total_pos: usize = pos.iter().sum();
    let total_neg: usize = neg.iter().sum();
    let tp = total_pos as f64 + SMOOTH * n_bins as f64;
    let tn = total_neg as f64 + SMOOTH * n_bins as f64;
    (0..n_bins)
        .map(|i| {
            let p_rate = (pos[i] as f64 + SMOOTH) / tp;
            let n_rate = (neg[i] as f64 + SMOOTH) / tn;
            let woe = (p_rate / n_rate).ln();
            WoeBin {
                n_pos: pos[i],
                n_neg: neg[i],
                woe,
                iv_contribution: (p_rate - n_rate) * woe,
            }
        })
        .collect()
}

/// Equal-frequency-bin the feature (β bins, missing values in their own bin)
/// and return the per-bin WoE table.
pub fn woe_bins(values: &[f64], labels: &[u8], n_bins: usize) -> Result<Vec<WoeBin>, DataError> {
    let a = bin_column(values, n_bins, BinStrategy::EqualFrequency)?;
    Ok(woe_from_bins(&a.bins, a.n_bins, labels))
}

/// Information Value of a feature against binary labels (Algorithm 3 inner
/// loop): β equal-frequency bins, Eq. (6).
pub fn information_value(values: &[f64], labels: &[u8], n_bins: usize) -> Result<f64, DataError> {
    Ok(woe_bins(values, labels, n_bins)?
        .iter()
        .map(|b| b.iv_contribution)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A feature that perfectly orders the classes.
    fn separable(n: usize) -> (Vec<f64>, Vec<u8>) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        (values, labels)
    }

    #[test]
    fn perfectly_predictive_feature_has_huge_iv() {
        let (v, y) = separable(1000);
        let iv = information_value(&v, &y, 10).unwrap();
        assert!(iv > 0.5, "iv = {iv}");
        assert_eq!(IvBand::of(iv), IvBand::ExtremelyStrong);
    }

    #[test]
    fn independent_feature_has_tiny_iv() {
        // Feature alternates independently of the label.
        let n = 10_000;
        let values: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| ((i / 2) % 2) as u8).collect();
        let iv = information_value(&values, &labels, 10).unwrap();
        assert!(iv < 0.02, "iv = {iv}");
        assert_eq!(IvBand::of(iv), IvBand::Useless);
    }

    #[test]
    fn iv_is_nonnegative_by_construction() {
        // Every term (a-b)ln(a/b) >= 0.
        let (v, y) = separable(100);
        for bins in [2, 5, 20] {
            let iv = information_value(&v, &y, bins).unwrap();
            assert!(iv >= 0.0);
        }
    }

    #[test]
    fn label_flip_preserves_iv() {
        let (v, y) = separable(500);
        let flipped: Vec<u8> = y.iter().map(|&l| 1 - l).collect();
        let a = information_value(&v, &y, 10).unwrap();
        let b = information_value(&v, &flipped, 10).unwrap();
        assert!((a - b).abs() < 1e-9, "IV is symmetric in class naming");
    }

    #[test]
    fn woe_signs_track_class_balance() {
        let (v, y) = separable(100);
        let bins = woe_bins(&v, &y, 2).unwrap();
        assert!(bins[0].woe < 0.0, "low bin is all-negative: negative WoE");
        assert!(bins[1].woe > 0.0, "high bin is all-positive: positive WoE");
    }

    #[test]
    fn iv_contributions_sum_to_iv() {
        let (v, y) = separable(256);
        let bins = woe_bins(&v, &y, 8).unwrap();
        let total: f64 = bins.iter().map(|b| b.iv_contribution).sum();
        let iv = information_value(&v, &y, 8).unwrap();
        assert!((total - iv).abs() < 1e-12);
    }

    #[test]
    fn missing_values_participate_via_missing_bin() {
        // Feature missing exactly on positives → the missing bin is pure and
        // IV must be very large.
        let n = 400;
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let values: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l == 1 { f64::NAN } else { i as f64 })
            .collect();
        let iv = information_value(&values, &labels, 5).unwrap();
        assert!(iv > 1.0, "informative missingness should be captured, iv={iv}");
    }

    #[test]
    fn constant_feature_is_useless() {
        let values = vec![3.0; 200];
        let labels: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
        let iv = information_value(&values, &labels, 10).unwrap();
        assert!(iv < 1e-9);
    }

    #[test]
    fn band_boundaries_match_table1() {
        assert_eq!(IvBand::of(0.0), IvBand::Useless);
        assert_eq!(IvBand::of(0.019), IvBand::Useless);
        assert_eq!(IvBand::of(0.02), IvBand::Weak);
        assert_eq!(IvBand::of(0.0999), IvBand::Weak);
        assert_eq!(IvBand::of(0.1), IvBand::Medium);
        assert_eq!(IvBand::of(0.3), IvBand::Strong);
        assert_eq!(IvBand::of(0.5), IvBand::ExtremelyStrong);
        assert_eq!(IvBand::of(7.0), IvBand::ExtremelyStrong);
    }

    #[test]
    fn band_ranges_are_contiguous() {
        let bands = [
            IvBand::Useless,
            IvBand::Weak,
            IvBand::Medium,
            IvBand::Strong,
            IvBand::ExtremelyStrong,
        ];
        for w in bands.windows(2) {
            assert_eq!(w[0].range().1, w[1].range().0);
        }
    }
}

/// Distributed-computing support (Section IV-E2): WoE/IV are computed from
/// per-bin class counts, which are **additive across data shards**. Workers
/// each build a [`WoeAccumulator`] over their partition with shared bin
/// edges; the driver merges them and finalizes — the map-reduce realization
/// the paper's deployment implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WoeAccumulator {
    pos: Vec<usize>,
    neg: Vec<usize>,
}

impl WoeAccumulator {
    /// Empty accumulator over `n_bins` cells (use the same shared binning on
    /// every shard, e.g. broadcast [`safe_data::binning::BinEdges`]).
    pub fn new(n_bins: usize) -> WoeAccumulator {
        WoeAccumulator {
            pos: vec![0; n_bins],
            neg: vec![0; n_bins],
        }
    }

    /// Fold one record (already assigned to a bin) into the accumulator.
    pub fn add(&mut self, bin: usize, label: u8) {
        if label == 1 {
            self.pos[bin] += 1;
        } else {
            self.neg[bin] += 1;
        }
    }

    /// Fold a whole shard.
    pub fn add_shard(&mut self, bins: &[usize], labels: &[u8]) {
        assert_eq!(bins.len(), labels.len(), "shard bins/labels mismatch");
        for (&b, &l) in bins.iter().zip(labels) {
            self.add(b, l);
        }
    }

    /// Merge another accumulator (the reduce step). Panics when bin counts
    /// disagree — shards must share the binning.
    pub fn merge(&mut self, other: &WoeAccumulator) {
        assert_eq!(self.pos.len(), other.pos.len(), "accumulators must share bins");
        for (a, b) in self.pos.iter_mut().zip(&other.pos) {
            *a += b;
        }
        for (a, b) in self.neg.iter_mut().zip(&other.neg) {
            *a += b;
        }
    }

    /// Finalize into the WoE table (identical to the single-node
    /// [`woe_from_bins`] on the concatenated data).
    pub fn finalize(&self) -> Vec<WoeBin> {
        let n_bins = self.pos.len();
        let total_pos: usize = self.pos.iter().sum();
        let total_neg: usize = self.neg.iter().sum();
        let tp = total_pos as f64 + SMOOTH * n_bins as f64;
        let tn = total_neg as f64 + SMOOTH * n_bins as f64;
        (0..n_bins)
            .map(|i| {
                let p_rate = (self.pos[i] as f64 + SMOOTH) / tp;
                let n_rate = (self.neg[i] as f64 + SMOOTH) / tn;
                let woe = (p_rate / n_rate).ln();
                WoeBin {
                    n_pos: self.pos[i],
                    n_neg: self.neg[i],
                    woe,
                    iv_contribution: (p_rate - n_rate) * woe,
                }
            })
            .collect()
    }

    /// Finalized IV.
    pub fn information_value(&self) -> f64 {
        self.finalize().iter().map(|b| b.iv_contribution).sum()
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use safe_data::binning::{bin_column, BinStrategy};

    #[test]
    fn sharded_iv_equals_single_node_iv() {
        let n = 1_000;
        let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % 997) as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (((i * 7919) % 997) > 500) as u8).collect();
        // Single-node reference.
        let reference = information_value(&values, &labels, 10).unwrap();
        // Shared binning broadcast to "workers".
        let a = bin_column(&values, 10, BinStrategy::EqualFrequency).unwrap();
        // Three shards.
        let mut workers: Vec<WoeAccumulator> = Vec::new();
        for chunk in 0..3 {
            let lo = chunk * n / 3;
            let hi = ((chunk + 1) * n / 3).min(n);
            let mut acc = WoeAccumulator::new(a.n_bins);
            acc.add_shard(&a.bins[lo..hi], &labels[lo..hi]);
            workers.push(acc);
        }
        // Reduce.
        let mut driver = WoeAccumulator::new(a.n_bins);
        for w in &workers {
            driver.merge(w);
        }
        assert!((driver.information_value() - reference).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut a = WoeAccumulator::new(3);
        a.add(0, 1);
        a.add(2, 0);
        let mut b = WoeAccumulator::new(3);
        b.add(1, 1);
        b.add(1, 0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert!((ab.information_value() - ba.information_value()).abs() < 1e-15);
    }

    #[test]
    fn empty_accumulator_finalizes_to_zero_iv() {
        let acc = WoeAccumulator::new(5);
        assert!(acc.information_value().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "accumulators must share bins")]
    fn mismatched_bins_panic() {
        let mut a = WoeAccumulator::new(3);
        a.merge(&WoeAccumulator::new(4));
    }
}
