//! # safe-stats — statistical primitives for the SAFE pipeline
//!
//! Everything statistical that the paper's algorithms rely on, from scratch:
//!
//! - [`entropy`] — Shannon entropy, information gain and **information gain
//!   ratio** over record partitions (Algorithm 2's combination ranking),
//! - [`iv`] — **Information Value** with Weight-of-Evidence (Eq. 6, Algorithm
//!   3) and the Table I predictive-power bands,
//! - [`pearson`](mod@pearson) — **Pearson correlation** (Eq. 7, Algorithm 4) and the Table
//!   II strength bands,
//! - [`auc`](mod@auc) — rank-based AUC, the paper's evaluation metric,
//! - [`divergence`] — KLD / JSD (Eqs. 14–15) and the feature-stability score
//!   of Table VI,
//! - [`chi`] — chi-square statistic backing the ChiMerge discretizer,
//! - [`describe`] — means, variances, quantiles,
//! - [`par`](mod@par) — the configurable `std::thread::scope` execution
//!   layer ([`Parallelism`] knob, fixed-order chunk merging, panic capture)
//!   used to parallelize per-column IV and per-pair Pearson work (the
//!   paper's "distributed computing" requirement, realized as thread
//!   parallelism). Every caller passes its own explicit [`Parallelism`];
//!   there is no implicit auto-parallel wrapper.

#![warn(missing_docs)]

pub mod auc;
pub mod chi;
pub mod describe;
pub mod divergence;
pub mod entropy;
pub mod iv;
pub mod par;
pub mod pearson;

pub use auc::auc;
pub use par::{ParPanic, Parallelism};

pub use divergence::{jensen_shannon, kullback_leibler, stability_score};
pub use entropy::{entropy_from_counts, gain_ratio, information_gain, label_entropy};
pub use iv::{information_value, woe_bins, IvBand};
pub use pearson::{pearson, CorrBand, ExactMoments};
