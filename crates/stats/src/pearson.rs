//! Pearson correlation (Eq. 7) and Table II strength bands.
//!
//! Algorithm 4 removes the lower-IV member of every feature pair whose
//! absolute correlation exceeds θ = 0.8.

/// Table II of the paper: rule-of-thumb correlation-strength bands for |ρ|.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrBand {
    /// |ρ| in \[0, 0.2\): very weak or no correlation.
    VeryWeak,
    /// |ρ| in \[0.2, 0.4\): weak correlation.
    Weak,
    /// |ρ| in \[0.4, 0.6\): moderate correlation.
    Moderate,
    /// |ρ| in \[0.6, 0.8\): strong correlation.
    Strong,
    /// |ρ| in \[0.8, 1\]: extremely strong correlation.
    ExtremelyStrong,
}

impl CorrBand {
    /// Classify an absolute correlation into its Table II band.
    pub fn of(rho: f64) -> CorrBand {
        let a = rho.abs();
        if a < 0.2 {
            CorrBand::VeryWeak
        } else if a < 0.4 {
            CorrBand::Weak
        } else if a < 0.6 {
            CorrBand::Moderate
        } else if a < 0.8 {
            CorrBand::Strong
        } else {
            CorrBand::ExtremelyStrong
        }
    }

    /// Human description as printed in Table II.
    pub fn description(self) -> &'static str {
        match self {
            CorrBand::VeryWeak => "Very weak or no correlation",
            CorrBand::Weak => "Weak correlation",
            CorrBand::Moderate => "Moderate correlation",
            CorrBand::Strong => "Strong correlation",
            CorrBand::ExtremelyStrong => "Extremely strong correlation",
        }
    }
}

/// Pearson correlation coefficient of two equal-length columns (Eq. 7).
///
/// Rows where either value is non-finite are skipped pairwise (industrial
/// data has missing cells; correlating present pairs is standard). Returns
/// 0.0 when either column is constant over the shared support or fewer than
/// two shared rows exist — a constant feature is uncorrelated with anything
/// for the purposes of redundancy removal.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "columns must be equal length");
    let mut n = 0usize;
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            n += 1;
            sx += a;
            sy += b;
        }
    }
    if n < 2 {
        return 0.0;
    }
    let mx = sx / n as f64;
    let my = sy / n as f64;
    let (mut num, mut dx, mut dy) = (0.0f64, 0.0f64, 0.0f64);
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            let ca = a - mx;
            let cb = b - my;
            num += ca * cb;
            dx += ca * ca;
            dy += cb * cb;
        }
    }
    if dx <= 0.0 || dy <= 0.0 {
        return 0.0;
    }
    (num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0)
}

/// Precomputed Pearson moments of one NaN-free column — the bitwise-exact
/// moment cache behind both the staged redundancy scan and exact-mode
/// selection.
///
/// [`pearson`] deletes rows pairwise, so its means and variance sums
/// normally depend on *both* columns of a pair. When neither column has a
/// missing cell the shared support is every row and those quantities become
/// per-column constants: `centered` stores `value - mean` exactly as
/// `pearson` recomputes it per pair, and `dxx` is `Σ centered²` accumulated
/// in the same row order as `pearson`'s own passes.
/// [`ExactMoments::rho`] then evaluates the identical final expression,
/// making the fast path **bitwise-equal** to `pearson(a, b)` for NaN-free
/// pairs — it is a caching layout, not an approximation. O(n) per pair
/// instead of the two-pass routine's 2×O(n), with the per-column O(n)
/// moment pass paid once.
#[derive(Debug, Clone)]
pub struct ExactMoments {
    /// `value - mean` per row, in row order.
    centered: Vec<f64>,
    /// `Σ centered²`, accumulated in row order.
    dxx: f64,
}

impl ExactMoments {
    /// Moments of `col`, or `None` if the column has a non-finite cell
    /// (those pairs need pairwise deletion) or fewer than two rows.
    pub fn of(col: &[f64]) -> Option<ExactMoments> {
        if col.len() < 2 || col.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sx = 0.0f64;
        for &a in col {
            sx += a;
        }
        let mean = sx / col.len() as f64;
        let mut dxx = 0.0f64;
        let centered: Vec<f64> = col
            .iter()
            .map(|&a| {
                let c = a - mean;
                dxx += c * c;
                c
            })
            .collect();
        Some(ExactMoments { centered, dxx })
    }

    /// `pearson(a, b)`, bitwise-equal to the two-pass routine for the
    /// NaN-free columns this cache admits.
    pub fn rho(&self, other: &ExactMoments) -> f64 {
        if self.dxx <= 0.0 || other.dxx <= 0.0 {
            return 0.0;
        }
        let mut num = 0.0f64;
        for (ca, cb) in self.centered.iter().zip(&other.centered) {
            num += ca * cb;
        }
        (num / (self.dxx.sqrt() * other.dxx.sqrt())).clamp(-1.0, 1.0)
    }

    /// `|pearson(a, b)|`, bitwise-equal to the two-pass routine.
    pub fn abs_rho(&self, other: &ExactMoments) -> f64 {
        self.rho(other).abs()
    }
}

/// All-pairs absolute correlation matrix (upper triangle), returned as a flat
/// vector indexed by [`pair_index`]. Kept allocation-light for Algorithm 4's
/// O(M²) sweep.
pub fn abs_correlation_upper(columns: &[&[f64]]) -> Vec<f64> {
    let m = columns.len();
    let mut out = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            out.push(pearson(columns[i], columns[j]).abs());
        }
    }
    out
}

/// Index of pair (i, j), i < j, within the flattened upper triangle of an
/// m×m matrix.
pub fn pair_index(i: usize, j: usize, m: usize) -> usize {
    debug_assert!(i < j && j < m);
    i * m - i * (i + 1) / 2 + (j - i - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_positive_is_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affine_negative_is_minus_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let x = vec![1.0, 4.0, 2.0, 8.0, 5.0];
        let y = vec![2.0, 1.0, 7.0, 3.0, 9.0];
        assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn orthogonal_pattern_is_zero() {
        let x = vec![1.0, -1.0, 1.0, -1.0];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn constant_column_yields_zero() {
        let x = vec![5.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn nan_rows_are_skipped_pairwise() {
        let x = vec![1.0, 2.0, f64::NAN, 3.0, 4.0];
        let y = vec![2.0, 4.0, 100.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_shared_rows_is_zero() {
        let x = vec![1.0, f64::NAN];
        let y = vec![f64::NAN, 2.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn result_is_bounded() {
        // Near-degenerate values can push naive formulas past 1; ensure clamping.
        let x = vec![1.0, 1.0 + 1e-15, 1.0 + 2e-15];
        let y = vec![1.0, 1.0 + 1e-15, 1.0 + 2e-15];
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn band_boundaries_match_table2() {
        assert_eq!(CorrBand::of(0.0), CorrBand::VeryWeak);
        assert_eq!(CorrBand::of(-0.19), CorrBand::VeryWeak);
        assert_eq!(CorrBand::of(0.2), CorrBand::Weak);
        assert_eq!(CorrBand::of(0.4), CorrBand::Moderate);
        assert_eq!(CorrBand::of(-0.7), CorrBand::Strong);
        assert_eq!(CorrBand::of(0.8), CorrBand::ExtremelyStrong);
        assert_eq!(CorrBand::of(1.0), CorrBand::ExtremelyStrong);
    }

    #[test]
    fn upper_triangle_layout() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| -v).collect();
        let c: Vec<f64> = a.iter().map(|v| v * v).collect();
        let cols: Vec<&[f64]> = vec![&a, &b, &c];
        let tri = abs_correlation_upper(&cols);
        assert_eq!(tri.len(), 3);
        assert!((tri[pair_index(0, 1, 3)] - 1.0).abs() < 1e-12);
        assert!((tri[pair_index(0, 2, 3)] - pearson(&a, &c).abs()).abs() < 1e-12);
        assert!((tri[pair_index(1, 2, 3)] - pearson(&b, &c).abs()).abs() < 1e-12);
    }

    /// The moment-cached kernel must reproduce the two-pass routine bit
    /// for bit on NaN-free columns — signed, not just in magnitude.
    #[test]
    fn exact_moments_are_bitwise_pearson() {
        let cols: Vec<Vec<f64>> = (0..6)
            .map(|k| {
                (0..200)
                    .map(|i| ((i * (k + 3)) as f64).sin() * 10.0 + (k as f64) * 0.25)
                    .collect()
            })
            .collect();
        let moments: Vec<ExactMoments> =
            cols.iter().map(|c| ExactMoments::of(c).unwrap()).collect();
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                let two_pass = pearson(&cols[i], &cols[j]);
                assert_eq!(
                    moments[i].rho(&moments[j]).to_bits(),
                    two_pass.to_bits(),
                    "pair ({i},{j}) signed rho bits differ"
                );
                assert_eq!(
                    moments[i].abs_rho(&moments[j]).to_bits(),
                    two_pass.abs().to_bits(),
                );
            }
        }
    }

    #[test]
    fn exact_moments_reject_nan_and_short_columns() {
        assert!(ExactMoments::of(&[1.0]).is_none());
        assert!(ExactMoments::of(&[1.0, f64::NAN, 2.0]).is_none());
        assert!(ExactMoments::of(&[1.0, f64::INFINITY]).is_none());
        assert!(ExactMoments::of(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn constant_column_moments_yield_zero() {
        let a = ExactMoments::of(&[3.0; 10]).unwrap();
        let b = ExactMoments::of(&(0..10).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        assert_eq!(a.rho(&b), 0.0);
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let m = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..m {
            for j in (i + 1)..m {
                assert!(seen.insert(pair_index(i, j, m)));
            }
        }
        assert_eq!(seen.len(), m * (m - 1) / 2);
        assert_eq!(*seen.iter().max().unwrap(), m * (m - 1) / 2 - 1);
    }
}
