//! Area Under the ROC Curve — the evaluation metric of every experiment in
//! the paper (Tables III and VIII report 100×AUC).
//!
//! Computed via the Mann–Whitney U statistic with midrank tie handling:
//! `AUC = (Σ ranks of positives − n_p(n_p+1)/2) / (n_p · n_n)`.

/// Rank-based AUC of `scores` against binary `labels`.
///
/// Returns 0.5 when either class is absent (no ranking information).
/// Ties receive midranks, so permuting equal-scored records never changes
/// the result. `O(n log n)`.
pub fn auc(scores: &[f64], labels: &[u8]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Midranks over tied groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j+1 share midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] == 1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Log-loss (binary cross entropy) of probability predictions — used by the
/// models crate for training diagnostics. Probabilities are clipped to
/// `[1e-12, 1 − 1e-12]`.
pub fn log_loss(probs: &[f64], labels: &[u8]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(eps, 1.0 - eps);
            if y == 1 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

/// Classification accuracy at a 0.5 threshold — secondary diagnostic.
pub fn accuracy(probs: &[f64], labels: &[u8]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let correct = probs
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p >= 0.5) == (y == 1))
        .count();
    correct as f64 / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![0, 0, 1, 1];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![0, 0, 1, 1];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = vec![0.5; 6];
        let labels = vec![0, 1, 0, 1, 0, 1];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1, 1]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0, 0]), 0.5);
    }

    #[test]
    fn matches_pair_counting_definition() {
        // AUC = P(score_pos > score_neg) + 0.5 P(tie), brute force check.
        let scores = vec![0.3, 0.7, 0.7, 0.1, 0.9, 0.5, 0.3];
        let labels = vec![0, 1, 0, 0, 1, 1, 1];
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &yi) in labels.iter().enumerate() {
            for (j, &yj) in labels.iter().enumerate() {
                if yi == 1 && yj == 0 {
                    den += 1.0;
                    if scores[i] > scores[j] {
                        num += 1.0;
                    } else if scores[i] == scores[j] {
                        num += 0.5;
                    }
                }
            }
        }
        assert!((auc(&scores, &labels) - num / den).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_invariance() {
        let scores = vec![0.1, 0.4, 0.35, 0.8, 0.65];
        let labels = vec![0, 0, 1, 1, 1];
        let squashed: Vec<f64> = scores.iter().map(|&s| s * s * s * 100.0).collect();
        assert!((auc(&scores, &labels) - auc(&squashed, &labels)).abs() < 1e-12);
    }

    #[test]
    fn log_loss_of_perfect_predictions_is_tiny() {
        let probs = vec![0.0001, 0.9999];
        let labels = vec![0, 1];
        assert!(log_loss(&probs, &labels) < 0.001);
    }

    #[test]
    fn log_loss_handles_exact_zero_one() {
        let probs = vec![0.0, 1.0];
        let labels = vec![1, 0]; // maximally wrong, must stay finite
        assert!(log_loss(&probs, &labels).is_finite());
    }

    #[test]
    fn accuracy_counts_threshold_hits() {
        let probs = vec![0.9, 0.2, 0.6, 0.4];
        let labels = vec![1, 0, 0, 1];
        assert!((accuracy(&probs, &labels) - 0.5).abs() < 1e-12);
    }
}
