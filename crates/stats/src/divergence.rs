//! Kullback–Leibler and Jensen–Shannon divergence (Eqs. 14–15) plus the
//! feature-stability score of Table VI.
//!
//! The paper measures how reproducible a feature-engineering method is: run
//! it T times, pool the 2M·T generated features, and compare the empirical
//! feature-occurrence distribution against the ideal one (every run emits the
//! same 2M features, each appearing T times) via JSD. Lower is more stable.

/// KL divergence `Σ p ln(p/q)` over two distributions given as histograms.
/// Both inputs are normalized internally; cells where `p = 0` contribute 0.
/// Returns `f64::INFINITY` when some `p > 0` has `q = 0`.
pub fn kullback_leibler(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must be non-empty");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pi = pi / sp;
        let qi = qi / sq;
        if pi > 0.0 {
            if qi == 0.0 {
                return f64::INFINITY;
            }
            d += pi * (pi / qi).ln();
        }
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence: `½ KLD(P‖R) + ½ KLD(Q‖R)` with `R = ½(P+Q)`
/// (Eq. 14). Always finite, symmetric, bounded by ln 2.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must be non-empty");
    let pn: Vec<f64> = p.iter().map(|&v| v / sp).collect();
    let qn: Vec<f64> = q.iter().map(|&v| v / sq).collect();
    let r: Vec<f64> = pn.iter().zip(&qn).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kullback_leibler(&pn, &r) + 0.5 * kullback_leibler(&qn, &r)
}

/// Table VI stability score for one method.
///
/// `occurrences[i]` is the number of runs (out of `t_runs`) in which the
/// i-th distinct feature was emitted; the method emits `per_run` features per
/// run (2M in the paper). The actual distribution is compared by JSD against
/// the ideal distribution: `per_run` distinct features each occurring
/// `t_runs` times. The two distributions are aligned on a common support
/// (occurrence-count descending, zero-padded), as required for Eq. 14.
pub fn stability_score(occurrences: &[usize], per_run: usize, t_runs: usize) -> f64 {
    assert!(t_runs > 0 && per_run > 0, "need at least one run and feature");
    assert!(
        !occurrences.is_empty(),
        "at least one feature must have been generated"
    );
    let mut actual: Vec<f64> = occurrences.iter().map(|&c| c as f64).collect();
    actual.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut ideal: Vec<f64> = vec![t_runs as f64; per_run];
    // Align supports by zero-padding the shorter list. JSD stays finite
    // because the mixture R is positive wherever either side is.
    let support = actual.len().max(ideal.len());
    actual.resize(support, 0.0);
    ideal.resize(support, 0.0);
    jensen_shannon(&actual, &ideal)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn kld_of_identical_is_zero() {
        let p = vec![0.25, 0.25, 0.5];
        assert!(kullback_leibler(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kld_is_asymmetric() {
        let p = vec![0.9, 0.1];
        let q = vec![0.5, 0.5];
        let a = kullback_leibler(&p, &q);
        let b = kullback_leibler(&q, &p);
        assert!(a > 0.0 && b > 0.0);
        assert!((a - b).abs() > 1e-3);
    }

    #[test]
    fn kld_infinite_on_unsupported_mass() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        assert!(kullback_leibler(&p, &q).is_infinite());
    }

    #[test]
    fn kld_normalizes_inputs() {
        let p = vec![2.0, 2.0, 4.0];
        let q = vec![1.0, 1.0, 2.0];
        assert!(kullback_leibler(&p, &q).abs() < 1e-12);
    }

    #[test]
    fn jsd_symmetric_and_bounded() {
        let p = vec![1.0, 0.0, 0.0];
        let q = vec![0.0, 0.0, 1.0];
        let d = jensen_shannon(&p, &q);
        assert!((d - jensen_shannon(&q, &p)).abs() < 1e-12);
        assert!((d - LN2).abs() < 1e-12, "disjoint supports hit the ln2 bound");
    }

    #[test]
    fn jsd_of_identical_is_zero() {
        let p = vec![0.3, 0.3, 0.4];
        assert!(jensen_shannon(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn jsd_finite_where_kld_is_not() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        assert!(jensen_shannon(&p, &q).is_finite());
    }

    #[test]
    fn perfectly_stable_method_scores_zero() {
        // 2M = 4 features, T = 10 runs, every run emits the same 4.
        let occurrences = vec![10, 10, 10, 10];
        let s = stability_score(&occurrences, 4, 10);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn maximally_unstable_method_scores_high() {
        // Every run emits 4 brand-new features: 40 distinct, each once.
        let occurrences = vec![1usize; 40];
        let s = stability_score(&occurrences, 4, 10);
        assert!(s > 0.4, "score = {s}");
        assert!(s <= LN2 + 1e-12);
    }

    #[test]
    fn stability_is_monotone_in_churn() {
        // Increasing feature churn must increase (worsen) the score.
        let stable = stability_score(&[10, 10, 10, 10], 4, 10);
        let mild = stability_score(&[10, 10, 8, 8, 2, 2], 4, 10);
        let wild = stability_score(&vec![1; 40], 4, 10);
        assert!(stable < mild && mild < wild, "{stable} {mild} {wild}");
    }
}
