//! Column summary statistics used by operators (normalization) and data
//! generators: mean, variance, min/max, quantiles — all NaN-aware.

/// Summary of one numeric column (missing values excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Count of finite values.
    pub n: usize,
    /// Count of missing (non-finite) values.
    pub n_missing: usize,
    /// Arithmetic mean of finite values (0 when empty).
    pub mean: f64,
    /// Population standard deviation of finite values (0 when empty).
    pub std: f64,
    /// Minimum finite value (+∞ when empty).
    pub min: f64,
    /// Maximum finite value (−∞ when empty).
    pub max: f64,
}

/// Compute a [`ColumnSummary`] in one pass (Welford's online variance, which
/// stays accurate for the large shifted columns industrial data produces).
pub fn describe(values: &[f64]) -> ColumnSummary {
    let mut n = 0usize;
    let mut n_missing = 0usize;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if !v.is_finite() {
            n_missing += 1;
            continue;
        }
        n += 1;
        let delta = v - mean;
        mean += delta / n as f64;
        m2 += delta * (v - mean);
        min = min.min(v);
        max = max.max(v);
    }
    let std = if n > 0 { (m2 / n as f64).sqrt() } else { 0.0 };
    ColumnSummary {
        n,
        n_missing,
        mean: if n > 0 { mean } else { 0.0 },
        std,
        min,
        max,
    }
}

/// q-th quantile (0 ≤ q ≤ 1) of the finite values, linear interpolation
/// between order statistics. `None` when no finite values exist.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() {
        return None;
    }
    clean.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (clean.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(clean[lo] * (1.0 - frac) + clean[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_basic() {
        let s = describe(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.n_missing, 0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn describe_skips_missing() {
        let s = describe(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.n_missing, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn describe_empty_is_sane() {
        let s = describe(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn welford_stays_accurate_for_shifted_data() {
        // Classic catastrophic-cancellation case for the naive formula.
        let base = 1e9;
        let values: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let s = describe(&values);
        let expected_std = describe(&(0..1000).map(|i| (i % 10) as f64).collect::<Vec<_>>()).std;
        assert!((s.std - expected_std).abs() < 1e-6, "std = {}", s.std);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), Some(10.0));
        assert_eq!(quantile(&v, 1.0), Some(40.0));
        assert_eq!(quantile(&v, 0.5), Some(25.0));
    }

    #[test]
    fn quantile_of_all_missing_is_none() {
        assert_eq!(quantile(&[f64::NAN, f64::NAN], 0.5), None);
    }

    #[test]
    fn median_robust_to_order() {
        let v = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&v, 0.5), Some(3.0));
    }
}
