//! Property tests local to safe-stats: describe/quantile/chi/par.

use proptest::prelude::*;

use safe_stats::chi::{chi_square, chi_square_pair};
use safe_stats::describe::{describe, quantile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn describe_bounds_hold(values in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let s = describe(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.mean + 1e-6);
        prop_assert!(s.mean <= s.max + 1e-6);
        prop_assert!(s.std >= 0.0);
        // Chebyshev-esque sanity: std bounded by range.
        prop_assert!(s.std <= (s.max - s.min).abs() + 1e-9);
    }

    #[test]
    fn describe_counts_missing(
        values in prop::collection::vec(-100f64..100.0, 1..100),
        missing_every in 2usize..5,
    ) {
        let mut v = values.clone();
        let mut expected_missing = 0;
        for (i, x) in v.iter_mut().enumerate() {
            if i % missing_every == 0 {
                *x = f64::NAN;
                expected_missing += 1;
            }
        }
        let s = describe(&v);
        prop_assert_eq!(s.n_missing, expected_missing);
        prop_assert_eq!(s.n + s.n_missing, v.len());
    }

    #[test]
    fn quantile_is_monotone_in_q(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let q25 = quantile(&values, 0.25).unwrap();
        let q50 = quantile(&values, 0.5).unwrap();
        let q75 = quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-9);
        prop_assert!(q50 <= q75 + 1e-9);
        // Extremes equal min/max.
        let s = describe(&values);
        prop_assert!((quantile(&values, 0.0).unwrap() - s.min).abs() < 1e-9);
        prop_assert!((quantile(&values, 1.0).unwrap() - s.max).abs() < 1e-9);
    }

    #[test]
    fn chi_square_nonnegative_and_zero_on_proportional_tables(
        base in prop::collection::vec((1usize..40, 1usize..40), 2..8),
        scale in 2usize..5,
    ) {
        let cells: Vec<(usize, usize)> = base.clone();
        prop_assert!(chi_square(&cells) >= 0.0);
        // Two intervals with identical class ratios → chi == 0.
        let a = (7 * scale, 3 * scale);
        let b = (7, 3);
        prop_assert!(chi_square_pair(a, b) < 1e-9);
    }

    #[test]
    fn chi_square_pair_is_symmetric(
        a in (0usize..50, 0usize..50),
        b in (0usize..50, 0usize..50),
    ) {
        let x = chi_square_pair(a, b);
        let y = chi_square_pair(b, a);
        prop_assert!((x - y).abs() < 1e-9);
    }

    #[test]
    fn auto_parallelism_matches_sequential(n in 0usize..2000) {
        use safe_stats::par::{par_map, Parallelism};
        let parallel = par_map(Parallelism::auto(), n, |i| i * i + 1);
        let sequential: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn explicit_thread_budgets_match_sequential(
        n in 0usize..2000,
        threads in 1usize..=16,
    ) {
        use safe_stats::par::{par_map, Parallelism};
        let parallel = par_map(Parallelism::new(threads), n, |i| i * i + 1);
        let sequential: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn try_par_map_captures_any_panic(
        n in 1usize..500,
        panic_at in 0usize..500,
        threads in 1usize..=8,
    ) {
        use safe_stats::par::{try_par_map, Parallelism};
        let panic_at = panic_at % n;
        let r = try_par_map(Parallelism::new(threads), n, |i| {
            assert!(i != panic_at, "boom at {i}");
            i
        });
        let err = r.expect_err("panicking worker must yield Err");
        let needle = format!("boom at {panic_at}");
        prop_assert!(err.message.contains(&needle), "payload lost: {}", err.message);
    }
}
