//! Cross-iteration training caches (see `DESIGN.md` §12).
//!
//! SAFE's iteration loop re-examines mostly the *same* columns every
//! iteration: the miner trains on the previous selection, the candidate set
//! is that selection plus the newly generated X̃, and the selection stages
//! re-score every candidate. Column **names are stable provenance** — a
//! generated name encodes its operator and parents, [`Dataset`] rejects
//! duplicate names, and `select_columns` copies values verbatim — so a
//! name-keyed cache can safely reuse per-column work across iterations.
//!
//! Two caches cover the repeated work:
//!
//! - [`BinCache`] (re-exported from [`safe_gbm`]): quantized `u16` bin
//!   columns + mappers, shared by the miner and ranker boosters.
//! - [`StatsCache`]: finalized IV values per `(column, β)` and Pearson
//!   correlations per unordered column pair. Caching the *finalized value*
//!   (not intermediate moment sums) makes reuse trivially bit-identical to
//!   recomputation: the cold path would produce the exact same `f64`.
//!
//! Pearson values may be stored under either argument order: [`pearson`]
//! only combines its inputs through commutative products
//! (`Σ cᵃcᵇ`, `√dx·√dy`), so swapping the arguments yields a bit-identical
//! result.
//!
//! [`Dataset`]: safe_data::dataset::Dataset
//! [`pearson`]: safe_stats::pearson::pearson

use std::collections::HashMap;

pub use safe_gbm::binner::BinCache;

/// Value-level cache for the selection statistics: IV per `(column name, β)`
/// and Pearson per unordered name pair. Hit/miss counts accumulate over the
/// cache's lifetime; stage telemetry reports per-stage deltas.
#[derive(Debug, Default)]
pub struct StatsCache {
    iv: HashMap<(String, usize), f64>,
    pearson: HashMap<(String, String), f64>,
    iv_hits: u64,
    iv_misses: u64,
    pearson_hits: u64,
    pearson_misses: u64,
}

impl StatsCache {
    /// An empty cache.
    pub fn new() -> StatsCache {
        StatsCache::default()
    }

    /// Cached IV of `name` at `beta` bins. Counts a hit or a miss.
    pub fn iv_lookup(&mut self, name: &str, beta: usize) -> Option<f64> {
        match self.iv.get(&(name.to_string(), beta)) {
            Some(&v) => {
                self.iv_hits += 1;
                Some(v)
            }
            None => {
                self.iv_misses += 1;
                None
            }
        }
    }

    /// Store the IV of `name` at `beta` bins.
    pub fn iv_insert(&mut self, name: &str, beta: usize, value: f64) {
        self.iv.insert((name.to_string(), beta), value);
    }

    /// Cached Pearson correlation of the unordered pair `{a, b}`. Counts a
    /// hit or a miss.
    pub fn pearson_lookup(&mut self, a: &str, b: &str) -> Option<f64> {
        match self.pearson.get(&Self::pair_key(a, b)) {
            Some(&v) => {
                self.pearson_hits += 1;
                Some(v)
            }
            None => {
                self.pearson_misses += 1;
                None
            }
        }
    }

    /// Store the Pearson correlation of the unordered pair `{a, b}`.
    pub fn pearson_insert(&mut self, a: &str, b: &str, value: f64) {
        self.pearson.insert(Self::pair_key(a, b), value);
    }

    /// IV lookups answered from the cache so far.
    pub fn iv_hits(&self) -> u64 {
        self.iv_hits
    }

    /// IV lookups that had to be computed so far.
    pub fn iv_misses(&self) -> u64 {
        self.iv_misses
    }

    /// Pearson lookups answered from the cache so far.
    pub fn pearson_hits(&self) -> u64 {
        self.pearson_hits
    }

    /// Pearson lookups that had to be computed so far.
    pub fn pearson_misses(&self) -> u64 {
        self.pearson_misses
    }

    /// Number of cached IV values (checkpoint provenance metadata).
    pub fn iv_len(&self) -> usize {
        self.iv.len()
    }

    /// Number of cached Pearson pairs (checkpoint provenance metadata).
    pub fn pearson_len(&self) -> usize {
        self.pearson.len()
    }

    fn pair_key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iv_is_keyed_by_name_and_beta() {
        let mut c = StatsCache::new();
        assert_eq!(c.iv_lookup("x", 10), None);
        c.iv_insert("x", 10, 0.25);
        assert_eq!(c.iv_lookup("x", 10), Some(0.25));
        assert_eq!(c.iv_lookup("x", 20), None, "different β is a different key");
        assert_eq!(c.iv_lookup("y", 10), None);
        assert_eq!(c.iv_hits(), 1);
        assert_eq!(c.iv_misses(), 3);
    }

    #[test]
    fn pearson_pair_is_unordered() {
        let mut c = StatsCache::new();
        c.pearson_insert("b", "a", -0.5);
        assert_eq!(c.pearson_lookup("a", "b"), Some(-0.5));
        assert_eq!(c.pearson_lookup("b", "a"), Some(-0.5));
        assert_eq!(c.pearson_hits(), 2);
        assert_eq!(c.pearson_misses(), 0);
    }

    #[test]
    fn pearson_is_bitwise_symmetric() {
        // The unordered pair key is only sound because pearson(x, y) and
        // pearson(y, x) are the same f64 to the last bit.
        let x: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0 + 0.1).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64).cos() - 2.0).collect();
        let a = safe_stats::pearson::pearson(&x, &y);
        let b = safe_stats::pearson::pearson(&y, &x);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
