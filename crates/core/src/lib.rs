//! # safe-core — the SAFE automatic feature engineering pipeline
//!
//! Faithful implementation of Algorithm 1 of *SAFE: Scalable Automatic
//! Feature Engineering Framework for Industrial Tasks* (ICDE 2020). Each
//! iteration:
//!
//! 1. train a gradient-boosted miner on the current feature set
//!    ([`safe_gbm`]),
//! 2. harvest feature combinations from the trees' root→leaf-parent paths
//!    ([`combine`], Section IV-B1),
//! 3. rank combinations by information gain ratio and keep the top γ
//!    ([`combine::rank_combinations`], Algorithm 2),
//! 4. apply the operator set to the kept combinations ([`generate`]),
//! 5. filter candidates by Information Value > α ([`select::iv_filter`],
//!    Algorithm 3),
//! 6. drop the lower-IV member of every |ρ| > θ pair
//!    ([`select::redundancy_filter`], Algorithm 4),
//! 7. rank survivors by average split gain and keep the best
//!    ([`select::rank_and_cap`], Section IV-C3).
//!
//! The result is a serializable [`plan::FeaturePlan`] — the learned Ψ — that
//! replays generation on any dataset or single record (the paper's real-time
//! inference requirement).
//!
//! The paper's own ablation baselines **RAND** (random combinations over all
//! features) and **IMP** (random combinations over split features) are
//! selectable via [`config::GenerationStrategy`]; they share the full
//! selection pipeline exactly as in Section V-A1.
//!
//! ## Robustness
//!
//! `Safe::fit` never panics on degenerate data: a configurable pre-fit
//! audit ([`safe_data::audit`], wired through [`SafeConfig::audit`])
//! rejects or repairs unusable datasets, and mid-loop stage failures
//! degrade to the last good iteration's plan (recorded per iteration as an
//! [`safe::IterationStatus`]) instead of aborting the run.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod checkpoint;
pub mod combine;
pub mod engineer;
pub mod error;
pub mod explain;
pub mod config;
pub mod generate;
pub mod plan;
pub mod safe;
pub mod selection;

/// Legacy alias — the selection stage lived at `safe_core::select` before
/// the staged pruner arrived; existing imports keep compiling.
pub use selection as select;

pub use cache::{BinCache, StatsCache};
pub use checkpoint::{Checkpoint, CheckpointStore, CkptError, ConfigFingerprint, Terminal};
pub use config::{GenerationStrategy, SafeConfig, SafeConfigBuilder, SelectionMode};
pub use engineer::{FeatureEngineer, Identity};
pub use error::SafeError;
pub use explain::{explain_plan, explanation_report, FeatureExplanation};
pub use plan::{CompiledPlan, FeaturePlan, PlanError, RowScratch};
pub use safe::{IterationReport, IterationStatus, Safe, SafeOutcome};
